//! The pipelined persist path, end to end: driving arch2/arch3 through
//! `persist_pipelined` (and the timer-driven background flush daemon)
//! must produce **byte-identical** final store state and provenance
//! graph to the synchronous batch path — while virtual completion time
//! strictly falls as the in-flight depth rises, and the event-driven
//! scheduler replays bit-for-bit at a fixed seed. This is the
//! acceptance bar of the pipelining issue; `BASELINE.md` records the
//! medium-scale depth sweep.

use pass_cloud::cloud::{
    drive_pipelined, layout, persist_groups_adaptive, Arch3Config, DaemonDepth, ProvGraph,
    ProvQuery, ProvenanceStore, S3SimpleDb, S3SimpleDbSqs,
};
use pass_cloud::pass::{FileFlush, FlushPolicy};
use pass_cloud::simworld::{AdaptiveDepth, SimDuration, SimWorld};
use pass_cloud::workloads::Combined;
// The bench harness owns the priced world; reusing it keeps the
// acceptance test and the BASELINE sweep measuring identical
// quantities.
use prov_bench::batchbench::priced_world;

/// The persist groups every run of one comparison uses: the same
/// partition of the flush stream, so only the overlap differs.
fn groups_of(flushes: &[FileFlush], n: usize) -> Vec<Vec<FileFlush>> {
    flushes.chunks(n).map(<[FileFlush]>::to_vec).collect()
}

/// Authoritative (unbilled) fingerprint of the cloud's final state:
/// every S3 key with its etag, every SimpleDB item with its full
/// attribute set. Pipelined and synchronous runs draw the identical
/// seeded RNG stream (same ops, same order), so even arch3's random
/// transaction ids line up and the fingerprints compare byte for byte.
fn state_fingerprint(s3: &pass_cloud::s3::S3, db: &pass_cloud::simpledb::SimpleDb) -> String {
    let mut out = String::new();
    for key in s3.latest_keys(layout::BUCKET, "") {
        let obj = s3.latest_object(layout::BUCKET, &key).unwrap();
        out.push_str(&format!("s3 {key} {}\n", obj.etag.to_hex()));
    }
    for item in db.latest_item_names(layout::DOMAIN) {
        out.push_str(&format!("sdb {item}"));
        let mut attrs = db.latest_item(layout::DOMAIN, &item).unwrap();
        attrs.sort();
        for attr in attrs {
            out.push_str(&format!(" {}={}", attr.name, attr.value));
        }
        out.push('\n');
    }
    out
}

fn graph_of(store: &mut dyn ProvenanceStore) -> ProvGraph {
    ProvGraph::from_answer(&store.query(&ProvQuery::ProvenanceOfAll).unwrap())
}

/// One arch2 run at `depth` (None = synchronous batch path). Returns
/// the state fingerprint, graph, and elapsed virtual time.
fn run_arch2(depth: Option<usize>) -> (String, ProvGraph, SimDuration) {
    let world = priced_world();
    let mut store = S3SimpleDb::new(&world);
    let (flushes, _) = Combined::small().flushes();
    let groups = groups_of(&flushes, 25);
    let t0 = world.now();
    match depth {
        None => {
            for group in &groups {
                store.persist_batch(group).unwrap();
            }
        }
        Some(d) => store.persist_pipelined(&groups, d).unwrap(),
    }
    store.run_daemons_until_idle().unwrap();
    let elapsed = world.now() - t0;
    world.settle();
    let fp = state_fingerprint(store.s3(), store.simpledb());
    (fp, graph_of(&mut store), elapsed)
}

/// How one arch3 run drives its client-side persist path.
#[derive(Copy, Clone)]
enum ClientDrive {
    /// Synchronous batch path, one group at a time.
    Sync,
    /// `persist_pipelined` at a fixed in-flight depth.
    Fixed(usize),
    /// `persist_groups_adaptive` with a fresh AIMD controller.
    Adaptive,
}

/// One arch3 run: the client persists under `drive`, the commit daemon
/// steps under `daemon` ([`DaemonDepth::Serial`] is the pre-pipelining
/// behaviour).
fn run_arch3(drive: ClientDrive, daemon: DaemonDepth) -> (String, ProvGraph, SimDuration) {
    let world = priced_world();
    let mut store = S3SimpleDbSqs::new(&world, "pipe");
    store.set_config(Arch3Config {
        daemon_depth: daemon,
        ..Arch3Config::default()
    });
    let (flushes, _) = Combined::small().flushes();
    let groups = groups_of(&flushes, 25);
    let t0 = world.now();
    match drive {
        ClientDrive::Sync => {
            for group in &groups {
                store.persist_batch(group).unwrap();
            }
        }
        ClientDrive::Fixed(d) => store.persist_pipelined(&groups, d).unwrap(),
        ClientDrive::Adaptive => {
            let mut ctl = AdaptiveDepth::new();
            persist_groups_adaptive(&world, &mut store, &groups, &mut ctl).unwrap();
        }
    }
    store.run_daemons_until_idle().unwrap();
    assert_eq!(store.wal_depth_exact(), 0, "WAL must drain completely");
    let elapsed = world.now() - t0;
    world.settle();
    let fp = state_fingerprint(store.s3(), store.simpledb());
    (fp, graph_of(&mut store), elapsed)
}

#[test]
fn pipelined_arch2_is_byte_identical_and_strictly_faster_with_depth() {
    let (sync_fp, sync_graph, sync_time) = run_arch2(None);
    let mut last_time = sync_time;
    for depth in [1, 2, 4, 8] {
        let (fp, graph, time) = run_arch2(Some(depth));
        assert_eq!(
            fp, sync_fp,
            "arch2 depth {depth}: pipelining must not change a single byte of the final store"
        );
        assert!(
            graph.diff(&sync_graph).is_empty(),
            "arch2 depth {depth}: provenance graphs diverged"
        );
        assert!(
            time < last_time,
            "arch2 depth {depth}: virtual completion time must strictly fall \
             ({time:?} !< {last_time:?})"
        );
        last_time = time;
    }
}

#[test]
fn pipelined_arch3_is_byte_identical_and_strictly_faster_with_depth() {
    let (sync_fp, sync_graph, sync_time) = run_arch3(ClientDrive::Sync, DaemonDepth::Serial);
    let mut last_time = sync_time;
    for depth in [1, 2, 4, 8] {
        let (fp, graph, time) = run_arch3(ClientDrive::Fixed(depth), DaemonDepth::Serial);
        assert_eq!(
            fp, sync_fp,
            "arch3 depth {depth}: pipelining must not change a single byte of the final store"
        );
        assert!(
            graph.diff(&sync_graph).is_empty(),
            "arch3 depth {depth}: provenance graphs diverged"
        );
        assert!(
            time < last_time,
            "arch3 depth {depth}: virtual completion time must strictly fall \
             ({time:?} !< {last_time:?})"
        );
        last_time = time;
    }
}

/// The tentpole acceptance bar: pipelining the commit daemon's
/// receive/assemble/apply loop (client and daemon at the same depth)
/// leaves the final cloud state byte-identical to the fully serial run,
/// end-to-end time strictly falls with depth, the depth-8 run clears
/// 3x, and the adaptive controller lands within 10% of the best fixed
/// depth without anyone hand-tuning `max_in_flight`.
#[test]
fn daemon_pipelined_arch3_is_byte_identical_and_clears_3x() {
    let (sync_fp, sync_graph, sync_time) = run_arch3(ClientDrive::Sync, DaemonDepth::Serial);
    let mut last_time = sync_time;
    let mut best_fixed = sync_time;
    for depth in [1, 2, 4, 8] {
        let (fp, graph, time) = run_arch3(ClientDrive::Fixed(depth), DaemonDepth::Fixed(depth));
        assert_eq!(
            fp, sync_fp,
            "arch3 daemon depth {depth}: the pipelined daemon must not change \
             a single byte of the final store"
        );
        assert!(
            graph.diff(&sync_graph).is_empty(),
            "arch3 daemon depth {depth}: provenance graphs diverged"
        );
        assert!(
            time < last_time,
            "arch3 daemon depth {depth}: end-to-end time must strictly fall \
             ({time:?} !< {last_time:?})"
        );
        last_time = time;
        best_fixed = best_fixed.min(time);
        if depth == 8 {
            assert!(
                time.as_secs_f64() * 3.0 <= sync_time.as_secs_f64(),
                "arch3 at daemon depth 8 must clear 3x over the serial daemon \
                 ({time:?} vs {sync_time:?})"
            );
        }
    }

    let (fp, graph, time) = run_arch3(ClientDrive::Adaptive, DaemonDepth::Adaptive);
    assert_eq!(fp, sync_fp, "adaptive: final store diverged");
    assert!(
        graph.diff(&sync_graph).is_empty(),
        "adaptive: graph diverged"
    );
    assert!(
        time.as_secs_f64() <= best_fixed.as_secs_f64() * 1.10,
        "adaptive must land within 10% of the best fixed depth \
         ({time:?} vs best {best_fixed:?})"
    );
}

#[test]
fn scheduler_event_order_is_deterministic_at_fixed_seed() {
    let run = || {
        let world = priced_world();
        world.set_event_trace(true);
        let mut store = S3SimpleDbSqs::new(&world, "det");
        let (flushes, _) = Combined::small().flushes();
        let groups = groups_of(&flushes[..100], 10);
        store.persist_pipelined(&groups, 4).unwrap();
        store.run_daemons_until_idle().unwrap();
        (world.now(), world.take_event_trace())
    };
    let (now_a, trace_a) = run();
    let (now_b, trace_b) = run();
    assert_eq!(now_a, now_b, "same seed, same config ⇒ same virtual clock");
    assert!(!trace_a.is_empty(), "the run must schedule events");
    assert_eq!(
        trace_a, trace_b,
        "same seed, same config ⇒ identical event order"
    );
}

#[test]
fn background_daemon_timer_bounds_flush_latency() {
    // A slow producer (think time between closes) with a generous count
    // threshold: without the deadline every flush would wait for 100
    // closes; with it, groups drain on the max_age timer and the final
    // state still matches a plain point-persisted control run.
    let world = priced_world();
    let mut store = S3SimpleDb::new(&world);
    let (flushes, _) = Combined::small().flushes();
    let slice = &flushes[..60];
    let policy = FlushPolicy::new(100, u64::MAX).with_max_age(SimDuration::from_millis(400));
    let report = drive_pipelined(
        &world,
        &mut store,
        slice,
        policy,
        4,
        SimDuration::from_millis(150),
    )
    .unwrap();
    assert!(
        report.timer_drains > 0,
        "the deadline must fire for a slow producer: {report:?}"
    );
    assert!(
        report.groups_issued > 1,
        "the stream must not wait for one giant group: {report:?}"
    );

    let control_world = priced_world();
    let mut control = S3SimpleDb::new(&control_world);
    for flush in slice {
        control.persist(flush).unwrap();
    }
    world.settle();
    control_world.settle();
    assert!(
        graph_of(&mut store)
            .diff(&graph_of(&mut control))
            .is_empty(),
        "timer-driven grouping must not change the provenance graph"
    );
}

#[test]
fn pipelined_run_survives_eventual_consistency() {
    // The overlap story on a laggy, jittery world: after the daemons
    // settle, every object reads back verified-consistent.
    let world = SimWorld::new(7);
    let mut store = S3SimpleDbSqs::new(&world, "ec");
    let (flushes, _) = Combined::small().flushes();
    let groups = groups_of(&flushes[..60], 10);
    store.persist_pipelined(&groups, 4).unwrap();
    store.run_daemons_until_idle().unwrap();
    world.settle();
    let mut checked = 0;
    for flush in flushes.iter().take(60) {
        if flush.kind == pass_cloud::pass::ObjectKind::File {
            let read = store.read(&flush.object.name).unwrap();
            assert!(read.consistent(), "{}", flush.object.name);
            checked += 1;
        }
    }
    assert!(checked > 10, "the trace prefix must contain real files");
}

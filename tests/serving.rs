//! End-to-end serving invariants, driven through the wall-clock
//! loadgen: whatever the thread count, transport, batching mode, or
//! architecture, the networked store must converge to exactly the
//! state the same workload produces in-process.

use prov_bench::loadgen::{run_loadgen, LoadArch, LoadgenParams};

fn base(arch: LoadArch) -> LoadgenParams {
    LoadgenParams {
        arch,
        steps_per_thread: 5,
        queries_per_thread: 8,
        rate_per_sec: 4_000.0,
        ..LoadgenParams::default()
    }
}

#[test]
fn fingerprints_match_at_every_thread_count_arch2() {
    for threads in [1, 2, 4] {
        let row = run_loadgen(&LoadgenParams {
            threads,
            ..base(LoadArch::Arch2)
        })
        .unwrap();
        assert_eq!(row.errors, 0, "{threads} threads: {row:?}");
        assert!(
            row.fingerprints_match(),
            "{threads} threads: networked {:016x} != in-process {:016x}",
            row.fingerprint,
            row.in_process_fingerprint
        );
    }
}

#[test]
fn fingerprints_match_at_every_thread_count_arch3() {
    for threads in [1, 2, 4] {
        let row = run_loadgen(&LoadgenParams {
            threads,
            ..base(LoadArch::Arch3)
        })
        .unwrap();
        assert_eq!(row.errors, 0, "{threads} threads: {row:?}");
        assert!(row.fingerprints_match(), "{threads} threads: {row:?}");
    }
}

#[test]
fn batched_wire_path_converges_to_point_state() {
    // Batched and point runs carry the same flushes, so the *final
    // store* must be identical even though the wire framing differs.
    let point = run_loadgen(&LoadgenParams {
        threads: 2,
        ..base(LoadArch::Arch3)
    })
    .unwrap();
    let batched = run_loadgen(&LoadgenParams {
        threads: 2,
        batched: true,
        ..base(LoadArch::Arch3)
    })
    .unwrap();
    assert!(point.fingerprints_match());
    assert!(batched.fingerprints_match());
    assert_eq!(point.fingerprint, batched.fingerprint);
}

#[test]
fn closure_serve_mode_fingerprints_match_over_the_wire() {
    for arch in [LoadArch::Arch2, LoadArch::Arch3] {
        let row = run_loadgen(&LoadgenParams {
            threads: 2,
            serve_closure: true,
            ..base(arch)
        })
        .unwrap();
        assert_eq!(row.errors, 0, "{arch:?}: {row:?}");
        assert!(row.fingerprints_match(), "{arch:?}: {row:?}");
    }
}

#[test]
fn tcp_and_unix_transports_converge_identically() {
    let unix = run_loadgen(&LoadgenParams {
        threads: 2,
        ..base(LoadArch::Arch2)
    })
    .unwrap();
    let tcp = run_loadgen(&LoadgenParams {
        threads: 2,
        tcp: true,
        ..base(LoadArch::Arch2)
    })
    .unwrap();
    assert!(unix.fingerprints_match());
    assert!(tcp.fingerprints_match());
    assert_eq!(unix.fingerprint, tcp.fingerprint);
}

//! Graph analytics over the full combined workload: the `ProvGraph`
//! invariants the PASS observer is supposed to guarantee, checked on
//! real (generated) provenance pulled back out of the cloud store.

use pass_cloud::cloud::{ArchKind, ProvGraph, ProvQuery};
use pass_cloud::simworld::SimWorld;
use pass_cloud::workloads::Combined;

fn graph_from_cloud() -> ProvGraph {
    let world = SimWorld::counting();
    let mut store = ArchKind::S3SimpleDb.build(&world);
    let (flushes, _) = Combined::small().flushes();
    for flush in &flushes {
        store.persist(flush).unwrap();
    }
    world.settle();
    let all = store.query(&ProvQuery::ProvenanceOfAll).unwrap();
    ProvGraph::from_answer(&all)
}

#[test]
fn cloud_provenance_forms_a_complete_acyclic_graph() {
    let g = graph_from_cloud();
    assert!(
        g.len() > 150,
        "small corpus too small: {} versions",
        g.len()
    );
    // PASS versioning guarantees acyclicity.
    assert!(g.is_acyclic());
    // Eventual causal ordering: nothing references a version that was
    // never stored.
    assert_eq!(g.dangling_references(), vec![]);
}

#[test]
fn roots_are_exactly_the_source_files() {
    let g = graph_from_cloud();
    for root in g.roots() {
        // Sources and the idle `make` process have no ancestors; every
        // derived object must have at least one.
        let records = g.records(&root).unwrap();
        let is_source = root.name.ends_with(".c")
            || root.name.ends_with(".h")
            || root.name.contains("Makefile")
            || root.name.contains(".fasta")
            || root.name.contains("queries/")
            || root.name.contains("anatomy")
            || root.name.contains("reference.")
            || root.name.contains("proc:");
        assert!(
            is_source,
            "unexpected root {} with records {:?}",
            root, records
        );
    }
    assert!(!g.roots().is_empty());
    assert!(!g.leaves().is_empty());
}

#[test]
fn depth_reflects_the_deepest_pipeline() {
    let g = graph_from_cloud();
    // The fMRI chain is ≥ 10 hops (anatomy → … → jpg); hierarchical
    // linking in the compile can rival it. Either way: deep, not flat.
    assert!(g.depth() >= 10, "depth {}", g.depth());
}

#[test]
fn topological_order_is_a_valid_schedule() {
    let g = graph_from_cloud();
    let order = g.topological_order().unwrap();
    assert_eq!(order.len(), g.len());
    let position: std::collections::HashMap<_, _> = order
        .iter()
        .enumerate()
        .map(|(i, o)| (o.clone(), i))
        .collect();
    for (object, _) in g.iter() {
        for parent in g.parents(object) {
            assert!(
                position[&parent] < position[object],
                "{parent} must precede {object}"
            );
        }
    }
}

#[test]
fn blast_ancestry_matches_query_engine_answers() {
    // The graph view and the iterative SimpleDB query engine must agree
    // on what descends from blastall.
    let world = SimWorld::counting();
    let mut store = ArchKind::S3SimpleDb.build(&world);
    let (flushes, _) = Combined::small().flushes();
    for flush in &flushes {
        store.persist(flush).unwrap();
    }
    world.settle();
    let engine_answer = store
        .query(&ProvQuery::DescendantsOf {
            program: "blastall".into(),
        })
        .unwrap();
    let g = ProvGraph::from_answer(&store.query(&ProvQuery::ProvenanceOfAll).unwrap());

    // Union of graph-descendants over every output of blastall.
    let outputs = store
        .query(&ProvQuery::OutputsOf {
            program: "blastall".into(),
        })
        .unwrap();
    let mut graph_desc = std::collections::BTreeSet::new();
    for item in &outputs.items {
        graph_desc.extend(g.descendants(&item.object));
    }
    let engine_set: std::collections::BTreeSet<_> = engine_answer
        .items
        .iter()
        .map(|i| i.object.clone())
        .collect();
    assert_eq!(graph_desc, engine_set);
}

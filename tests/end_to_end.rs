//! Workspace-level end-to-end tests: the full pipeline from workload
//! generator through PASS to each cloud architecture, across crates.

use pass_cloud::cloud::{ArchKind, ProvQuery, ProvenanceStore};
use pass_cloud::pass::ObjectKind;
use pass_cloud::simworld::{Consistency, LatencyModel, SimConfig, SimDuration, SimWorld};
use pass_cloud::workloads::Combined;

fn counting() -> SimWorld {
    SimWorld::counting()
}

/// Persists the small combined dataset into a store of `kind` and
/// returns the store plus its world.
fn loaded(kind: ArchKind, world: &SimWorld) -> Box<dyn ProvenanceStore> {
    let (flushes, _) = Combined::small().flushes();
    let mut store = kind.build(world);
    for flush in &flushes {
        store.persist(flush).expect("persist succeeds");
    }
    store.run_daemons_until_idle().expect("daemons drain");
    world.settle();
    store
}

#[test]
fn combined_dataset_round_trips_on_every_architecture() {
    let (flushes, stats) = Combined::small().flushes();
    for kind in ArchKind::ALL {
        let world = counting();
        let mut store = kind.build(&world);
        for flush in &flushes {
            store.persist(flush).unwrap();
        }
        store.run_daemons_until_idle().unwrap();

        // Every file version is readable and consistent; content
        // matches what PASS flushed.
        let mut checked = 0;
        for flush in flushes
            .iter()
            .filter(|f| f.kind == ObjectKind::File)
            .take(25)
        {
            let read = store.read(&flush.object.name).unwrap();
            assert!(read.consistent(), "{kind:?}: {} inconsistent", flush.object);
            checked += 1;
        }
        assert_eq!(checked, 25);
        // Q1-over-everything sees every version.
        let all = store.query(&ProvQuery::ProvenanceOfAll).unwrap();
        assert_eq!(all.len() as u64, stats.total_versions(), "{kind:?}");
    }
}

#[test]
fn architectures_agree_on_all_three_queries() {
    let mut per_arch = Vec::new();
    for kind in ArchKind::ALL {
        let world = counting();
        let mut store = loaded(kind, &world);
        let q1 = store
            .query(&ProvQuery::ProvenanceOf {
                name: "linux/vmlinux".into(),
                version: 1,
            })
            .unwrap();
        let q2 = store
            .query(&ProvQuery::OutputsOf {
                program: "blastall".into(),
            })
            .unwrap();
        let q3 = store
            .query(&ProvQuery::DescendantsOf {
                program: "formatdb".into(),
            })
            .unwrap();
        per_arch.push((q1.names(), q2.names(), q3.names()));
    }
    assert_eq!(per_arch[0], per_arch[1]);
    assert_eq!(per_arch[1], per_arch[2]);
    // And the answers are non-trivial.
    assert!(!per_arch[0].0.is_empty());
    assert!(!per_arch[0].1.is_empty());
    assert!(!per_arch[0].2.is_empty());
}

#[test]
fn blast_outputs_match_the_generator() {
    let world = counting();
    let mut store = loaded(ArchKind::S3SimpleDb, &world);
    let q2 = store
        .query(&ProvQuery::OutputsOf {
            program: "blastall".into(),
        })
        .unwrap();
    // One .hits file per query; the small dataset runs 5 queries.
    assert!(q2.names().iter().all(|n| n.contains(".hits")));
    assert_eq!(q2.len(), 5);
    // Their descendants are the tophits processes and .top files.
    let q3 = store
        .query(&ProvQuery::DescendantsOf {
            program: "blastall".into(),
        })
        .unwrap();
    assert!(q3.names().iter().any(|n| n.contains(".top:")));
    assert_eq!(q3.len(), 10, "5 tophits processes + 5 .top files");
}

#[test]
fn full_pipeline_under_realistic_conditions() {
    // Default world: latency + jitter + 500 ms replica lag, three
    // replicas — the adversarial regime the protocols are built for.
    let world = SimWorld::with_config(SimConfig {
        seed: 20090223, // TaPP '09 workshop date
        consistency: Consistency::eventual(SimDuration::from_millis(500)),
        latency: LatencyModel::default(),
        replicas: 3,
    });
    let (flushes, _) = Combined::small().flushes();
    let mut store = ArchKind::S3SimpleDbSqs.build(&world);
    for flush in &flushes {
        store.persist(flush).unwrap();
    }
    store.run_daemons_until_idle().unwrap();
    world.settle();
    let read = store.read("linux/vmlinux").unwrap();
    assert!(read.consistent());
    let q2 = store
        .query(&ProvQuery::OutputsOf {
            program: "blastall".into(),
        })
        .unwrap();
    assert_eq!(q2.len(), 5);
}

#[test]
fn provenance_chain_depth_spans_the_fmri_workflow() {
    // The Provenance Challenge workflow is the deepest chain: jpg ←
    // convert ← pgm ← slicer ← atlas ← softmean ← resliced ← reslice ←
    // warp ← align_warp ← anatomy. Walk it end to end through the store.
    let world = counting();
    let mut store = loaded(ArchKind::S3SimpleDb, &world);
    let jpg = "fmri/s000/atlas-x.jpg";
    let mut depth = 0;
    let mut current = vec![pass_cloud::pass::ObjectRef::new(jpg, 1)];
    let mut seen = std::collections::BTreeSet::new();
    while !current.is_empty() && depth < 32 {
        let mut next = Vec::new();
        for obj in current {
            if !seen.insert(obj.clone()) {
                continue;
            }
            let answer = store
                .query(&ProvQuery::ProvenanceOf {
                    name: obj.name.clone(),
                    version: obj.version,
                })
                .unwrap();
            for item in &answer.items {
                next.extend(item.records.iter().filter_map(|r| r.reference()).cloned());
            }
        }
        if next.is_empty() {
            break;
        }
        depth += 1;
        current = next;
    }
    assert!(depth >= 10, "fMRI ancestry depth was only {depth}");
    assert!(seen.iter().any(|o| o.name.contains("anatomy1.img")));
}

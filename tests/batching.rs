//! The batched request path, end to end: for the combined workload,
//! driving arch2/arch3 through the group-commit flusher and the
//! services' native batch APIs must produce **identical** final store
//! state and provenance graph to the point-op path — while issuing ≥ 5x
//! fewer billable requests on the provenance flush path and finishing
//! sooner in (deterministic) virtual time. This is the acceptance bar
//! of the batching issue; `BASELINE.md` records the medium-scale sweep.

use pass_cloud::cloud::{layout, ProvGraph, ProvQuery, ProvenanceStore, S3SimpleDb, S3SimpleDbSqs};
use pass_cloud::pass::{FileFlush, FlushPolicy, GroupCommitFlusher};
use pass_cloud::simworld::{SimDuration, SimWorld};
use pass_cloud::workloads::Combined;
// The bench harness owns the priced world and the flush-path request
// definition; reusing them keeps the acceptance test and the BASELINE
// sweep measuring identical quantities.
use prov_bench::batchbench::{flush_path_requests, priced_world};

/// Drives `flushes` into `store` — point persists, or groups of
/// `group_size` through the group-commit flusher — and returns the
/// requests on the provenance flush path plus the elapsed virtual time.
fn drive(
    world: &SimWorld,
    store: &mut dyn ProvenanceStore,
    flushes: &[FileFlush],
    group_size: Option<usize>,
) -> (u64, SimDuration) {
    let before = world.meters();
    let t0 = world.now();
    match group_size {
        None => {
            for flush in flushes {
                store.persist(flush).unwrap();
            }
        }
        Some(n) => {
            let mut flusher = GroupCommitFlusher::new(FlushPolicy::every(n));
            for flush in flushes {
                if let Some(group) = flusher.submit(flush.clone()) {
                    store.persist_batch(&group).unwrap();
                }
            }
            store.persist_batch(&flusher.drain()).unwrap();
        }
    }
    store.run_daemons_until_idle().unwrap();
    let elapsed = world.now() - t0;
    let delta = world.meters() - before;
    (flush_path_requests(&delta), elapsed)
}

/// Authoritative (unbilled) fingerprint of the cloud's final state:
/// every S3 key, every SimpleDB item with its full attribute set.
fn state_fingerprint(s3: &pass_cloud::s3::S3, db: &pass_cloud::simpledb::SimpleDb) -> String {
    let mut out = String::new();
    for key in s3.latest_keys(layout::BUCKET, "") {
        let obj = s3.latest_object(layout::BUCKET, &key).unwrap();
        out.push_str(&format!("s3 {key} {}\n", obj.etag.to_hex()));
    }
    for item in db.latest_item_names(layout::DOMAIN) {
        out.push_str(&format!("sdb {item}"));
        for attr in db.latest_item(layout::DOMAIN, &item).unwrap() {
            out.push_str(&format!(" {}={}", attr.name, attr.value));
        }
        out.push('\n');
    }
    out
}

fn graph_of(store: &mut dyn ProvenanceStore) -> ProvGraph {
    ProvGraph::from_answer(&store.query(&ProvQuery::ProvenanceOfAll).unwrap())
}

#[test]
fn batched_arch2_matches_point_path_with_5x_fewer_flush_requests() {
    let (flushes, _) = Combined::small().flushes();

    let point_world = priced_world();
    let mut point = S3SimpleDb::new(&point_world);
    let (point_reqs, point_time) = drive(&point_world, &mut point, &flushes, None);

    let batch_world = priced_world();
    let mut batch = S3SimpleDb::new(&batch_world);
    let (batch_reqs, batch_time) = drive(&batch_world, &mut batch, &flushes, Some(25));

    point_world.settle();
    batch_world.settle();
    assert_eq!(
        state_fingerprint(point.s3(), point.simpledb()),
        state_fingerprint(batch.s3(), batch.simpledb()),
        "batching must not change a single byte of the final store"
    );
    assert!(
        graph_of(&mut point).diff(&graph_of(&mut batch)).is_empty(),
        "provenance graphs diverged"
    );
    assert!(
        batch_reqs * 5 <= point_reqs,
        "arch2 flush path: {batch_reqs} batched vs {point_reqs} point requests"
    );
    assert!(
        batch_time < point_time,
        "arch2 batched persist must be faster in virtual time ({batch_time:?} vs {point_time:?})"
    );
}

#[test]
fn batched_arch3_matches_point_path_with_5x_fewer_flush_requests() {
    let (flushes, _) = Combined::small().flushes();

    let point_world = priced_world();
    let mut point = S3SimpleDbSqs::new(&point_world, "bench");
    let (point_reqs, point_time) = drive(&point_world, &mut point, &flushes, None);

    let batch_world = priced_world();
    let mut batch = S3SimpleDbSqs::new(&batch_world, "bench");
    let (batch_reqs, batch_time) = drive(&batch_world, &mut batch, &flushes, Some(25));

    point_world.settle();
    batch_world.settle();
    assert_eq!(
        point.wal_depth_exact(),
        0,
        "point path must drain its WAL completely"
    );
    assert_eq!(
        batch.wal_depth_exact(),
        0,
        "batched path must drain its WAL completely"
    );
    // The WAL's temp keys embed random txids, so compare the *durable*
    // namespace (data + provenance), not tmp residue — the cleaner owns
    // that either way.
    let durable = |s: &S3SimpleDbSqs| {
        let mut keys = s.s3().latest_keys(layout::BUCKET, layout::DATA_PREFIX);
        keys.extend(s.s3().latest_keys(layout::BUCKET, layout::PROV_PREFIX));
        keys
    };
    assert_eq!(durable(&point), durable(&batch));
    let items = |s: &S3SimpleDbSqs| {
        s.simpledb()
            .latest_item_names(layout::DOMAIN)
            .into_iter()
            .map(|item| {
                let mut attrs = s.simpledb().latest_item(layout::DOMAIN, &item).unwrap();
                attrs.sort();
                (item, attrs)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(items(&point), items(&batch));
    assert!(
        graph_of(&mut point).diff(&graph_of(&mut batch)).is_empty(),
        "provenance graphs diverged"
    );
    assert!(
        batch_reqs * 5 <= point_reqs,
        "arch3 flush path: {batch_reqs} batched vs {point_reqs} point requests"
    );
    assert!(
        batch_time < point_time,
        "arch3 batched persist must be faster in virtual time ({batch_time:?} vs {point_time:?})"
    );
}

#[test]
fn batched_path_survives_eventual_consistency() {
    // Same grouped drive on a laggy, jittery world: every object still
    // reads back verified-consistent after the daemons settle.
    let world = SimWorld::new(7);
    let mut store = S3SimpleDbSqs::new(&world, "ec");
    let (flushes, _) = Combined::small().flushes();
    let mut flusher = GroupCommitFlusher::new(FlushPolicy::default());
    for flush in flushes.iter().take(60) {
        if let Some(group) = flusher.submit(flush.clone()) {
            store.persist_batch(&group).unwrap();
        }
    }
    store.persist_batch(&flusher.drain()).unwrap();
    store.run_daemons_until_idle().unwrap();
    world.settle();
    let mut checked = 0;
    for flush in flushes.iter().take(60) {
        if flush.kind == pass_cloud::pass::ObjectKind::File {
            let read = store.read(&flush.object.name).unwrap();
            assert!(read.consistent(), "{}", flush.object.name);
            checked += 1;
        }
    }
    assert!(checked > 10, "the trace prefix must contain real files");
}

//! The paper's headline claims, asserted at the workspace level: the
//! Table 1 matrix, the Table 2/3 shapes, and the §5 conclusions.

use pass_cloud::cloud::full_property_table;
use prov_bench::{table2, table3, Scale};

#[test]
fn table1_matches_the_paper_exactly() {
    let matrix = full_property_table(2009).unwrap();
    let as_tuple = |r: &pass_cloud::cloud::PropertyMatrix| {
        (
            r.atomicity,
            r.consistency,
            r.causal_ordering,
            r.efficient_query,
        )
    };
    assert_eq!(matrix[0].architecture, "S3");
    assert_eq!(as_tuple(&matrix[0]), (true, true, true, false), "S3 row");
    assert_eq!(matrix[1].architecture, "S3+SimpleDB");
    assert_eq!(
        as_tuple(&matrix[1]),
        (false, true, true, true),
        "S3+SimpleDB row"
    );
    assert_eq!(matrix[2].architecture, "S3+SimpleDB+SQS");
    assert_eq!(
        as_tuple(&matrix[2]),
        (true, true, true, true),
        "S3+SimpleDB+SQS row"
    );
}

#[test]
fn table2_shape_storage_overhead_rises_with_machinery() {
    let t = table2(&Scale::Small.dataset()).unwrap();
    // §5's conclusion: "all the properties can be satisfied at a
    // reasonable space overhead" — the full architecture costs more
    // than the strawman but stays a modest fraction of the data.
    let s3 = &t.rows[0];
    let sdb = &t.rows[1];
    let sqs = &t.rows[2];
    assert!(s3.provenance_bytes < sdb.provenance_bytes);
    assert!(sdb.provenance_bytes < sqs.provenance_bytes);
    assert!(
        sqs.provenance_bytes < t.raw_bytes / 2,
        "provenance must remain a fraction of the data"
    );
    // Ops: S3 below raw (0.8x in the paper), then rising.
    assert!(s3.provenance_ops < t.raw_ops);
    assert!(sdb.provenance_ops > t.raw_ops);
    assert!(sqs.provenance_ops > sdb.provenance_ops);
}

#[test]
fn table3_shape_simpledb_wins_queries_by_orders_of_magnitude() {
    let t = table3(&Scale::Small.dataset()).unwrap();
    // Q2: the paper's 56,132-vs-6 contrast. At test scale we demand a
    // factor ≥ 10 in ops and bytes.
    assert!(
        t.q2.1.ops * 10 <= t.q2.0.ops,
        "{} vs {}",
        t.q2.1.ops,
        t.q2.0.ops
    );
    assert!(t.q2.1.data_out * 10 <= t.q2.0.data_out);
    // Q3: SimpleDB walks the graph, still far ahead of the scan.
    assert!(t.q3.1.ops * 3 <= t.q3.0.ops);
    // Q1 over everything: no index advantage (the paper's SimpleDB was
    // even *slower* in ops, 71,825 vs 56,132).
    let ratio = t.q1.1.ops as f64 / t.q1.0.ops as f64;
    assert!((0.5..2.0).contains(&ratio), "Q1 ops ratio {ratio}");
    // The S3 engine pays the identical full scan for every query.
    assert_eq!(t.q1.0.ops, t.q2.0.ops);
    assert_eq!(t.q2.0.ops, t.q3.0.ops);
}

#[test]
fn section5_conclusion_full_architecture_overhead_is_reasonable() {
    // "the architecture satisfying all the properties poses a reasonable
    // storage overhead compared to a strawman architecture while
    // performing orders of magnitude better on the query overhead."
    let dataset = Scale::Small.dataset();
    let t2 = table2(&dataset).unwrap();
    let t3 = table3(&dataset).unwrap();
    let full = &t2.rows[2]; // S3+SimpleDB+SQS
    let strawman = &t2.rows[0]; // S3
                                // Storage overhead of the full architecture vs the strawman stays
                                // within a single-digit factor (22.9% extra in the paper).
    assert!(full.provenance_bytes < strawman.provenance_bytes * 8);
    // Query: orders of magnitude better (SimpleDB numbers apply to the
    // full architecture, §5).
    assert!(t3.q2.1.ops * 10 <= t3.q2.0.ops);
}

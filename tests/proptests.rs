//! Property-based tests over the core data structures and invariants,
//! spanning crates.
//!
//! # Reproducibility
//!
//! The suite runs on the vendored proptest shim, which is deterministic
//! by construction: case `k` of a test is seeded from the test's name,
//! `k`, and the `PROPTEST_SEED` environment variable (default 0) — so a
//! failure on CI replays identically on any machine with no
//! seed-copying ritual. The in-source case counts below are the CI
//! floor; to widen locally run e.g.
//!
//! ```sh
//! PROPTEST_CASES=2000 cargo test --test proptests
//! PROPTEST_SEED=7 PROPTEST_CASES=2000 cargo test --test proptests  # new universe
//! ```

use pass_cloud::cloud::{encode_metadata, encode_records, CloudError, WalRecord};
use pass_cloud::pass::{FileFlush, ObjectRef, ProvenanceRecord};
use pass_cloud::simworld::{
    Blob, Consistency, EcMap, LatencyModel, Md5, SimConfig, SimDuration, SimInstant, SimWorld,
};
use proptest::prelude::*;

// --- Blob / MD5 ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blob_slice_matches_materialised_slice(
        seed in any::<u64>(),
        len in 0u64..20_000,
        a in 0u64..20_000,
        b in 0u64..20_000,
    ) {
        let blob = Blob::synthetic(seed, len);
        let (lo, hi) = (a.min(b).min(len), a.max(b).min(len));
        let sliced = blob.slice(lo..hi).to_bytes();
        let whole = blob.to_bytes();
        prop_assert_eq!(&sliced[..], &whole[lo as usize..hi as usize]);
    }

    #[test]
    fn md5_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Md5::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Md5::digest(&data));
    }

    #[test]
    fn blob_md5_with_suffix_equals_concat(
        content in proptest::collection::vec(any::<u8>(), 0..2048),
        suffix in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let blob = Blob::from_bytes(content.clone());
        let mut concat = content;
        concat.extend_from_slice(&suffix);
        prop_assert_eq!(blob.md5_with_suffix(&suffix), Md5::digest(&concat));
    }

    // --- EcMap convergence ---

    #[test]
    fn ecmap_settles_to_last_write(
        seed in any::<u64>(),
        writes in proptest::collection::vec(any::<u32>(), 1..20),
        lag_ms in 1u64..5_000,
    ) {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::eventual(SimDuration::from_millis(lag_ms)),
            latency: LatencyModel::zero(),
            replicas: 3,
        });
        let mut map = EcMap::new();
        for w in &writes {
            map.write(&world, "k", Some(*w));
        }
        world.settle();
        let last = *writes.last().unwrap();
        prop_assert_eq!(map.read(&world, &"k"), Some(last));
        prop_assert_eq!(map.read_latest(&"k"), Some(last));
    }

    #[test]
    fn ecmap_reads_are_always_some_previous_write(
        seed in any::<u64>(),
        writes in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        // Under any staleness, a read returns either None (not yet
        // propagated) or SOME value that was actually written — never
        // an invented value.
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::eventual(SimDuration::from_secs(60)),
            latency: LatencyModel::zero(),
            replicas: 4,
        });
        let mut map = EcMap::new();
        for w in &writes {
            map.write(&world, "k", Some(*w));
            if let Some(got) = map.read(&world, &"k") {
                prop_assert!(writes.contains(&got));
            }
        }
    }

    #[test]
    fn ecmap_compaction_never_hides_a_servable_write(
        ops in proptest::collection::vec(
            ((0u64..4, 0u64..3, any::<u16>()), (0u64..5_000, 0u64..5_000, 0u64..5_000)),
            1..50,
        ),
    ) {
        // `EcMap::write` compacts eagerly on every write. The invariant
        // that makes this safe: compaction must never drop a write some
        // replica would still serve. Pin it by replaying an arbitrary
        // op sequence — writes, deletes, clock advances, adversarial
        // (even out-of-order) propagation schedules — against a shadow
        // that keeps the full, uncompacted history, and demanding every
        // replica's view of every key agree after every step.
        const REPLICAS: usize = 3;
        let ms = SimDuration::from_millis;
        let mut now = SimInstant::EPOCH;
        let mut map: EcMap<u64, u16> = EcMap::new();
        type History = Vec<(Vec<SimInstant>, Option<u16>)>;
        let mut shadow: std::collections::BTreeMap<u64, History> =
            std::collections::BTreeMap::new();
        for ((key, kind, value), (l0, l1, l2)) in ops {
            match kind {
                0 | 1 => {
                    let value = (kind == 0).then_some(value);
                    let visible_at = vec![now + ms(l0), now + ms(l1), now + ms(l2)];
                    map.write_at(now, visible_at.clone(), key, value);
                    shadow.entry(key).or_default().push((visible_at, value));
                }
                _ => {
                    now += ms(l0);
                    map.gc(now);
                }
            }
            for (k, history) in &shadow {
                for replica in 0..REPLICAS {
                    let expect = history
                        .iter()
                        .rev()
                        .find(|(visible_at, _)| visible_at[replica] <= now)
                        .and_then(|(_, v)| *v);
                    prop_assert_eq!(map.read_on(replica, now, k), expect);
                }
            }
        }
    }

    // --- ObjectRef / record serialisation ---

    #[test]
    fn object_ref_round_trips(name in "[a-zA-Z0-9_/.:-]{1,40}", version in 1u32..10_000) {
        let r = ObjectRef::new(name, version);
        prop_assert_eq!(ObjectRef::parse(&r.render()), Some(r.clone()));
        prop_assert_eq!(ObjectRef::parse_item_name(&r.item_name()), Some(r));
    }

    #[test]
    fn provenance_record_pairs_round_trip(
        key in prop::sample::select(vec!["input", "type", "name", "argv", "env", "forkparent", "custom-key"]),
        value in "[ -~]{0,200}", // printable ASCII
    ) {
        let record = ProvenanceRecord::from_pair(key, &value);
        let (k2, v2) = record.to_pair();
        prop_assert_eq!(ProvenanceRecord::from_pair(&k2, &v2), record);
    }

    // --- Architecture-1 metadata encoding ---

    #[test]
    fn metadata_encoding_round_trips_any_record_set(
        version in 1u32..100,
        values in proptest::collection::vec("[ -~]{0,1500}", 0..40),
    ) {
        let object = ObjectRef::new("prop/file", version);
        let records: Vec<ProvenanceRecord> =
            values.iter().map(|v| ProvenanceRecord::from_pair("env", v)).collect();
        let encoded = encode_records(&object, &records);
        let (meta, overflows) = encode_metadata(&object, encoded);
        prop_assert!(meta.byte_size() <= sim_s3::METADATA_LIMIT);
        let fetch = |key: &str| -> Result<String, CloudError> {
            overflows
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, blob)| String::from_utf8(blob.to_bytes().to_vec()).unwrap())
                .ok_or_else(|| CloudError::NotFound { name: key.to_string() })
        };
        let decoded = pass_cloud::cloud::decode_metadata(&meta, fetch).unwrap();
        prop_assert_eq!(decoded, records);
    }

    // --- WAL codec ---

    #[test]
    fn wal_prov_record_round_trips_any_pairs(
        txid in any::<u64>(),
        item in "[ -~]{1,60}",
        pairs in proptest::collection::vec(("[a-z]{1,10}", "[ -~\\u{1f}\\u{1e}%]{0,200}"), 0..20),
    ) {
        let record = WalRecord::Prov { txid, item_name: item, pairs };
        prop_assert_eq!(WalRecord::decode(&record.encode()), Some(record));
    }

    #[test]
    fn wal_decode_never_panics(garbage in "\\PC{0,300}") {
        let _ = WalRecord::decode(&garbage); // must not panic
    }

    // --- SimpleDB query parsers never panic ---

    #[test]
    fn simpledb_parsers_never_panic(input in "\\PC{0,200}") {
        let _ = sim_simpledb::QueryExpr::parse(&input);
        let _ = sim_simpledb::SelectStatement::parse(&input);
    }
}

// --- stored-bytes gauge vs an exact shadow model ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stored_bytes_gauge_matches_shadow_across_services(
        ops in proptest::collection::vec(
            (0u8..10, 0u8..6, 1u64..2000, 0u64..30),
            1..60,
        ),
    ) {
        // The billing gauge is pure bookkeeping layered over every
        // S3 put/copy/delete and SQS send/receive/delete/expiry path —
        // and, since the batched request path, over every multi-object
        // delete, SendMessageBatch and DeleteMessageBatch too (kinds
        // 7..10 interleave the batch ops with the point ops); under
        // per-shard and per-queue locking each path settles the
        // gauge itself, so pin it against a shadow that recomputes the
        // exact expected footprint after every op. Strong consistency
        // keeps the shadow exact (reads can't be stale); retention is
        // modelled by mirroring the expiry trigger points (SQS reaps
        // expired messages only when an op touches the queue).
        use pass_cloud::s3::{Metadata, MetadataDirective, S3};
        use pass_cloud::simworld::Service;
        use pass_cloud::sqs::{Sqs, RETENTION};
        use std::collections::BTreeMap;

        let world = SimWorld::with_config(SimConfig {
            seed: 0,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 2,
        });
        let s3 = S3::with_shards(&world, 4);
        s3.create_bucket("b").unwrap();
        let sqs = Sqs::new(&world);
        let urls = [sqs.create_queue("alpha"), sqs.create_queue("beta/wal")];

        // Shadows: key -> footprint for S3; queue -> id -> (sent_at, len)
        // for SQS.
        let mut s3_shadow: BTreeMap<String, u64> = BTreeMap::new();
        let mut sqs_shadow: [BTreeMap<String, (SimInstant, u64)>; 2] =
            [BTreeMap::new(), BTreeMap::new()];
        let keys = ["a", "b", "c", "d", "e", "f"];
        let expire = |q: &mut BTreeMap<String, (SimInstant, u64)>, now: SimInstant| {
            q.retain(|_, (sent_at, _)| now.saturating_since(*sent_at) <= RETENTION);
        };

        for (kind, slot, len, hours) in ops {
            let key = keys[(slot % 6) as usize];
            let qi = (slot % 2) as usize;
            match kind {
                0 => {
                    // S3 PUT (with metadata, so footprints exceed bodies).
                    let meta = Metadata::from_pairs([("x-amz-meta-p", "v".repeat((len % 64) as usize))]);
                    let footprint = len + meta.byte_size();
                    s3.put_object("b", key, Blob::synthetic(len, len), meta).unwrap();
                    s3_shadow.insert(key.to_string(), footprint);
                }
                1 => {
                    // S3 COPY (carrying source metadata).
                    let src = keys[(len % 6) as usize];
                    match s3.copy_object("b", src, "b", key, MetadataDirective::Copy) {
                        Ok(()) => {
                            let src_fp = *s3_shadow.get(src).expect("copy succeeded, source exists");
                            s3_shadow.insert(key.to_string(), src_fp);
                        }
                        Err(_) => prop_assert!(!s3_shadow.contains_key(src)),
                    }
                }
                2 => {
                    // S3 DELETE (idempotent).
                    s3.delete_object("b", key).unwrap();
                    s3_shadow.remove(key);
                }
                3 => {
                    // SQS send; triggers expiry on its queue first.
                    let body = "m".repeat((len % 512) as usize);
                    expire(&mut sqs_shadow[qi], world.now());
                    let id = sqs.send_message(&urls[qi], body.clone()).unwrap();
                    sqs_shadow[qi].insert(id, (world.now(), body.len() as u64));
                }
                4 => {
                    // SQS receive + delete everything received.
                    expire(&mut sqs_shadow[qi], world.now());
                    for msg in sqs.receive_message(&urls[qi], 10).unwrap() {
                        sqs.delete_message(&urls[qi], &msg.receipt_handle).unwrap();
                        sqs_shadow[qi].remove(&msg.message_id);
                    }
                }
                5 => {
                    // Exact count is also an expiry trigger.
                    expire(&mut sqs_shadow[qi], world.now());
                    let n = sqs.exact_message_count(&urls[qi]);
                    prop_assert_eq!(n, sqs_shadow[qi].len());
                }
                7 => {
                    // S3 multi-object delete: this key, its neighbour,
                    // and one key that may be absent (idempotent).
                    let doomed = vec![
                        key.to_string(),
                        keys[((slot + 1) % 6) as usize].to_string(),
                        format!("ghost-{len}"),
                    ];
                    let removed = s3.delete_objects("b", &doomed).unwrap();
                    let mut expected = 0u64;
                    for k in &doomed {
                        if s3_shadow.remove(k).is_some() {
                            expected += 1;
                        }
                    }
                    prop_assert_eq!(removed, expected);
                }
                8 => {
                    // SQS batch send (expiry triggers first, like send);
                    // outcomes are index-aligned with the bodies.
                    expire(&mut sqs_shadow[qi], world.now());
                    let bodies: Vec<String> = (0..1 + len % 4)
                        .map(|i| "b".repeat(((len + i) % 300) as usize))
                        .collect();
                    let outcomes = sqs.send_message_batch(&urls[qi], &bodies).unwrap();
                    for (body, outcome) in bodies.iter().zip(outcomes) {
                        let id = outcome.unwrap();
                        sqs_shadow[qi].insert(id, (world.now(), body.len() as u64));
                    }
                }
                9 => {
                    // SQS receive + batch-delete everything received.
                    expire(&mut sqs_shadow[qi], world.now());
                    let received = sqs.receive_message(&urls[qi], 10).unwrap();
                    if !received.is_empty() {
                        let handles: Vec<String> =
                            received.iter().map(|m| m.receipt_handle.clone()).collect();
                        for outcome in sqs.delete_message_batch(&urls[qi], &handles).unwrap() {
                            outcome.unwrap();
                        }
                        for msg in &received {
                            sqs_shadow[qi].remove(&msg.message_id);
                        }
                    }
                }
                _ => {
                    // Let time pass (sometimes past the retention
                    // window); nothing expires until an op runs.
                    world.advance(SimDuration::from_hours(hours * 4));
                }
            }
            let meters = world.meters();
            prop_assert_eq!(
                meters.stored_bytes(Service::S3),
                s3_shadow.values().sum::<u64>()
            );
            let sqs_expect: u64 = sqs_shadow
                .iter()
                .flat_map(|q| q.values())
                .map(|(_, len)| *len)
                .sum();
            prop_assert_eq!(meters.stored_bytes(Service::Sqs), sqs_expect);
        }
    }
}

// --- SimpleDB stored-bytes gauge under batch ops, vs an exact shadow ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simpledb_stored_bytes_gauge_survives_batch_ops(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..5, 0u8..4, 0u8..6),
            1..50,
        ),
    ) {
        // The sharded SimpleDB settles its gauge per shard; the batch
        // ops settle a whole group under several shard locks at once.
        // Interleave point puts/deletes with batch puts/deletes and pin
        // the gauge against a shadow that replays SimpleDB's
        // multi-valued-set semantics exactly.
        use pass_cloud::simpledb::{DeletableAttribute, ReplaceableAttribute, SimpleDb};
        use pass_cloud::simworld::Service;
        use std::collections::{BTreeMap, BTreeSet};

        let world = SimWorld::counting();
        let db = SimpleDb::with_shards(&world, 4);
        db.create_domain("d").unwrap();
        let items = ["a", "b", "c", "dd", "e"];
        let mut shadow: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
        let shadow_bytes = |m: &BTreeMap<String, BTreeMap<String, BTreeSet<String>>>| -> u64 {
            m.values()
                .flat_map(|item| {
                    item.iter().flat_map(|(name, values)| {
                        values.iter().map(move |v| (name.len() + v.len()) as u64)
                    })
                })
                .sum()
        };
        let apply_shadow = |shadow: &mut BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
                                item: &str,
                                attr: u8,
                                value: u8| {
            shadow
                .entry(item.to_string())
                .or_default()
                .entry(format!("attr{attr}"))
                .or_default()
                .insert(format!("v{value}"));
        };

        for (kind, islot, attr, value) in ops {
            let item = items[(islot % 5) as usize];
            match kind {
                0 => {
                    // Point put: one additive attribute.
                    db.put_attributes(
                        "d",
                        item,
                        &[ReplaceableAttribute::add(
                            format!("attr{attr}"),
                            format!("v{value}"),
                        )],
                    )
                    .unwrap();
                    apply_shadow(&mut shadow, item, attr, value);
                }
                1 => {
                    // Batch put: this item and its neighbour, two
                    // attributes each.
                    let other = items[((islot + 1) % 5) as usize];
                    let entry = |it: &str| {
                        (
                            it.to_string(),
                            vec![
                                ReplaceableAttribute::add(
                                    format!("attr{attr}"),
                                    format!("v{value}"),
                                ),
                                ReplaceableAttribute::add(
                                    format!("attr{}", (attr + 1) % 4),
                                    format!("v{}", (value + 1) % 6),
                                ),
                            ],
                        )
                    };
                    db.batch_put_attributes("d", &[entry(item), entry(other)])
                        .unwrap();
                    for it in [item, other] {
                        apply_shadow(&mut shadow, it, attr, value);
                        apply_shadow(&mut shadow, it, (attr + 1) % 4, (value + 1) % 6);
                    }
                }
                2 => {
                    // Point delete: whole item (idempotent).
                    db.delete_attributes("d", item, None::<&[DeletableAttribute]>)
                        .unwrap();
                    shadow.remove(item);
                }
                _ => {
                    // Batch delete: one whole item, one single
                    // attribute name off the neighbour.
                    let other = items[((islot + 2) % 5) as usize];
                    db.batch_delete_attributes(
                        "d",
                        &[
                            (item.to_string(), None),
                            (
                                other.to_string(),
                                Some(vec![DeletableAttribute::all_of(format!("attr{attr}"))]),
                            ),
                        ],
                    )
                    .unwrap();
                    shadow.remove(item);
                    if item != other {
                        if let Some(entry) = shadow.get_mut(other) {
                            entry.remove(&format!("attr{attr}"));
                            if entry.is_empty() {
                                shadow.remove(other);
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(
                world.meters().stored_bytes(Service::SimpleDb),
                shadow_bytes(&shadow)
            );
            // Authoritative views agree item-for-item.
            let names: Vec<String> = shadow.keys().cloned().collect();
            prop_assert_eq!(db.latest_item_names("d"), names);
        }
    }
}

// --- incremental closure index vs an exact transitive closure ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_closure_matches_exact_transitive_closure(
        nodes in proptest::collection::vec(
            (any::<bool>(), any::<u64>(), 0u8..3),
            2..14,
        ),
        group_sizes in proptest::collection::vec(1usize..4, 1..14),
        daemon_bits in any::<u64>(),
    ) {
        // Random DAG: node i may take any earlier node as a parent, so
        // commits see file->file, file->proc, proc->file and proc->proc
        // edges in every order. The flushes land in arbitrary batch
        // groupings with daemon drains interleaved; the stored closure
        // must still equal an exact from-first-principles transitive
        // closure, and the index engine must answer Q3 exactly like the
        // walk engine.
        use pass_cloud::cloud::layout::{
            closure_name_row, CLOSURE_ATTR_ANC, CLOSURE_ATTR_DESC, CLOSURE_ATTR_OUT,
            CLOSURE_ATTR_PROC, CLOSURE_DOMAIN, CLOSURE_FRAG_SEP,
        };
        use pass_cloud::cloud::{Arch3Config, ClosureMode, ProvQuery, ProvenanceStore, S3SimpleDbSqs};
        use std::collections::{BTreeMap, BTreeSet};

        const PROGRAMS: [&str; 3] = ["alpha", "beta", "gamma"];

        // Build the DAG and its flushes.
        let n = nodes.len();
        let name = |i: usize, is_proc: bool| {
            if is_proc { format!("p{i}") } else { format!("f{i}") }
        };
        let mut parents: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut flushes = Vec::with_capacity(n);
        for (i, &(is_proc, mask, prog)) in nodes.iter().enumerate() {
            let mine: Vec<usize> = (0..i)
                .filter(|j| (mask >> (j % 64)) & 1 == 1)
                .take(4)
                .collect();
            let mut builder = FileFlush::builder(name(i, is_proc));
            if is_proc {
                builder = builder
                    .process()
                    .record("name", PROGRAMS[prog as usize]);
            } else {
                builder = builder.data(Blob::synthetic(i as u64, 64));
            }
            for &j in &mine {
                builder = builder.record("input", &format!("{}:1", name(j, nodes[j].0)));
            }
            parents.push(mine);
            flushes.push(builder.build());
        }

        // Exact ancestor sets by memoised recursion over the edge list.
        let render = |i: usize| format!("{}:1", name(i, nodes[i].0));
        let mut anc: Vec<BTreeSet<String>> = Vec::with_capacity(n);
        for ps in &parents {
            let mut mine = BTreeSet::new();
            for &j in ps {
                mine.insert(render(j));
                mine.extend(anc[j].iter().cloned());
            }
            anc.push(mine);
        }
        let mut desc: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        for (i, mine) in desc.iter_mut().enumerate() {
            for (j, up) in anc.iter().enumerate() {
                if up.contains(&render(i)) {
                    mine.insert(render(j));
                }
            }
        }

        // Persist in arbitrary groups with daemon drains interleaved.
        let world = SimWorld::counting();
        let mut store = S3SimpleDbSqs::new(&world, "closure-prop");
        store.set_config(Arch3Config {
            closure: ClosureMode::Maintain,
            ..Arch3Config::default()
        });
        let mut cursor = 0usize;
        for (round, &size) in group_sizes.iter().enumerate() {
            if cursor >= n {
                break;
            }
            let end = (cursor + size).min(n);
            store.persist_batch(&flushes[cursor..end]).unwrap();
            cursor = end;
            if (daemon_bits >> (round % 64)) & 1 == 1 {
                store.run_daemons_until_idle().unwrap();
            }
        }
        if cursor < n {
            store.persist_batch(&flushes[cursor..n]).unwrap();
        }
        store.run_daemons_until_idle().unwrap();
        world.settle();

        // Reassemble the logical closure rows from the fragmented
        // physical items: `{base}\u{1f}{bucket}` folds into `base`.
        let db = store.simpledb().clone();
        let mut logical: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
        for item in db.latest_item_names(CLOSURE_DOMAIN) {
            let base = match item.rsplit_once(CLOSURE_FRAG_SEP) {
                Some((base, suffix)) if suffix.parse::<u64>().is_ok() && !base.is_empty() => {
                    base.to_string()
                }
                _ => item.clone(),
            };
            let row = logical.entry(base).or_default();
            for attr in db.latest_item(CLOSURE_DOMAIN, &item).unwrap_or_default() {
                row.entry(attr.name).or_default().insert(attr.value);
            }
        }
        let values = |base: &str, attr: &str| -> BTreeSet<String> {
            logical
                .get(base)
                .and_then(|row| row.get(attr))
                .cloned()
                .unwrap_or_default()
        };

        for i in 0..n {
            let item = format!("{} 1", name(i, nodes[i].0));
            prop_assert_eq!(
                values(&item, CLOSURE_ATTR_ANC),
                anc[i].clone()
            );
            prop_assert_eq!(
                values(&item, CLOSURE_ATTR_DESC),
                desc[i].clone()
            );
            if nodes[i].0 {
                let out: BTreeSet<String> = (0..n)
                    .filter(|&j| !nodes[j].0 && parents[j].contains(&i))
                    .map(render)
                    .collect();
                prop_assert_eq!(
                    values(&item, CLOSURE_ATTR_OUT),
                    out
                );
            }
        }
        for (p, prog) in PROGRAMS.iter().enumerate() {
            let procs: BTreeSet<String> = (0..n)
                .filter(|&i| nodes[i].0 && nodes[i].2 == p as u8)
                .map(render)
                .collect();
            prop_assert_eq!(
                values(&closure_name_row(prog), CLOSURE_ATTR_PROC),
                procs
            );
        }

        // The index engine answers Q3 item-for-item like the walk.
        for prog in PROGRAMS.iter().chain(["delta"].iter()) {
            let q = ProvQuery::DescendantsOf { program: (*prog).to_string() };
            store.set_config(Arch3Config {
                closure: ClosureMode::Serve,
                ..Arch3Config::default()
            });
            let indexed = store.query(&q).unwrap().names();
            store.set_config(Arch3Config {
                closure: ClosureMode::Off,
                ..Arch3Config::default()
            });
            let walked = store.query(&q).unwrap().names();
            prop_assert_eq!(indexed, walked);
        }
    }
}

// --- end-to-end persist/read invariant, randomised ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_flush_round_trips_on_every_architecture(
        seed in any::<u64>(),
        data_len in 0u64..50_000,
        env_len in 0usize..6_000,
        n_inputs in 0usize..10,
    ) {
        use pass_cloud::cloud::ArchKind;
        for kind in ArchKind::ALL {
            let world = SimWorld::counting();
            let mut store = kind.build(&world);
            let mut builder = FileFlush::builder("prop/out.dat")
                .data(Blob::synthetic(seed, data_len))
                .record("env", &"e".repeat(env_len));
            for i in 0..n_inputs {
                builder = builder.record("input", &format!("prop/in{i}.dat:1"));
            }
            let flush = builder.build();
            store.persist(&flush).unwrap();
            store.run_daemons_until_idle().unwrap();
            world.settle();
            let read = store.read("prop/out.dat").unwrap();
            prop_assert!(read.consistent());
            prop_assert_eq!(read.data.md5(), flush.data.md5());
            // All records present (order may differ on SimpleDB).
            let mut got: Vec<_> = read.records.iter().map(|r| r.to_pair()).collect();
            let mut want: Vec<_> = flush.records.iter().map(|r| r.to_pair()).collect();
            got.sort();
            want.sort();
            prop_assert_eq!(got, want);
        }
    }
}

//! Multiple PASS clients sharing one cloud — the paper's usage model
//! (§2.5): "multiple clients can concurrently update different objects
//! at the same time." Each Architecture-3 client owns its own WAL queue
//! but shares S3 and SimpleDB. The sharded-substrate smokes at the end
//! hammer S3/SQS from OS threads and check the shard/queue layout never
//! changes what the clients observe.

use std::thread;

use pass_cloud::cloud::{ProvQuery, ProvenanceStore, S3SimpleDbSqs};
use pass_cloud::pass::FileFlush;
use pass_cloud::s3::{Metadata, S3};
use pass_cloud::simpledb::SimpleDb;
use pass_cloud::simworld::{Blob, SimWorld};
use pass_cloud::sqs::Sqs;

fn shared_cloud(world: &SimWorld) -> (S3, SimpleDb, Sqs) {
    let s3 = S3::new(world);
    s3.create_bucket(pass_cloud::cloud::layout::BUCKET).unwrap();
    let db = SimpleDb::new(world);
    db.create_domain(pass_cloud::cloud::layout::DOMAIN).unwrap();
    let sqs = Sqs::new(world);
    (s3, db, sqs)
}

#[test]
fn three_clients_interleave_without_interference() {
    let world = SimWorld::counting();
    let (s3, db, sqs) = shared_cloud(&world);
    let mut clients: Vec<S3SimpleDbSqs> = (0..3)
        .map(|i| S3SimpleDbSqs::with_services(&world, &s3, &db, &sqs, &format!("client-{i}")))
        .collect();

    // Interleave: each client persists its own files, round-robin, with
    // daemons polled mid-stream.
    for round in 0..10 {
        for (c, client) in clients.iter_mut().enumerate() {
            let flush = FileFlush::builder(format!("c{c}/file{round:02}"))
                .data(Blob::synthetic((c * 100 + round) as u64, 4096))
                .record("input", &format!("c{c}/seed:1"))
                .build();
            client.persist(&flush).unwrap();
            let _ = client.poll_daemon().unwrap();
        }
    }
    for client in clients.iter_mut() {
        client.run_daemons_until_idle().unwrap();
    }
    world.settle();

    // Every client's files are present, readable and consistent —
    // through ANY client (shared cloud).
    for c in 0..3 {
        for round in 0..10 {
            let name = format!("c{c}/file{round:02}");
            let read = clients[0].read(&name).unwrap();
            assert!(read.consistent(), "{name}");
        }
    }
    // Queues are independent: all drained.
    for client in &clients {
        assert_eq!(client.wal_depth_exact(), 0);
    }
    // The shared provenance domain holds all 30 items (plus none extra).
    let all = clients[1].query(&ProvQuery::ProvenanceOfAll).unwrap();
    assert_eq!(all.len(), 30);
}

#[test]
fn one_client_crash_does_not_disturb_the_others() {
    let world = SimWorld::counting();
    let (s3, db, sqs) = shared_cloud(&world);
    let mut healthy = S3SimpleDbSqs::with_services(&world, &s3, &db, &sqs, "healthy");
    let mut doomed = S3SimpleDbSqs::with_services(&world, &s3, &db, &sqs, "doomed");

    world.with_faults(|f| f.arm(pass_cloud::cloud::A3_BEFORE_COMMIT));
    let crash_flush = FileFlush::builder("doomed/file")
        .data(Blob::from("lost"))
        .build();
    assert!(doomed.persist(&crash_flush).unwrap_err().is_crash());

    let ok_flush = FileFlush::builder("healthy/file")
        .data(Blob::from("fine"))
        .build();
    healthy.persist(&ok_flush).unwrap();
    healthy.run_daemons_until_idle().unwrap();
    doomed.run_daemons_until_idle().unwrap();
    world.settle();

    // The healthy client's object is there; the doomed one's is not —
    // and neither client sees partial state from the other.
    assert!(healthy.read("healthy/file").unwrap().consistent());
    assert!(healthy.read("doomed/file").is_err());
    assert!(doomed.read("healthy/file").unwrap().consistent());
}

#[test]
fn clients_can_share_one_wal_queue_daemon() {
    // Degenerate-but-legal deployment: two client handles with the same
    // client id share a WAL queue; either daemon may commit either's
    // transactions.
    let world = SimWorld::counting();
    let (s3, db, sqs) = shared_cloud(&world);
    let mut a = S3SimpleDbSqs::with_services(&world, &s3, &db, &sqs, "shared");
    let mut b = S3SimpleDbSqs::with_services(&world, &s3, &db, &sqs, "shared");
    assert_eq!(a.wal_url(), b.wal_url());

    a.persist(&FileFlush::builder("a").data(Blob::from("1")).build())
        .unwrap();
    b.persist(&FileFlush::builder("b").data(Blob::from("2")).build())
        .unwrap();
    // Only B's daemon runs; it applies both transactions.
    b.run_daemons_until_idle().unwrap();
    world.settle();
    assert!(a.read("a").unwrap().consistent());
    assert!(a.read("b").unwrap().consistent());
    assert_eq!(a.wal_depth_exact(), 0);
}

#[test]
fn sharded_s3_concurrent_clients_are_layout_invariant() {
    // 4 threads hammer one bucket (disjoint key ranges, interleaved
    // LISTs) on several shard layouts. Per-shard locking must change
    // contention only: the final key set and the listing every client
    // computes afterwards must be identical on every layout.
    const THREADS: usize = 4;
    const KEYS_PER_THREAD: usize = 30;
    let mut per_layout: Vec<Vec<String>> = Vec::new();
    for shards in [1, 4, 16] {
        let world = SimWorld::counting();
        let s3 = S3::with_shards(&world, shards);
        s3.create_bucket("shared").unwrap();
        thread::scope(|scope| {
            for t in 0..THREADS {
                let s3 = s3.clone();
                scope.spawn(move || {
                    for i in 0..KEYS_PER_THREAD {
                        s3.put_object(
                            "shared",
                            &format!("c{t}/file{i:02}"),
                            Blob::synthetic((t * 100 + i) as u64, 512),
                            Metadata::new(),
                        )
                        .unwrap();
                        if i % 7 == 0 {
                            // Interleaved fan-out LISTs while others write.
                            let _ = s3.list_objects("shared", &format!("c{t}/"), None, 10);
                        }
                    }
                });
            }
        });
        world.settle();
        let keys: Vec<String> = s3
            .list_all("shared", "")
            .unwrap()
            .into_iter()
            .map(|o| o.key)
            .collect();
        assert_eq!(keys.len(), THREADS * KEYS_PER_THREAD);
        assert_eq!(keys, s3.latest_keys("shared", ""));
        per_layout.push(keys);
    }
    assert!(
        per_layout.windows(2).all(|w| w[0] == w[1]),
        "concurrent clients observed different key sets across shard layouts"
    );
}

#[test]
fn sqs_concurrent_clients_on_distinct_queues_do_not_interfere() {
    // Per-queue locking: each thread owns a queue and must get exactly
    // its own messages back, with the shared endpoint under fire.
    const THREADS: usize = 3;
    const MSGS: usize = 30;
    let world = SimWorld::counting();
    let sqs = Sqs::new(&world);
    let urls: Vec<String> = (0..THREADS)
        .map(|t| sqs.create_queue(format!("client-{t}/wal")))
        .collect();
    let drained: Vec<Vec<String>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let sqs = sqs.clone();
                let url = urls[t].clone();
                scope.spawn(move || {
                    let mut bodies = Vec::new();
                    for i in 0..MSGS {
                        sqs.send_message(&url, format!("t{t}-m{i:02}")).unwrap();
                    }
                    while bodies.len() < MSGS {
                        for msg in sqs.receive_message(&url, 10).unwrap() {
                            sqs.delete_message(&url, &msg.receipt_handle).unwrap();
                            bodies.push(msg.body);
                        }
                    }
                    bodies.sort();
                    bodies
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, bodies) in drained.iter().enumerate() {
        let expected: Vec<String> = (0..MSGS).map(|i| format!("t{t}-m{i:02}")).collect();
        assert_eq!(bodies, &expected, "queue {t} lost or leaked messages");
        assert_eq!(sqs.exact_message_count(&urls[t]), 0);
    }
}

#[test]
fn concurrent_batch_ops_are_layout_invariant() {
    // Threads fire the new batch APIs — multi-object delete on a shared
    // bucket, SendMessageBatch/DeleteMessageBatch on private queues —
    // while point ops interleave. A batch takes each touched shard lock
    // once, so layouts change contention only: the surviving key set and
    // the drained message sets must be identical on every layout.
    const THREADS: usize = 3;
    const KEYS_PER_THREAD: usize = 24;
    let mut per_layout: Vec<Vec<String>> = Vec::new();
    for shards in [1, 4, 16] {
        let world = SimWorld::counting();
        let s3 = S3::with_shards(&world, shards);
        s3.create_bucket("shared").unwrap();
        let sqs = Sqs::new(&world);
        let urls: Vec<String> = (0..THREADS)
            .map(|t| sqs.create_queue(format!("batcher-{t}")))
            .collect();
        thread::scope(|scope| {
            for (t, url) in urls.iter().enumerate() {
                let s3 = s3.clone();
                let sqs = sqs.clone();
                let url = url.clone();
                scope.spawn(move || {
                    // Fill, then batch-delete every third key.
                    let keys: Vec<String> = (0..KEYS_PER_THREAD)
                        .map(|i| {
                            let key = format!("c{t}/k{i:02}");
                            s3.put_object(
                                "shared",
                                &key,
                                Blob::synthetic((t * 100 + i) as u64, 256),
                                Metadata::new(),
                            )
                            .unwrap();
                            key
                        })
                        .collect();
                    let doomed: Vec<String> = keys.iter().step_by(3).cloned().collect();
                    assert_eq!(
                        s3.delete_objects("shared", &doomed).unwrap(),
                        doomed.len() as u64
                    );
                    // Batch-send a round of WAL-ish messages, drain with
                    // batch deletes.
                    let bodies: Vec<String> = (0..10).map(|i| format!("t{t}-m{i}")).collect();
                    for outcome in sqs.send_message_batch(&url, &bodies).unwrap() {
                        outcome.unwrap();
                    }
                    let mut seen = 0;
                    while seen < bodies.len() {
                        let got = sqs.receive_message(&url, 10).unwrap();
                        if got.is_empty() {
                            continue;
                        }
                        let handles: Vec<String> =
                            got.iter().map(|m| m.receipt_handle.clone()).collect();
                        for outcome in sqs.delete_message_batch(&url, &handles).unwrap() {
                            outcome.unwrap();
                        }
                        seen += got.len();
                    }
                    assert_eq!(sqs.exact_message_count(&url), 0);
                });
            }
        });
        world.settle();
        let keys: Vec<String> = s3
            .list_all("shared", "")
            .unwrap()
            .into_iter()
            .map(|o| o.key)
            .collect();
        assert_eq!(keys, s3.latest_keys("shared", ""));
        assert_eq!(keys.len(), THREADS * KEYS_PER_THREAD * 2 / 3);
        per_layout.push(keys);
    }
    assert!(
        per_layout.windows(2).all(|w| w[0] == w[1]),
        "concurrent batch clients observed different key sets across shard layouts"
    );
}

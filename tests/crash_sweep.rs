//! Exhaustive crash-injection sweep across every architecture, every
//! protocol crash site, and several crash ordinals — verifying the
//! invariants the paper's Table 1 claims, plus full recovery afterwards.

use pass_cloud::cloud::{ArchKind, ProvQuery, ProvenanceStore};
use pass_cloud::pass::FileFlush;
use pass_cloud::simworld::{Blob, SimWorld};

fn flushes() -> Vec<FileFlush> {
    // Three chained files plus a process with an oversized env, so every
    // protocol branch (overflow staging included) is on the path.
    let env = format!("E={}", "x".repeat(2_500));
    vec![
        FileFlush::builder("a")
            .data(Blob::synthetic(1, 2048))
            .build(),
        FileFlush::builder("proc:1:tool")
            .process()
            .record("name", "tool")
            .record("env", &env)
            .record("input", "a:1")
            .build(),
        FileFlush::builder("b")
            .data(Blob::synthetic(2, 1024))
            .record("input", "proc:1:tool:1")
            .build(),
    ]
}

/// Runs the workload with a crash armed at (`site`, `ordinal`); the
/// client retries the failed flush once (from its cache) and continues.
/// Returns the store for inspection.
fn run_with_crash(
    kind: ArchKind,
    site: pass_cloud::simworld::CrashSite,
    ordinal: u64,
) -> (SimWorld, Box<dyn ProvenanceStore>, bool) {
    let world = SimWorld::counting();
    world.with_faults(|f| f.arm_after(site, ordinal));
    let mut store = kind.build(&world);
    let mut crashed = false;
    for flush in flushes() {
        match store.persist(&flush) {
            Ok(()) => {}
            Err(e) if e.is_crash() => {
                crashed = true;
                // Client restart: PASS re-flushes from the local cache.
                store.persist(&flush).expect("retry after restart succeeds");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    store.run_daemons_until_idle().expect("daemons drain");
    world.settle();
    (world, store, crashed)
}

#[test]
fn every_client_crash_site_recovers_to_a_queryable_state() {
    for kind in ArchKind::ALL {
        for &site in kind.client_crash_sites() {
            for ordinal in 0..3 {
                let (_world, mut store, crashed) = run_with_crash(kind, site, ordinal);
                if !crashed {
                    continue;
                }
                // After retry + recovery the full chain is present and
                // causally complete.
                let read = store.read("b").expect("b readable after recovery");
                assert!(read.consistent(), "{kind:?}/{site}/{ordinal}");
                let q = store
                    .query(&ProvQuery::OutputsOf {
                        program: "tool".into(),
                    })
                    .expect("query succeeds");
                assert_eq!(
                    q.names(),
                    vec!["b:1"],
                    "{kind:?}/{site}/{ordinal}: query after crash"
                );
            }
        }
    }
}

#[test]
fn every_daemon_crash_site_replays_to_the_same_state() {
    let kind = ArchKind::S3SimpleDbSqs;
    for &site in kind.daemon_crash_sites() {
        for ordinal in 0..2 {
            let world = SimWorld::counting();
            let mut store = kind.build(&world);
            for flush in flushes() {
                store.persist(&flush).unwrap();
            }
            world.with_faults(|f| f.arm_after(site, ordinal));
            // First drain may die; a restarted daemon finishes the job.
            let crashed = store.run_daemons_until_idle().is_err();
            store.run_daemons_until_idle().expect("replay converges");
            world.settle();
            let read = store.read("b").unwrap();
            assert!(read.consistent(), "{site}/{ordinal} (crashed={crashed})");
            // Idempotent replay: record sets contain no duplicates.
            let q = store
                .query(&ProvQuery::ProvenanceOf {
                    name: "b".into(),
                    version: 1,
                })
                .unwrap();
            let records = &q.items[0].records;
            let unique: std::collections::BTreeSet<_> =
                records.iter().map(|r| r.to_pair()).collect();
            assert_eq!(
                records.len(),
                unique.len(),
                "{site}/{ordinal}: duplicated records"
            );
        }
    }
}

#[test]
fn double_crash_client_then_daemon_still_recovers() {
    let kind = ArchKind::S3SimpleDbSqs;
    let world = SimWorld::counting();
    let mut store = kind.build(&world);
    world.with_faults(|f| {
        f.arm(pass_cloud::cloud::A3_BEFORE_COMMIT);
        f.arm(pass_cloud::cloud::D3_BEFORE_MSG_DELETE);
    });
    for flush in flushes() {
        match store.persist(&flush) {
            Ok(()) => {}
            Err(e) if e.is_crash() => {
                store.persist(&flush).unwrap();
            }
            Err(e) => panic!("{e}"),
        }
    }
    let _ = store.run_daemons_until_idle(); // may crash (daemon site armed)
    store.run_daemons_until_idle().unwrap();
    world.settle();
    assert!(store.read("b").unwrap().consistent());
    let report = store.recover().unwrap();
    // Nothing left to replay afterwards.
    assert_eq!(report.transactions_replayed, 0);
}

#[test]
fn repeated_whole_dataset_persist_is_idempotent() {
    // Re-running PASS flushes (e.g. after a suspected partial upload)
    // must converge to the same provenance, on every architecture.
    for kind in ArchKind::ALL {
        let world = SimWorld::counting();
        let mut store = kind.build(&world);
        for _ in 0..2 {
            for flush in flushes() {
                store.persist(&flush).unwrap();
            }
            store.run_daemons_until_idle().unwrap();
        }
        world.settle();
        let q = store
            .query(&ProvQuery::ProvenanceOf {
                name: "b".into(),
                version: 1,
            })
            .unwrap();
        let records = &q.items[0].records;
        let unique: std::collections::BTreeSet<_> = records.iter().map(|r| r.to_pair()).collect();
        assert_eq!(
            records.len(),
            unique.len(),
            "{kind:?}: duplicate records after re-run"
        );
    }
}

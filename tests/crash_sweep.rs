//! Exhaustive crash-injection sweep across every architecture, every
//! protocol crash site, and several crash ordinals — verifying the
//! invariants the paper's Table 1 claims, plus full recovery afterwards.
//! The pipelined background-flush path gets the same treatment: crash
//! sites between timer fire, batch issue, and completion.

use pass_cloud::cloud::{
    drive_pipelined, Arch3Config, ArchKind, CloudError, DaemonDepth, ProvQuery, ProvenanceStore,
    S3SimpleDbSqs, PIPE_AFTER_GROUP_ISSUE, PIPE_AFTER_TIMER_FIRE, PIPE_BEFORE_DRAIN,
};
use pass_cloud::pass::{FileFlush, FlushPolicy};
use pass_cloud::simworld::{Blob, CrashSite, Op, SimDuration, SimWorld};

fn flushes() -> Vec<FileFlush> {
    // Three chained files plus a process with an oversized env, so every
    // protocol branch (overflow staging included) is on the path.
    let env = format!("E={}", "x".repeat(2_500));
    vec![
        FileFlush::builder("a")
            .data(Blob::synthetic(1, 2048))
            .build(),
        FileFlush::builder("proc:1:tool")
            .process()
            .record("name", "tool")
            .record("env", &env)
            .record("input", "a:1")
            .build(),
        FileFlush::builder("b")
            .data(Blob::synthetic(2, 1024))
            .record("input", "proc:1:tool:1")
            .build(),
    ]
}

/// Runs the workload with a crash armed at (`site`, `ordinal`); the
/// client retries the failed flush once (from its cache) and continues.
/// Returns the store for inspection.
fn run_with_crash(
    kind: ArchKind,
    site: pass_cloud::simworld::CrashSite,
    ordinal: u64,
) -> (SimWorld, Box<dyn ProvenanceStore>, bool) {
    let world = SimWorld::counting();
    world.with_faults(|f| f.arm_after(site, ordinal));
    let mut store = kind.build(&world);
    let mut crashed = false;
    for flush in flushes() {
        match store.persist(&flush) {
            Ok(()) => {}
            Err(e) if e.is_crash() => {
                crashed = true;
                // Client restart: PASS re-flushes from the local cache.
                store.persist(&flush).expect("retry after restart succeeds");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    store.run_daemons_until_idle().expect("daemons drain");
    world.settle();
    (world, store, crashed)
}

#[test]
fn every_client_crash_site_recovers_to_a_queryable_state() {
    for kind in ArchKind::ALL {
        for &site in kind.client_crash_sites() {
            for ordinal in 0..3 {
                let (_world, mut store, crashed) = run_with_crash(kind, site, ordinal);
                if !crashed {
                    continue;
                }
                // After retry + recovery the full chain is present and
                // causally complete.
                let read = store.read("b").expect("b readable after recovery");
                assert!(read.consistent(), "{kind:?}/{site}/{ordinal}");
                let q = store
                    .query(&ProvQuery::OutputsOf {
                        program: "tool".into(),
                    })
                    .expect("query succeeds");
                assert_eq!(
                    q.names(),
                    vec!["b:1"],
                    "{kind:?}/{site}/{ordinal}: query after crash"
                );
            }
        }
    }
}

#[test]
fn every_daemon_crash_site_replays_to_the_same_state() {
    let kind = ArchKind::S3SimpleDbSqs;
    for &site in kind.daemon_crash_sites() {
        for ordinal in 0..2 {
            let world = SimWorld::counting();
            let mut store = kind.build(&world);
            for flush in flushes() {
                store.persist(&flush).unwrap();
            }
            world.with_faults(|f| f.arm_after(site, ordinal));
            // First drain may die; a restarted daemon finishes the job.
            let crashed = store.run_daemons_until_idle().is_err();
            store.run_daemons_until_idle().expect("replay converges");
            world.settle();
            let read = store.read("b").unwrap();
            assert!(read.consistent(), "{site}/{ordinal} (crashed={crashed})");
            // Idempotent replay: record sets contain no duplicates.
            let q = store
                .query(&ProvQuery::ProvenanceOf {
                    name: "b".into(),
                    version: 1,
                })
                .unwrap();
            let records = &q.items[0].records;
            let unique: std::collections::BTreeSet<_> =
                records.iter().map(|r| r.to_pair()).collect();
            assert_eq!(
                records.len(),
                unique.len(),
                "{site}/{ordinal}: duplicated records"
            );
        }
    }
}

/// Satellite of the pipelined-daemon issue: every daemon crash site
/// fires *inside* the pipelined receive/assemble/apply region, at a
/// shallow and a deep window. A crashed daemon drops its in-memory
/// assemblies; the restarted daemon's replay must converge to the same
/// consistent state — no transaction lost, no record duplicated, and
/// the WAL fully drained — at every depth.
#[test]
fn every_daemon_crash_site_replays_under_a_pipelined_daemon() {
    for depth in [2, 8] {
        for &site in ArchKind::S3SimpleDbSqs.daemon_crash_sites() {
            for ordinal in 0..2 {
                let world = SimWorld::counting();
                let mut store = S3SimpleDbSqs::new(&world, "piped");
                store.set_config(Arch3Config {
                    daemon_depth: DaemonDepth::Fixed(depth),
                    ..Arch3Config::default()
                });
                for flush in flushes() {
                    store.persist(&flush).unwrap();
                }
                world.with_faults(|f| f.arm_after(site, ordinal));
                // First drain may die mid-region; the restarted daemon
                // finishes the job.
                let crashed = store.run_daemons_until_idle().is_err();
                store.run_daemons_until_idle().expect("replay converges");
                world.settle();
                let tag = format!("depth {depth}/{site}/{ordinal} (crashed={crashed})");
                assert_eq!(store.wal_depth_exact(), 0, "{tag}: WAL must drain");
                let read = store.read("b").unwrap();
                assert!(read.consistent(), "{tag}");
                let q = store
                    .query(&ProvQuery::OutputsOf {
                        program: "tool".into(),
                    })
                    .unwrap();
                assert_eq!(q.names(), vec!["b:1"], "{tag}: lost the chain");
                let q = store
                    .query(&ProvQuery::ProvenanceOf {
                        name: "b".into(),
                        version: 1,
                    })
                    .unwrap();
                let records = &q.items[0].records;
                let unique: std::collections::BTreeSet<_> =
                    records.iter().map(|r| r.to_pair()).collect();
                assert_eq!(records.len(), unique.len(), "{tag}: duplicated records");
            }
        }
    }
}

/// Regression for the redelivery-handle bug: a transaction too large
/// for one receive round parks in the daemon's assembly while its held
/// records' visibility timeouts lapse and they redeliver. The daemon
/// must *replace* each stale receipt handle with the fresh one — the
/// serial daemon used to append, padding every `DeleteMessageBatch`
/// with dead billable entries — so once the transaction completes, the
/// delete batches carry exactly one handle per WAL message.
#[test]
fn redelivered_records_replace_stale_receipt_handles() {
    let world = SimWorld::counting();
    let mut store = S3SimpleDbSqs::new(&world, "redeliver");
    // ~96 KB of inline pairs (each value under the 1 KB overflow
    // threshold) spans a dozen 8 KB WAL messages.
    let mut big = FileFlush::builder("big").data(Blob::synthetic(9, 512));
    let filler = "v".repeat(800);
    for i in 0..120 {
        big = big.record(&format!("ancestor{i}"), &filler);
    }
    store.persist(&big.build()).unwrap();
    let wal_messages = store.wal_depth_exact();
    assert!(
        wal_messages > 10,
        "the transaction must not fit one receive round: {wal_messages} messages"
    );
    // Step the daemon with the visibility timeout (30 s) lapsing between
    // rounds, so every held record redelivers before the next receive.
    let mut rounds = 0;
    while store.wal_depth_exact() > 0 {
        store.daemon().step(true).unwrap();
        world.advance(SimDuration::from_secs(31));
        rounds += 1;
        assert!(rounds < 100, "the transaction must eventually apply");
    }
    assert_eq!(store.daemon().pending_assemblies(), 0);
    assert!(store.read("big").unwrap().consistent());
    assert_eq!(
        world.meters().batch_entry_count(Op::SqsDeleteMessageBatch),
        wal_messages as u64,
        "delete batches must carry exactly one live handle per WAL message — \
         stale handles from redeliveries must be replaced, not appended"
    );
}

/// Regression for the assembly leak: a client that crashes before its
/// COMMIT record leaves a commit-less transaction the daemon parks in
/// memory. Its messages age out of the queue at the SQS retention
/// bound, so the transaction can never complete — the daemon must
/// evict the assembly instead of holding it forever.
#[test]
fn abandoned_assemblies_are_evicted_past_retention() {
    let world = SimWorld::counting();
    let mut store = S3SimpleDbSqs::new(&world, "leak");
    world.with_faults(|f| f.arm(pass_cloud::cloud::A3_BEFORE_COMMIT));
    let err = store
        .persist(&flushes()[0])
        .expect_err("the armed client crash must fire");
    assert!(err.is_crash());
    // The commit-less records sit in the WAL; the daemon parks them.
    let mut steps = 0;
    while store.daemon().pending_assemblies() == 0 {
        store.daemon().step(true).unwrap();
        steps += 1;
        assert!(steps < 50, "the daemon must pick up the orphaned records");
    }
    // Past the 4-day retention window the messages are gone from the
    // queue; the next step must drop the assembly rather than leak it.
    world.advance(SimDuration::from_secs(5 * 24 * 3600));
    let progress = store.daemon().step(true).unwrap();
    assert!(progress.evicted > 0, "the stale assembly must be evicted");
    assert_eq!(store.daemon().pending_assemblies(), 0);
}

#[test]
fn double_crash_client_then_daemon_still_recovers() {
    let kind = ArchKind::S3SimpleDbSqs;
    let world = SimWorld::counting();
    let mut store = kind.build(&world);
    world.with_faults(|f| {
        f.arm(pass_cloud::cloud::A3_BEFORE_COMMIT);
        f.arm(pass_cloud::cloud::D3_BEFORE_MSG_DELETE);
    });
    for flush in flushes() {
        match store.persist(&flush) {
            Ok(()) => {}
            Err(e) if e.is_crash() => {
                store.persist(&flush).unwrap();
            }
            Err(e) => panic!("{e}"),
        }
    }
    let _ = store.run_daemons_until_idle(); // may crash (daemon site armed)
    store.run_daemons_until_idle().unwrap();
    world.settle();
    assert!(store.read("b").unwrap().consistent());
    let report = store.recover().unwrap();
    // Nothing left to replay afterwards.
    assert_eq!(report.transactions_replayed, 0);
}

/// A pipelined-client policy under which the deadline timer genuinely
/// fires: a generous count threshold, a 300 ms age bound, and (in the
/// driver) 200 ms of think time between closes.
fn trickle_policy() -> FlushPolicy {
    FlushPolicy::new(100, u64::MAX).with_max_age(SimDuration::from_millis(300))
}

/// Ten independent single-record files, so any prefix of issued groups
/// is self-contained (no dangling ancestor references).
fn independent_flushes() -> Vec<FileFlush> {
    (0..10)
        .map(|i| {
            FileFlush::builder(format!("ind{i}"))
                .data(Blob::synthetic(100 + i, 256))
                .build()
        })
        .collect()
}

#[test]
fn every_pipelined_crash_site_recovers_after_a_client_restart() {
    // The union of the pipeline's own step boundaries (timer fire →
    // batch issue → completion) and the per-architecture client sites,
    // which now fire *inside* a pipelined issue. After the crash the
    // client restarts and re-flushes everything from its cache; the
    // full chain must come back consistent, with no duplicate records.
    for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
        let mut sites: Vec<CrashSite> = vec![
            PIPE_AFTER_TIMER_FIRE,
            PIPE_AFTER_GROUP_ISSUE,
            PIPE_BEFORE_DRAIN,
        ];
        sites.extend(kind.client_crash_sites().iter().copied());
        for site in sites {
            for ordinal in 0..2 {
                let world = SimWorld::counting();
                world.with_faults(|f| f.arm_after(site, ordinal));
                let mut store = kind.build(&world);
                let crashed = match drive_pipelined(
                    &world,
                    store.as_mut(),
                    &flushes(),
                    trickle_policy(),
                    4,
                    SimDuration::from_millis(200),
                ) {
                    Ok(_) => false,
                    Err(e) if e.is_crash() => {
                        // Client restart: PASS re-flushes from cache.
                        drive_pipelined(
                            &world,
                            store.as_mut(),
                            &flushes(),
                            trickle_policy(),
                            4,
                            SimDuration::from_millis(200),
                        )
                        .expect("retry after restart succeeds");
                        true
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                };
                if !crashed {
                    continue;
                }
                store.run_daemons_until_idle().expect("daemons drain");
                world.settle();
                let read = store.read("b").expect("b readable after recovery");
                assert!(read.consistent(), "{kind:?}/{site}/{ordinal}");
                let q = store
                    .query(&ProvQuery::ProvenanceOf {
                        name: "b".into(),
                        version: 1,
                    })
                    .expect("query succeeds");
                let records = &q.items[0].records;
                let unique: std::collections::BTreeSet<_> =
                    records.iter().map(|r| r.to_pair()).collect();
                assert_eq!(
                    records.len(),
                    unique.len(),
                    "{kind:?}/{site}/{ordinal}: duplicated records after pipelined re-flush"
                );
            }
        }
    }
}

#[test]
fn pipelined_groups_issued_before_a_crash_survive_it() {
    // Crash between batch issues: groups already issued are on the
    // wire and must be durable once the daemons drain; groups never
    // issued must leave no trace. (Groups of 2 over independent files,
    // crash after the first issue.)
    for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
        let world = SimWorld::counting();
        world.with_faults(|f| f.arm(PIPE_AFTER_GROUP_ISSUE));
        let mut store = kind.build(&world);
        let err = drive_pipelined(
            &world,
            store.as_mut(),
            &independent_flushes(),
            FlushPolicy::new(2, u64::MAX).without_max_age(),
            4,
            SimDuration::ZERO,
        )
        .expect_err("the armed site must fire");
        assert!(err.is_crash(), "{kind:?}: {err}");
        store.run_daemons_until_idle().expect("daemons drain");
        world.settle();
        // The issued group (ind0, ind1) is durable…
        for name in ["ind0", "ind1"] {
            let read = store.read(name).expect("issued group durable");
            assert!(read.consistent(), "{kind:?}/{name}");
        }
        // …and the un-issued suffix is wholly absent.
        for i in 2..10 {
            assert!(
                matches!(
                    store.read(&format!("ind{i}")),
                    Err(CloudError::NotFound { .. })
                ),
                "{kind:?}: un-issued flush ind{i} must not surface"
            );
        }
    }
}

#[test]
fn pipelined_commitless_suffix_is_ignored_by_the_commit_daemon() {
    // A crash *inside* a pipelined arch3 issue, before the group's
    // final COMMIT batch ships: every transaction of that group is a
    // commit-less suffix the daemon must ignore forever — no data
    // object may surface. A client restart then recovers everything.
    let kind = ArchKind::S3SimpleDbSqs;
    let world = SimWorld::counting();
    world.with_faults(|f| f.arm(pass_cloud::cloud::A3_BEFORE_COMMIT));
    let mut store = kind.build(&world);
    let err = drive_pipelined(
        &world,
        store.as_mut(),
        &independent_flushes(),
        FlushPolicy::new(2, u64::MAX).without_max_age(),
        4,
        SimDuration::ZERO,
    )
    .expect_err("the armed site must fire");
    assert!(err.is_crash());
    store.run_daemons_until_idle().expect("daemons drain");
    world.settle();
    for i in 0..10 {
        assert!(
            matches!(
                store.read(&format!("ind{i}")),
                Err(CloudError::NotFound { .. })
            ),
            "commit-less transaction ind{i} must stay invisible"
        );
    }
    // Client restart: the cached flushes go out again, cleanly.
    drive_pipelined(
        &world,
        store.as_mut(),
        &independent_flushes(),
        FlushPolicy::new(2, u64::MAX).without_max_age(),
        4,
        SimDuration::ZERO,
    )
    .expect("retry succeeds");
    store.run_daemons_until_idle().expect("daemons drain");
    world.settle();
    for i in 0..10 {
        assert!(
            store.read(&format!("ind{i}")).unwrap().consistent(),
            "ind{i} recovered"
        );
    }
}

#[test]
fn repeated_whole_dataset_persist_is_idempotent() {
    // Re-running PASS flushes (e.g. after a suspected partial upload)
    // must converge to the same provenance, on every architecture.
    for kind in ArchKind::ALL {
        let world = SimWorld::counting();
        let mut store = kind.build(&world);
        for _ in 0..2 {
            for flush in flushes() {
                store.persist(&flush).unwrap();
            }
            store.run_daemons_until_idle().unwrap();
        }
        world.settle();
        let q = store
            .query(&ProvQuery::ProvenanceOf {
                name: "b".into(),
                version: 1,
            })
            .unwrap();
        let records = &q.items[0].records;
        let unique: std::collections::BTreeSet<_> = records.iter().map(|r| r.to_pair()).collect();
        assert_eq!(
            records.len(),
            unique.len(),
            "{kind:?}: duplicate records after re-run"
        );
    }
}

/// Satellite of the closure-index issue: a crash between the provenance
/// commit and the closure-index write, or mid-index-batch, must replay
/// to a closure byte-identical to a from-scratch build of the same
/// corpus — the index may be momentarily stale, never silently wrong.
#[test]
fn index_crash_sites_replay_to_a_from_scratch_closure() {
    use pass_cloud::cloud::layout::CLOSURE_DOMAIN;
    use pass_cloud::cloud::{
        Arch2Config, ClosureMode, S3SimpleDb, A2_BEFORE_INDEX_PUT, A2_MID_INDEX_PUT,
        D3_BEFORE_INDEX_PUT, D3_MID_INDEX_PUT,
    };

    // Reduce the closure domain to bytes: every live item with its
    // attribute pairs, sorted — grouping and replay history must be
    // invisible at this level.
    fn closure_bytes(db: &pass_cloud::simpledb::SimpleDb) -> String {
        let mut acc = String::new();
        for name in db.latest_item_names(CLOSURE_DOMAIN) {
            let mut attrs: Vec<(String, String)> = db
                .latest_item(CLOSURE_DOMAIN, &name)
                .unwrap_or_default()
                .into_iter()
                .map(|a| (a.name, a.value))
                .collect();
            attrs.sort();
            acc.push_str(&name);
            for (k, v) in attrs {
                acc.push_str(&format!("|{k}={v}"));
            }
            acc.push('\n');
        }
        acc
    }

    // The from-scratch rebuild: the same corpus, no crash.
    let reference = {
        let world = SimWorld::counting();
        let mut store = S3SimpleDb::new(&world);
        store.set_config(Arch2Config {
            closure: ClosureMode::Maintain,
            ..Arch2Config::default()
        });
        for flush in flushes() {
            store.persist(&flush).unwrap();
        }
        world.settle();
        closure_bytes(store.simpledb())
    };
    assert!(!reference.is_empty(), "the corpus must build a closure");

    // Arch2: the client crashes around its index write and re-flushes
    // from cache, like every other client site.
    for site in [A2_BEFORE_INDEX_PUT, A2_MID_INDEX_PUT] {
        for ordinal in 0..3 {
            let world = SimWorld::counting();
            world.with_faults(|f| f.arm_after(site, ordinal));
            let mut store = S3SimpleDb::new(&world);
            store.set_config(Arch2Config {
                closure: ClosureMode::Maintain,
                ..Arch2Config::default()
            });
            let mut crashed = false;
            for flush in flushes() {
                match store.persist(&flush) {
                    Ok(()) => {}
                    Err(e) if e.is_crash() => {
                        crashed = true;
                        store.persist(&flush).expect("retry after restart succeeds");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            world.settle();
            if ordinal == 0 {
                assert!(crashed, "{site}: the armed site must fire");
            }
            assert_eq!(
                closure_bytes(store.simpledb()),
                reference,
                "{site}/{ordinal}: replay diverged from the from-scratch closure"
            );
        }
    }

    // Arch2 without the retry: a client that dies between the
    // provenance commit and the index write leaves the closure stale.
    // The next commit that references the un-indexed node must pull it
    // in and heal the index to the exact from-scratch state.
    {
        let world = SimWorld::counting();
        // Ordinal 1 skips the first flush ("a") and fires on the
        // process flush — whose closure rows then never get written.
        world.with_faults(|f| f.arm_after(A2_BEFORE_INDEX_PUT, 1));
        let mut store = S3SimpleDb::new(&world);
        store.set_config(Arch2Config {
            closure: ClosureMode::Maintain,
            ..Arch2Config::default()
        });
        let mut crashed = false;
        for flush in flushes() {
            match store.persist(&flush) {
                Ok(()) => {}
                Err(e) if e.is_crash() => crashed = true, // no retry
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        world.settle();
        assert!(crashed, "the armed site must fire");
        assert_eq!(
            closure_bytes(store.simpledb()),
            reference,
            "persisting the child must heal the stale parent into the index"
        );
    }

    // Arch3: the commit daemon crashes around its index write; the WAL
    // replays the whole group, index write included.
    let arch3_reference = {
        let world = SimWorld::counting();
        let mut store = S3SimpleDbSqs::new(&world, "closure-ref");
        store.set_config(Arch3Config {
            closure: ClosureMode::Maintain,
            ..Arch3Config::default()
        });
        for flush in flushes() {
            store.persist(&flush).unwrap();
        }
        store.run_daemons_until_idle().unwrap();
        world.settle();
        closure_bytes(store.simpledb())
    };
    // The closure is a pure function of the committed edges, so the
    // architectures must agree byte-for-byte on the same corpus.
    assert_eq!(arch3_reference, reference);
    for site in [D3_BEFORE_INDEX_PUT, D3_MID_INDEX_PUT] {
        for ordinal in 0..2 {
            let world = SimWorld::counting();
            let mut store = S3SimpleDbSqs::new(&world, "closure-crash");
            store.set_config(Arch3Config {
                closure: ClosureMode::Maintain,
                ..Arch3Config::default()
            });
            for flush in flushes() {
                store.persist(&flush).unwrap();
            }
            world.with_faults(|f| f.arm_after(site, ordinal));
            // First drain may die; a restarted daemon finishes the job.
            let crashed = store.run_daemons_until_idle().is_err();
            store.run_daemons_until_idle().expect("replay converges");
            world.settle();
            if ordinal == 0 {
                assert!(crashed, "{site}: the armed site must fire");
            }
            assert_eq!(
                closure_bytes(store.simpledb()),
                arch3_reference,
                "{site}/{ordinal}: daemon replay diverged from the from-scratch closure"
            );
        }
    }
}

/// Satellite of the dynamic-shard-map issue: daemon crashes replayed
/// over a domain/bucket that split mid-run must converge to the exact
/// store a static-shard run converges to. The split runs force a few
/// splits after the persists and keep an aggressive share policy armed
/// for the drain, so replay routes through shards that did not exist
/// when the WAL records were written.
#[test]
fn daemon_crashes_with_splitting_converge_to_the_static_store() {
    use pass_cloud::cloud::layout::{BUCKET, DOMAIN};
    use pass_cloud::simworld::{ShardPlan, SplitPolicy};

    // Reduce a converged store to bytes: every live object's MD5 plus
    // every live provenance item's attribute set, in name order.
    fn state_bytes(store: &S3SimpleDbSqs) -> String {
        let mut acc = String::new();
        for key in store.s3().latest_keys(BUCKET, "") {
            let obj = store
                .s3()
                .latest_object(BUCKET, &key)
                .expect("listed key has a latest version");
            acc.push_str(&format!("{key}={}\n", obj.etag.to_hex()));
        }
        for name in store.simpledb().latest_item_names(DOMAIN) {
            acc.push_str(&name);
            for attr in store
                .simpledb()
                .latest_item(DOMAIN, &name)
                .unwrap_or_default()
            {
                acc.push_str(&format!("|{}={}", attr.name, attr.value));
            }
            acc.push('\n');
        }
        acc
    }

    let aggressive = SplitPolicy::by_share(0.3)
        .with_min_ops(8)
        .with_max_shards(32);
    for &site in ArchKind::S3SimpleDbSqs.daemon_crash_sites() {
        for ordinal in 0..2 {
            let run = |plan: ShardPlan, force_splits: bool| {
                let world = SimWorld::counting();
                let mut store = S3SimpleDbSqs::with_shard_plan(&world, "crash-split", plan);
                let mut work = flushes();
                work.extend(independent_flushes());
                for flush in &work {
                    store.persist(flush).unwrap();
                }
                if force_splits {
                    // The bucket holds the data objects already (arch3
                    // clients write S3 directly); the domain fills only
                    // as the daemon drains, so it splits later.
                    for _ in 0..2 {
                        store
                            .s3()
                            .split_hottest(BUCKET)
                            .expect("a populated bucket shard can split");
                    }
                }
                world.with_faults(|f| f.arm_after(site, ordinal));
                // First drain may die; a restarted daemon finishes.
                let _ = store.run_daemons_until_idle();
                if force_splits {
                    // Split whatever the crashed drain managed to apply,
                    // so the replay routes through shards that did not
                    // exist when it started (best-effort: an early crash
                    // may have left too little to split).
                    let _ = store.simpledb().split_hottest(DOMAIN);
                }
                store.run_daemons_until_idle().expect("replay converges");
                world.settle();
                let shards = store.s3().bucket_shard_count(BUCKET).unwrap()
                    + store.simpledb().domain_shard_count(DOMAIN).unwrap();
                (state_bytes(&store), shards)
            };
            let (static_state, static_shards) = run(ShardPlan::fixed(4), false);
            let (split_state, split_shards) = run(ShardPlan::fixed(4).with_split(aggressive), true);
            assert_eq!(
                static_shards, 8,
                "{site}/{ordinal}: static run must not split"
            );
            assert!(
                split_shards >= 10,
                "{site}/{ordinal}: the split run must have split"
            );
            assert_eq!(
                static_state, split_state,
                "{site}/{ordinal}: splitting changed the converged store"
            );
        }
    }
}

//! Vendored no-op `Serialize` / `Deserialize` derives.
//!
//! The workspace never serializes at runtime (no `serde_json`/`bincode`
//! backend is compiled in), so these derives exist purely to accept the
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` annotations
//! scattered through the codebase while building offline. They register
//! the `serde` helper attribute and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access and the workspace never
//! serializes at runtime (there is no `serde_json`/`bincode` backend), so
//! this shim provides just enough trait surface for the code to compile:
//! the four core traits and a `Vec<u8>` deserialize impl used by the
//! `bytes` compatibility helper in `simworld`. The paired derive macros
//! (re-exported from [`serde_derive`]) expand to nothing.

#![forbid(unsafe_code)]

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Error behaviour shared by serializer/deserializer error types.
pub mod de {
    use std::fmt::Display;

    /// Minimal version of `serde::de::Error`.
    pub trait Error: Sized + Display {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Error behaviour for serializers, mirroring `serde::ser::Error`.
pub mod ser {
    pub use super::de::Error;
}

/// A data structure that can be serialized (marker in this shim; the
/// no-op derive does not implement it).
pub trait Serialize {}

/// A format backend that serializes values.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the backend.
    type Error: de::Error;

    /// Serializes a raw byte string.
    ///
    /// # Errors
    ///
    /// Backend-defined.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A format backend that deserializes values.
pub trait Deserializer<'de>: Sized {
    /// Error type of the backend.
    type Error: de::Error;
}

/// A data structure deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given backend.
    ///
    /// # Errors
    ///
    /// Backend-defined.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "the vendored serde shim has no deserialization backend",
        ))
    }
}

/// A ready-made error type for backends built on this shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShimError(pub String);

impl Display for ShimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ShimError {}

impl de::Error for ShimError {
    fn custom<T: Display>(msg: T) -> Self {
        ShimError(msg.to_string())
    }
}

//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `bytes` API it actually uses: a cheaply clonable,
//! contiguous, immutable byte buffer with zero-copy `slice`.
//!
//! Semantics match the real crate for the covered surface: `Bytes` derefs
//! to `[u8]`, compares/hashes by content, and `slice` shares the backing
//! allocation.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable contiguous immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is inverted or out of bounds, mirroring the
    /// real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi,
            "range start must not be greater than end: {lo} <= {hi}"
        );
        assert!(
            hi <= self.len(),
            "range end out of bounds: {hi} <= {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("b\"")?;
        for &b in self.as_ref() {
            match b {
                b'"' => f.write_str("\\\"")?,
                b'\\' => f.write_str("\\\\")?,
                b'\n' => f.write_str("\\n")?,
                b'\r' => f.write_str("\\r")?,
                b'\t' => f.write_str("\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        f.write_str("\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_matches() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<_>>()[..]);
        let nested = s.slice(2..5);
        assert_eq!(&nested[..], &[12, 13, 14]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn eq_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3]).slice(1..4);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'h', b'i', 0, b'\n']);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\\n\"");
    }
}

//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion API its benches use: groups, ids,
//! throughput annotations, `iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple warm-up + timed-batch loop reporting the mean wall-clock time
//! per iteration — adequate for relative comparisons, not a statistics
//! engine.
//!
//! Benches honour the usual harness conventions: a positional CLI filter
//! selects benchmarks by substring, and `--list` prints names without
//! running. Unknown flags (`--bench`, `--save-baseline`, ...) are
//! ignored so `cargo bench` invocations keep working.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark context handed to every registered function.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Builds a context from the process CLI arguments.
    pub fn from_args() -> Criterion {
        // Real-criterion flags that take a separate value; their value
        // must not be mistaken for the positional name filter.
        const VALUE_FLAGS: &[&str] = &[
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--measurement-time",
            "--warm-up-time",
            "--sample-size",
            "--nresamples",
            "--significance-level",
            "--noise-threshold",
            "--confidence-level",
            "--profile-time",
            "--output-format",
            "--color",
        ];
        let mut filter = None;
        let mut list_only = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--list" => list_only = true,
                a if VALUE_FLAGS.contains(&a) => {
                    args.next(); // consume and ignore the flag's value
                }
                a if a.starts_with("--") => {} // --bench, --quiet, --flag=value, ...
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, list_only }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        run_one(self, &name, f);
        self
    }

    fn selected(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not normalise by
    /// throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(self.criterion, &name, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, name: &str, mut f: F) {
    if !criterion.selected(name) {
        return;
    }
    if criterion.list_only {
        println!("{name}: bench");
        return;
    }
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters.max(1) as u32
    };
    println!(
        "bench: {name:<60} {:>12.3} µs/iter ({} iters)",
        per_iter.as_nanos() as f64 / 1_000.0,
        bencher.iters
    );
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let started = Instant::now();
        let mut iters = 0;
        while started.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = started.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let mut measured = Duration::ZERO;
        let mut iters = 0;
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

/// How `iter_batched` amortises setup; accepted for API compatibility.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
        }
    };
}

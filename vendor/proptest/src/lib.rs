//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its property suite uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * strategies: integer ranges, `any::<T>()`, regex-subset string
//!   literals, tuples, [`collection::vec`], [`sample::select`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Unlike the real crate there is **no shrinking**: a failing case
//! reports its case number and generated inputs instead. Runs are fully
//! deterministic — the RNG for case *k* of test *t* is seeded from
//! `(t, k, PROPTEST_SEED)` — so CI is reproducible by construction.
//! Set `PROPTEST_CASES` to widen or narrow the number of cases and
//! `PROPTEST_SEED` to explore a different deterministic universe.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Regex-subset string generation (used by `&str` strategies).
mod string;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Select;

    /// A strategy choosing uniformly among `items`.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }
}

/// Arbitrary-value strategies (`any`).
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide magnitude range.
            let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mantissa * 2f64.powi(exp)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so `prop::sample::select`-style paths work, as in the real
    /// prelude.
    pub use crate as prop;
}

/// Runs each embedded test function over many generated cases.
///
/// Supports the subset of the real macro's grammar used here: an
/// optional leading `#![proptest_config(expr)]`, then one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( #[test] fn $name:ident( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::resolve_cases(&config);
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_name, case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )*
                    // Render inputs up front: the body may consume them.
                    let inputs: ::std::string::String =
                        [$( format!("\n  {} = {:?}", stringify!($arg), &$arg) ),*].concat();
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property failed at case {case}/{cases}: {err}\n\
                             inputs:{inputs}\n\
                             (deterministic; rerun reproduces — set PROPTEST_SEED \
                             to explore other universes, PROPTEST_CASES to widen)",
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

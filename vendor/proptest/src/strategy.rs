//! The [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::arbitrary::Arbitrary;
use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate this shim has no shrinking: `generate` draws a
/// single value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `any::<T>()` — all values of `T`.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                rng.below_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.below_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

/// String literals are regex-subset strategies, as in the real crate.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// A fixed value (`Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuples {
    ($( ($($name:ident),+) ),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuples!((A, B), (A, B, C), (A, B, C, D));

/// Produced by [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S: Strategy> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "cannot sample empty size range"
        );
        let len = rng.below_inclusive(self.size.start as u64, self.size.end as u64 - 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Produced by [`crate::sample::select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone + std::fmt::Debug> {
    pub(crate) items: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below_inclusive(0, self.items.len() as u64 - 1) as usize;
        self.items[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_any() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (5u64..9).generate(&mut r);
            assert!((5..9).contains(&v));
            let _: u64 = any::<u64>().generate(&mut r);
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_and_select() {
        let mut r = rng();
        let (a, b) = (0u32..10, "[a-c]{2}").generate(&mut r);
        assert!(a < 10);
        assert_eq!(b.chars().count(), 2);
        let s = crate::sample::select(vec!["x", "y"]).generate(&mut r);
        assert!(s == "x" || s == "y");
    }
}

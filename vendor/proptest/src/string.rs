//! Generation of strings from the regex subset the workspace's
//! properties use: literal characters, character classes (`[a-z0-9_]`,
//! including ranges and `\u{..}` escapes), the `\PC` "any
//! non-control character" escape, and `{m,n}` / `{n}` quantifiers.

use crate::test_runner::TestRng;

/// Characters `\PC` draws from: printable ASCII plus a handful of
/// multi-byte code points so UTF-8 boundary handling gets exercised.
fn non_control_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
    chars.extend(['\u{a0}', 'é', 'ß', 'λ', '→', '‖', '☃', '中', '🦀']);
    chars
}

#[derive(Debug)]
enum Element {
    /// One character drawn from a set.
    Class(Vec<char>),
    /// A fixed character.
    Literal(char),
}

#[derive(Debug)]
struct Quantified {
    element: Element,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset, naming the pattern —
/// a property author error, not a runtime condition.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for q in &elements {
        let count = rng.below_inclusive(u64::from(q.min), u64::from(q.max)) as u32;
        for _ in 0..count {
            match &q.element {
                Element::Literal(c) => out.push(*c),
                Element::Class(set) => {
                    let idx = rng.below_inclusive(0, set.len() as u64 - 1) as usize;
                    out.push(set[idx]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let element = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                Element::Class(set)
            }
            '\\' => {
                let (c, next) = parse_escape(pattern, &chars, i + 1);
                i = next;
                c
            }
            c => {
                i += 1;
                Element::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(pattern, &chars, &mut i);
        out.push(Quantified { element, min, max });
    }
    out
}

/// Parses the inside of a `[...]` class starting at `i`; returns the
/// expanded set and the index just past the closing `]`.
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    let mut pending: Option<char> = None; // candidate left end of a range
    loop {
        let c = *unsupported_if_none(pattern, chars.get(i));
        match c {
            ']' => {
                set.extend(pending);
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                return (set, i + 1);
            }
            '-' if pending.is_some() && chars.get(i + 1).is_some_and(|c| *c != ']') => {
                let lo = pending.take().unwrap();
                let (hi, next) = parse_class_char(pattern, chars, i + 1);
                i = next;
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                set.extend(lo..=hi);
            }
            _ => {
                set.extend(pending);
                let (c, next) = parse_class_char(pattern, chars, i);
                pending = Some(c);
                i = next;
            }
        }
    }
}

/// One (possibly escaped) concrete character inside a class.
fn parse_class_char(pattern: &str, chars: &[char], i: usize) -> (char, usize) {
    let c = *unsupported_if_none(pattern, chars.get(i));
    if c != '\\' {
        return (c, i + 1);
    }
    let (element, next) = parse_escape(pattern, chars, i + 1);
    match element {
        Element::Literal(c) => (c, next),
        Element::Class(_) => panic!("class escapes not supported inside [...] in {pattern:?}"),
    }
}

/// An escape sequence starting just after the backslash.
fn parse_escape(pattern: &str, chars: &[char], i: usize) -> (Element, usize) {
    let c = *unsupported_if_none(pattern, chars.get(i));
    match c {
        'P' | 'p' => {
            // Only \PC ("not a control character") is supported.
            let class = *unsupported_if_none(pattern, chars.get(i + 1));
            assert!(
                c == 'P' && class == 'C',
                "only the \\PC class escape is supported, in pattern {pattern:?}"
            );
            (Element::Class(non_control_alphabet()), i + 2)
        }
        'u' => {
            assert!(
                chars.get(i + 1) == Some(&'{'),
                "\\u must be \\u{{hex}} in pattern {pattern:?}"
            );
            let mut j = i + 2;
            let mut value = 0u32;
            while let Some(d) = chars.get(j).and_then(|c| c.to_digit(16)) {
                value = value * 16 + d;
                j += 1;
            }
            assert!(
                chars.get(j) == Some(&'}'),
                "unterminated \\u{{...}} in pattern {pattern:?}"
            );
            let c = char::from_u32(value)
                .unwrap_or_else(|| panic!("invalid code point \\u{{{value:x}}} in {pattern:?}"));
            (Element::Literal(c), j + 1)
        }
        'n' => (Element::Literal('\n'), i + 1),
        'r' => (Element::Literal('\r'), i + 1),
        't' => (Element::Literal('\t'), i + 1),
        '\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '-' | '+' | '*' | '?' | '|' | '^'
        | '$' | '/' | '%' | ' ' => (Element::Literal(c), i + 1),
        other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
    }
}

/// A `{m,n}` / `{n}` quantifier at `*i` (advancing it), else `{1,1}`.
fn parse_quantifier(pattern: &str, chars: &[char], i: &mut usize) -> (u32, u32) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    let close = (*i..chars.len())
        .find(|&j| chars[j] == '}')
        .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    let parse_u32 = |s: &str| {
        s.trim()
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("bad quantifier {body:?} in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((m, n)) => {
            let (m, n) = (parse_u32(m), parse_u32(n));
            assert!(
                m <= n,
                "inverted quantifier {body:?} in pattern {pattern:?}"
            );
            (m, n)
        }
        None => {
            let n = parse_u32(&body);
            (n, n)
        }
    }
}

fn unsupported_if_none<'a, T>(pattern: &str, v: Option<&'a T>) -> &'a T {
    v.unwrap_or_else(|| panic!("truncated pattern {pattern:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 0)
    }

    fn check(pattern: &str, times: usize, ok: impl Fn(&str) -> bool) {
        let mut r = rng();
        for _ in 0..times {
            let s = generate_from_pattern(pattern, &mut r);
            assert!(ok(&s), "pattern {pattern:?} generated {s:?}");
        }
    }

    #[test]
    fn class_with_ranges_and_literals() {
        check("[a-zA-Z0-9_/.:-]{1,40}", 200, |s| {
            (1..=40).contains(&s.chars().count())
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_/.:-".contains(c))
        });
    }

    #[test]
    fn printable_ascii_range() {
        check("[ -~]{0,200}", 100, |s| {
            s.chars().count() <= 200 && s.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn unicode_escapes_in_class() {
        check("[ -~\u{1f}\u{1e}%]{0,50}", 200, |s| {
            s.chars()
                .all(|c| (' '..='~').contains(&c) || c == '\u{1f}' || c == '\u{1e}')
        });
        // The pattern as the test file spells it (escapes in the regex,
        // not in the Rust literal):
        check("[ -~\\u{1f}\\u{1e}%]{0,50}", 200, |s| {
            s.chars()
                .all(|c| (' '..='~').contains(&c) || c == '\u{1f}' || c == '\u{1e}')
        });
    }

    #[test]
    fn not_control_escape() {
        check("\\PC{0,300}", 50, |s| {
            s.chars().count() <= 300 && s.chars().all(|c| !c.is_control())
        });
    }

    #[test]
    fn exact_count_and_literals() {
        check("[a-c]{3}", 50, |s| s.len() == 3);
        check("abc", 5, |s| s == "abc");
    }
}

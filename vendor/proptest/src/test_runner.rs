//! Deterministic case runner: config, RNG, and failure type.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Resolves the effective case count: the `PROPTEST_CASES` environment
/// variable overrides the in-source config when set.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
        Err(_) => config.cases,
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator strategies draw from.
///
/// Case `k` of test `t` is seeded from `(hash(t), k, PROPTEST_SEED)`, so
/// every run regenerates the same inputs unless `PROPTEST_SEED` changes.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl TestRng {
    /// The RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let universe: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        let mut state = fnv1a(test_name.as_bytes()) ^ universe.rotate_left(17);
        state = state.wrapping_add(u64::from(case).wrapping_mul(0x9e3779b97f4a7c15));
        // Re-seed from the permutation's *output*: consecutive cases must
        // not be shifted copies of one stream.
        let mixed = splitmix64(&mut state);
        TestRng { state: mixed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn below_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        let span = (hi - lo) as u128 + 1;
        if span == 1 << 64 {
            return self.next_u64();
        }
        lo + ((self.next_u64() as u128 * span) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("t::x", 3);
        let mut b = TestRng::for_case("t::x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t::x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = TestRng::for_case("t::bounds", 0);
        for _ in 0..1000 {
            let v = rng.below_inclusive(10, 20);
            assert!((10..=20).contains(&v));
        }
    }
}

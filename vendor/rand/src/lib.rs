//! Vendored minimal stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen` / `gen_range` — everything the
//! simulation substrate uses. The generator is xoshiro256++ seeded via
//! SplitMix64, so streams are high quality and fully deterministic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; equal seeds give
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw 64-bit output (the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Maps 64 uniform bits onto `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_bits(bits: u64) -> u8 {
        (bits >> 56) as u8
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi_inclusive: u64) -> u64 {
    assert!(lo <= hi_inclusive, "cannot sample empty range");
    let span = (hi_inclusive - lo) as u128 + 1;
    if span == 1 << 64 {
        return rng.next_u64();
    }
    // Lemire-style widening multiply keeps modulo bias negligible.
    let product = rng.next_u64() as u128 * span;
    lo + (product >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                uniform_u64(rng, *self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // Qualified call: a bare `f64::from_bits` would resolve to std's
        // inherent bit-reinterpretation, not the unit-interval sampler.
        let unit = <f64 as Standard>::from_bits(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of the inferred type from the standard
    /// distribution (`u64`: full range; `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut x = seed;
            SmallRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w: usize = r.gen_range(0usize..7);
            assert!(w < 7);
            let x: u64 = r.gen_range(5u64..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f), "out of range: {f}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _: u64 = SmallRng::seed_from_u64(0).gen_range(4u64..4);
    }
}

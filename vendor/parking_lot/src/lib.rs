//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std mutex is recovered
//! rather than propagated, matching parking_lot's "no poisoning" model).

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

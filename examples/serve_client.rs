//! Serving over the wire: start a Unix-domain-socket server on the
//! store, then record a pipeline, flush, and run a Q3 descendants
//! query through the network client.
//!
//! Run with: `cargo run --example serve_client`

use pass_cloud::cloud::{ProvQuery, S3SimpleDb, ServeHandle};
use pass_cloud::frontend::{Client, Server};
use pass_cloud::pass::{Observer, TraceEvent};
use pass_cloud::simworld::{Blob, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The store and its serving facade, then a 2-worker server pool on
    // a Unix-domain socket. TCP works identically via `bind_tcp`.
    let handle = ServeHandle::new(S3SimpleDb::new(&SimWorld::counting()));
    let socket = std::env::temp_dir().join(format!("pass-cloud-serve-{}.sock", std::process::id()));
    let server = Server::bind_unix(handle, &socket, 2)?;
    println!("serving on {}", socket.display());

    // A client process connects and records a two-stage pipeline:
    // `etl` derives staged.csv from raw.csv, `report` derives
    // summary.txt from staged.csv.
    let mut client = Client::connect_unix(&socket)?;
    let mut observer = Observer::new();
    for event in [
        TraceEvent::source("raw.csv", Blob::synthetic(1, 64 * 1024)),
        TraceEvent::exec(1, "etl", "etl raw.csv", "PATH=/usr/bin", None),
        TraceEvent::read(1, "raw.csv"),
        TraceEvent::write(1, "staged.csv"),
        TraceEvent::close(1, "staged.csv", Blob::synthetic(2, 16 * 1024)),
        TraceEvent::exit(1),
        TraceEvent::exec(2, "report", "report staged.csv", "PATH=/usr/bin", None),
        TraceEvent::read(2, "staged.csv"),
        TraceEvent::write(2, "summary.txt"),
        TraceEvent::close(2, "summary.txt", Blob::synthetic(3, 4 * 1024)),
        TraceEvent::exit(2),
    ] {
        for flush in observer.observe(event)? {
            client.record(&flush)?;
        }
    }
    client.flush()?;

    // A verified read and a Q3 over the same connection: everything
    // transitively derived from the outputs of `etl`.
    let read = client.read("summary.txt")?;
    println!(
        "read {} ({}), status: {}",
        read.object,
        read.data.len(),
        read.status
    );
    let descendants = client.query(&ProvQuery::DescendantsOf {
        program: "etl".into(),
    })?;
    println!("descendants of etl: {:?}", descendants.names());
    assert!(descendants
        .names()
        .iter()
        .any(|n| n.starts_with("summary.txt")));

    // Stats carry the store-state fingerprint: any in-process run of
    // the same workload converges to exactly this value.
    let stats = client.stats()?;
    println!(
        "server handled {} requests on {}; store fingerprint {:016x}",
        stats.requests, stats.architecture, stats.fingerprint
    );

    server.shutdown();
    assert!(!socket.exists(), "shutdown removes the socket file");
    Ok(())
}

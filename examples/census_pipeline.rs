//! The paper's introductory scenario: the US Census Bureau publishes a
//! data set on the cloud; a scientist downloads it, analyses it on a
//! local grid, and uploads the results — with provenance — so fellow
//! researchers can verify exactly how the trends were derived.
//!
//! Run with: `cargo run --example census_pipeline`

use pass_cloud::cloud::{ProvQuery, ProvenanceStore, S3SimpleDbSqs};
use pass_cloud::pass::{Observer, TraceEvent};
use pass_cloud::simworld::{Blob, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = SimWorld::new(1790); // first census year
    let mut store = S3SimpleDbSqs::new(&world, "census-lab");

    // The published data set: three state extracts.
    let mut observer = Observer::new();
    let mut flushes = Vec::new();
    let states = ["ca", "ny", "tx"];
    for (i, state) in states.iter().enumerate() {
        flushes.extend(observer.observe(TraceEvent::source(
            format!("census/2000/{state}.dat"),
            Blob::synthetic(i as u64, 8 * 1024 * 1024),
        ))?);
    }

    // The scientist's pipeline: extract → merge → model, per the intro's
    // "download, process, upload results" loop.
    let mut pid = 100;
    let mut extracts = Vec::new();
    for state in &states {
        pid += 1;
        let input = format!("census/2000/{state}.dat");
        let extract = format!("work/{state}-income.csv");
        for event in [
            TraceEvent::exec(
                pid,
                "extract",
                format!("extract --income {input}"),
                "LANG=C",
                None,
            ),
            TraceEvent::read(pid, &input),
            TraceEvent::write(pid, &extract),
            TraceEvent::close(pid, &extract, Blob::synthetic(pid as u64, 512 * 1024)),
            TraceEvent::exit(pid),
        ] {
            flushes.extend(observer.observe(event)?);
        }
        extracts.push(extract);
    }
    pid += 1;
    let mut merge_events = vec![TraceEvent::exec(
        pid,
        "merge",
        "merge work/*.csv",
        "LANG=C",
        None,
    )];
    for extract in &extracts {
        merge_events.push(TraceEvent::read(pid, extract));
    }
    merge_events.push(TraceEvent::write(pid, "work/income-merged.csv"));
    merge_events.push(TraceEvent::close(
        pid,
        "work/income-merged.csv",
        Blob::synthetic(77, 1024 * 1024),
    ));
    merge_events.push(TraceEvent::exit(pid));
    for event in merge_events {
        flushes.extend(observer.observe(event)?);
    }
    pid += 1;
    for event in [
        TraceEvent::exec(
            pid,
            "trend-model",
            "trend-model --by-county",
            "LANG=C",
            None,
        ),
        TraceEvent::read(pid, "work/income-merged.csv"),
        TraceEvent::write(pid, "results/income-trends-2000.csv"),
        TraceEvent::close(
            pid,
            "results/income-trends-2000.csv",
            Blob::synthetic(99, 96 * 1024),
        ),
        TraceEvent::exit(pid),
    ] {
        flushes.extend(observer.observe(event)?);
    }

    // Share everything (data + provenance) on the cloud.
    for flush in &flushes {
        store.persist(flush)?;
    }
    store.run_daemons_until_idle()?;

    // A fellow researcher downloads the result and checks its lineage
    // before trusting it.
    let result = store.read("results/income-trends-2000.csv")?;
    println!(
        "downloaded {} — consistent: {}",
        result.object,
        result.consistent()
    );

    // "Which census extracts fed this result?" — walk the ancestry.
    let mut frontier = vec![result.object.clone()];
    let mut sources = Vec::new();
    while let Some(current) = frontier.pop() {
        let answer = store.query(&ProvQuery::ProvenanceOf {
            name: current.name.clone(),
            version: current.version,
        })?;
        for item in &answer.items {
            for ancestor in item.records.iter().filter_map(|r| r.reference()) {
                if ancestor.name.starts_with("census/") {
                    sources.push(ancestor.render());
                }
                frontier.push(ancestor.clone());
            }
        }
    }
    sources.sort();
    sources.dedup();
    println!("derived from census extracts: {sources:?}");
    assert_eq!(
        sources.len(),
        3,
        "all three state extracts appear in the lineage"
    );
    Ok(())
}

//! Prices the three architectures against the January 2009 AWS price
//! book across dataset scales — the §5 cost analysis as an interactive
//! tool.
//!
//! Run with: `cargo run --release --example cost_explorer`

use pass_cloud::cloud::ArchKind;
use pass_cloud::costmodel::{cost_of, PriceBook};
use pass_cloud::simworld::{format_bytes, SimWorld};
use pass_cloud::workloads::Combined;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let book = PriceBook::january_2009();
    for (label, dataset) in [("small", Combined::small()), ("medium", Combined::medium())] {
        let (flushes, stats) = dataset.flushes();
        println!(
            "== {label} dataset: {} in {} file versions (+{} process versions) ==",
            format_bytes(stats.raw_data_bytes),
            stats.file_versions,
            stats.process_versions
        );
        println!(
            "{:<18} {:>9} {:>11} {:>11} {:>11} {:>11}",
            "architecture", "ops", "storage$", "ops$", "transfer$", "total$/mo"
        );
        for kind in ArchKind::ALL {
            let world = SimWorld::counting();
            let mut store = kind.build(&world);
            for flush in &flushes {
                store.persist(flush)?;
            }
            store.run_daemons_until_idle()?;
            let meters = world.meters();
            let bill = cost_of(&meters, 1.0, &book);
            let transfer = bill.total() - bill.storage_total() - bill.operations_total();
            println!(
                "{:<18} {:>9} {:>11.4} {:>11.4} {:>11.4} {:>11.4}",
                kind.label(),
                meters.total_ops(),
                bill.storage_total(),
                bill.operations_total(),
                transfer,
                bill.total()
            );
        }
        println!();
    }
    println!(
        "Note: at large scales storage rent dominates and the paper's\n\
         'operations are much cheaper than storage' holds per-unit: one PUT\n\
         costs $0.00001 while a stored GB-month costs $0.15."
    );
    Ok(())
}

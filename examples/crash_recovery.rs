//! Crash-injection walkthrough of the paper's §4 arguments:
//!
//! 1. Architecture 2 crashes between its SimpleDB write and its S3 write,
//!    leaving *orphan provenance* — the atomicity violation of §4.2 —
//!    which only a full scan can clean up;
//! 2. Architecture 3 survives the same crash because nothing touches the
//!    permanent stores before the WAL commit record, and a committed
//!    transaction is replayed idempotently even when the commit *daemon*
//!    dies mid-apply.
//!
//! Run with: `cargo run --example crash_recovery`

use pass_cloud::cloud::{
    ProvenanceStore, S3SimpleDb, S3SimpleDbSqs, A2_BEFORE_DATA_PUT, A3_BEFORE_COMMIT,
    D3_BEFORE_MSG_DELETE,
};
use pass_cloud::pass::FileFlush;
use pass_cloud::simworld::{Blob, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Architecture 2: the orphan-provenance crash ---
    println!("== Architecture 2 (S3 + SimpleDB) ==");
    let world = SimWorld::new(1);
    let mut arch2 = S3SimpleDb::new(&world);
    world.with_faults(|f| f.arm(A2_BEFORE_DATA_PUT));

    let flush = FileFlush::builder("results/run.csv")
        .data(Blob::from("a,b\n1,2\n"))
        .record("input", "raw/run.dat:1")
        .build();
    let err = arch2.persist(&flush).expect_err("armed crash fires");
    println!("client died: {err}");

    // Provenance exists for data that never arrived.
    match arch2.read("results/run.csv") {
        Err(e) => println!("read after crash: {e}"),
        Ok(_) => unreachable!("data was never stored"),
    }
    let report = arch2.recover()?;
    println!(
        "orphan scan: {} items scanned, {} orphans removed (the 'inelegant' cleanup)",
        report.items_scanned, report.orphan_provenance_removed
    );

    // --- Architecture 3: WAL makes the same crash harmless ---
    println!("\n== Architecture 3 (S3 + SimpleDB + SQS) ==");
    let world = SimWorld::new(2);
    let mut arch3 = S3SimpleDbSqs::new(&world, "lab");
    world.with_faults(|f| f.arm(A3_BEFORE_COMMIT));
    let err = arch3.persist(&flush).expect_err("armed crash fires");
    println!("client died mid-log: {err}");
    arch3.run_daemons_until_idle()?;
    println!(
        "uncommitted transaction ignored; WAL holds {} residual records \
         (SQS retention will erase them)",
        arch3.wal_depth_exact()
    );

    // A successful persist, but the commit daemon crashes mid-apply...
    let flush2 = FileFlush::builder("results/run2.csv")
        .data(Blob::from("x,y\n"))
        .build();
    arch3.persist(&flush2)?;
    world.with_faults(|f| f.arm(D3_BEFORE_MSG_DELETE));
    let err = arch3
        .run_daemons_until_idle()
        .expect_err("daemon crash fires");
    println!("daemon died mid-apply: {err}");

    // ...and the restarted daemon replays the still-logged transaction.
    let report = arch3.recover()?;
    println!(
        "restart replayed {} transaction(s)",
        report.transactions_replayed
    );
    let read = arch3.read("results/run2.csv")?;
    println!(
        "read after replay: {} — status {}",
        read.object, read.status
    );
    assert!(read.consistent());
    Ok(())
}

//! Quickstart: persist a file with provenance on the WAL-backed
//! architecture, read it back with verified consistency, and run an
//! ancestry query.
//!
//! Run with: `cargo run --example quickstart`

use pass_cloud::cloud::{ProvQuery, ProvenanceStore, S3SimpleDbSqs};
use pass_cloud::pass::{Observer, TraceEvent};
use pass_cloud::simworld::{Blob, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic simulated cloud: S3 + SimpleDB + SQS with
    // eventual consistency and realistic latencies.
    let world = SimWorld::new(42);
    let mut store = S3SimpleDbSqs::new(&world, "quickstart-client");

    // PASS observes an application: `analyze` reads a dataset and
    // writes a result. The observer emits flushes in causal order.
    let mut observer = Observer::new();
    let mut flushes = Vec::new();
    for event in [
        TraceEvent::source("data/readings.csv", Blob::synthetic(1, 256 * 1024)),
        TraceEvent::exec(
            100,
            "analyze",
            "analyze readings.csv",
            "PATH=/usr/bin",
            None,
        ),
        TraceEvent::read(100, "data/readings.csv"),
        TraceEvent::write(100, "results/summary.csv"),
        TraceEvent::close(100, "results/summary.csv", Blob::synthetic(2, 4 * 1024)),
        TraceEvent::exit(100),
    ] {
        flushes.extend(observer.observe(event)?);
    }

    // Each close() becomes a WAL transaction; the commit daemon applies
    // them to S3/SimpleDB.
    for flush in &flushes {
        store.persist(flush)?;
    }
    store.run_daemons_until_idle()?;

    // Read correctness: data + provenance verified via MD5(data ‖ nonce).
    let read = store.read("results/summary.csv")?;
    println!(
        "read {} ({} bytes), status: {}",
        read.object,
        read.data.len(),
        read.status
    );
    for record in &read.records {
        println!("  provenance {record}");
    }
    assert!(read.consistent());

    // Q2-style query: which files did `analyze` produce?
    let outputs = store.query(&ProvQuery::OutputsOf {
        program: "analyze".into(),
    })?;
    println!("outputs of analyze: {:?}", outputs.names());
    assert_eq!(outputs.names(), vec!["results/summary.csv:1"]);

    // The billing meters that drive the paper's analysis:
    let meters = world.meters();
    println!(
        "cloud usage: {} ops, {} bytes in, {} bytes out",
        meters.total_ops(),
        meters.bytes_in(),
        meters.bytes_out()
    );
    Ok(())
}

//! Quickstart: persist a file with provenance on the WAL-backed
//! architecture through the serving facade, read it back with verified
//! consistency, and run an ancestry query.
//!
//! Run with: `cargo run --example quickstart`

use pass_cloud::cloud::{ProvQuery, S3SimpleDbSqs, ServeHandle};
use pass_cloud::pass::{Observer, TraceEvent};
use pass_cloud::simworld::{Blob, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic simulated cloud: S3 + SimpleDB + SQS with
    // eventual consistency and realistic latencies.
    let world = SimWorld::new(42);

    // The serving facade over the store: writes serialize behind one
    // mutex, reads/queries take `&self` — this is the same handle the
    // network frontend serves N connections from.
    let store = ServeHandle::new(S3SimpleDbSqs::new(&world, "quickstart-client"));

    // PASS observes an application: `analyze` reads a dataset and
    // writes a result. The observer emits flushes in causal order.
    let mut observer = Observer::new();
    let mut flushes = Vec::new();
    for event in [
        TraceEvent::source("data/readings.csv", Blob::synthetic(1, 256 * 1024)),
        TraceEvent::exec(
            100,
            "analyze",
            "analyze readings.csv",
            "PATH=/usr/bin",
            None,
        ),
        TraceEvent::read(100, "data/readings.csv"),
        TraceEvent::write(100, "results/summary.csv"),
        TraceEvent::close(100, "results/summary.csv", Blob::synthetic(2, 4 * 1024)),
        TraceEvent::exit(100),
    ] {
        flushes.extend(observer.observe(event)?);
    }

    // Each close() becomes a WAL transaction; flush() drives the commit
    // daemon until it has applied them all to S3/SimpleDB.
    for flush in &flushes {
        store.record(flush)?;
    }
    store.flush()?;

    // Read correctness: data + provenance verified via MD5(data ‖ nonce).
    let read = store.read("results/summary.csv")?;
    println!(
        "read {} ({} bytes), status: {}",
        read.object,
        read.data.len(),
        read.status
    );
    for record in &read.records {
        println!("  provenance {record}");
    }
    assert!(read.consistent());

    // Q2-style query: which files did `analyze` produce?
    let outputs = store.query(&ProvQuery::OutputsOf {
        program: "analyze".into(),
    })?;
    println!("outputs of analyze: {:?}", outputs.names());
    assert_eq!(outputs.names(), vec!["results/summary.csv:1"]);

    // The serving stats: request counters, billing meters, and the
    // store-state fingerprint the network smoke tests compare against.
    let stats = store.stats();
    println!(
        "served {} requests on {}: {} ops, {} bytes in, {} bytes out, fingerprint {:016x}",
        stats.requests,
        stats.architecture,
        stats.store_ops,
        stats.bytes_in,
        stats.bytes_out,
        stats.fingerprint
    );
    Ok(())
}

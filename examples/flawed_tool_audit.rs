//! The paper's motivating audit: "a researcher discovers that a
//! particular version of a widely-used analysis tool is flawed. She can
//! identify all data sets affected by the flawed software by querying
//! the provenance."
//!
//! We run two versions of `fitter` over many inputs, then use Q2/Q3
//! queries to find everything the flawed run touched — including results
//! *derived from* tainted intermediates.
//!
//! Run with: `cargo run --example flawed_tool_audit`

use pass_cloud::cloud::{ProvQuery, ProvenanceStore, S3SimpleDb};
use pass_cloud::pass::{Observer, TraceEvent};
use pass_cloud::simworld::{Blob, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = SimWorld::new(7);
    let mut store = S3SimpleDb::new(&world);
    let mut observer = Observer::new();
    let mut flushes = Vec::new();

    // Twelve experiments: half processed by fitter-v1 (later found to be
    // flawed), half by fitter-v2.
    let mut pid = 0;
    for i in 0..12 {
        let tool = if i % 2 == 0 { "fitter-v1" } else { "fitter-v2" };
        let raw = format!("raw/run{i:02}.dat");
        let fit = format!("fits/run{i:02}.fit");
        pid += 1;
        for event in [
            TraceEvent::source(&raw, Blob::synthetic(i, 64 * 1024)),
            TraceEvent::exec(
                pid,
                tool,
                format!("{tool} {raw}"),
                "OMP_NUM_THREADS=8",
                None,
            ),
            TraceEvent::read(pid, &raw),
            TraceEvent::write(pid, &fit),
            TraceEvent::close(pid, &fit, Blob::synthetic(100 + i, 16 * 1024)),
            TraceEvent::exit(pid),
        ] {
            flushes.extend(observer.observe(event)?);
        }
    }

    // A summary paper aggregates *all* fits — so it is tainted too.
    pid += 1;
    let mut events = vec![TraceEvent::exec(
        pid,
        "aggregate",
        "aggregate fits/*",
        "",
        None,
    )];
    for i in 0..12 {
        events.push(TraceEvent::read(pid, format!("fits/run{i:02}.fit")));
    }
    events.push(TraceEvent::write(pid, "paper/figure3.csv"));
    events.push(TraceEvent::close(
        pid,
        "paper/figure3.csv",
        Blob::synthetic(999, 8 * 1024),
    ));
    events.push(TraceEvent::exit(pid));
    for event in events {
        flushes.extend(observer.observe(event)?);
    }

    for flush in &flushes {
        store.persist(flush)?;
    }

    // --- the audit ---

    // Q2: data sets directly produced by the flawed tool.
    let direct = store.query(&ProvQuery::OutputsOf {
        program: "fitter-v1".into(),
    })?;
    println!("directly affected by fitter-v1 ({}):", direct.len());
    for name in direct.names() {
        println!("  {name}");
    }
    assert_eq!(direct.len(), 6);

    // Q3: everything transitively derived from those outputs.
    let tainted = store.query(&ProvQuery::DescendantsOf {
        program: "fitter-v1".into(),
    })?;
    println!("transitively tainted ({}):", tainted.len());
    for name in tainted.names() {
        println!("  {name}");
    }
    assert!(
        tainted
            .names()
            .iter()
            .any(|n| n.starts_with("paper/figure3.csv")),
        "the aggregated figure is flagged because one input was flawed"
    );

    // The v2 outputs are NOT flagged.
    let clean = store.query(&ProvQuery::OutputsOf {
        program: "fitter-v2".into(),
    })?;
    for name in clean.names() {
        assert!(!tainted.names().contains(&name));
    }
    println!("fitter-v2 outputs remain clean: {}", clean.len());
    Ok(())
}

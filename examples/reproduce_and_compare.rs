//! The paper's reproducibility scenario: "Consider the efforts of one
//! group attempting to reproduce the results of another research group.
//! If the reproduction does not yield identical results, comparing the
//! provenance will shed insight into the differences in the experiment."
//!
//! Two labs run the "same" pipeline; lab B unknowingly passed the solver
//! a different flag. Diffing the two provenance graphs pinpoints the
//! divergence immediately — down to the exact argv.
//!
//! Run with: `cargo run --example reproduce_and_compare`

use pass_cloud::cloud::{ProvGraph, ProvQuery, ProvenanceStore, S3SimpleDbSqs};
use pass_cloud::pass::{Observer, TraceEvent};
use pass_cloud::simworld::{Blob, SimWorld};

/// One lab's experiment: calibrate + solve. `calibration_version`
/// and `solver_flag` are where the labs (unknowingly) diverge.
fn run_lab(
    client: &str,
    calibration_content: Blob,
    solver_flag: &str,
) -> Result<ProvGraph, Box<dyn std::error::Error>> {
    let world = SimWorld::new(17);
    let mut store = S3SimpleDbSqs::new(&world, client);
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    for event in [
        TraceEvent::source("inputs/field.dat", Blob::synthetic(7, 128 * 1024)),
        TraceEvent::source("inputs/calibration.tbl", calibration_content),
        TraceEvent::exec(1, "calibrate", "calibrate field.dat", "LAB=shared", None),
        TraceEvent::read(1, "inputs/field.dat"),
        TraceEvent::read(1, "inputs/calibration.tbl"),
        TraceEvent::write(1, "work/calibrated.dat"),
        TraceEvent::close(1, "work/calibrated.dat", Blob::synthetic(8, 128 * 1024)),
        TraceEvent::exit(1),
        TraceEvent::exec(
            2,
            "solver",
            format!("solver {solver_flag} calibrated.dat"),
            "LAB=shared",
            None,
        ),
        TraceEvent::read(2, "work/calibrated.dat"),
        TraceEvent::write(2, "results/spectrum.csv"),
        TraceEvent::close(2, "results/spectrum.csv", Blob::synthetic(9, 16 * 1024)),
        TraceEvent::exit(2),
    ] {
        flushes.extend(obs.observe(event)?);
    }
    for flush in &flushes {
        store.persist(flush)?;
    }
    store.run_daemons_until_idle()?;
    world.settle();
    let everything = store.query(&ProvQuery::ProvenanceOfAll)?;
    Ok(ProvGraph::from_answer(&everything))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Lab A: original experiment.
    let lab_a = run_lab("lab-a", Blob::synthetic(100, 4 * 1024), "--implicit")?;
    // Lab B: the reproduction — different calibration table content and
    // a different solver flag.
    let lab_b = run_lab("lab-b", Blob::synthetic(200, 4 * 1024), "--explicit")?;

    println!(
        "lab A graph: {} versions, depth {}",
        lab_a.len(),
        lab_a.depth()
    );
    println!(
        "lab B graph: {} versions, depth {}",
        lab_b.len(),
        lab_b.depth()
    );
    assert!(lab_a.is_acyclic() && lab_b.is_acyclic());

    let diff = lab_a.diff(&lab_b);
    println!("\nprovenance diff (A → B):");
    print!("{}", diff.render());

    // The diff isolates exactly the divergence: the solver's argv.
    assert!(
        !diff.is_empty(),
        "the runs differ, so must their provenance"
    );
    let argv_changed = diff.changed.iter().any(|c| {
        c.added
            .iter()
            .any(|(k, v)| k == "argv" && v.contains("--explicit"))
    });
    assert!(argv_changed, "the solver flag difference must surface");

    // And the ancestry of the differing result can be rendered for the
    // inevitable lab meeting:
    let dot = lab_a.to_dot();
    println!(
        "\nGraphviz export of lab A ({} bytes) — pipe to `dot -Tsvg`",
        dot.len()
    );
    Ok(())
}

//! # costmodel — the January 2009 AWS price book
//!
//! Converts the operation/byte meters collected by [`simworld`] into US
//! dollars, using the prices the paper quotes in §2 (S3) and the public
//! AWS price list of the same date (SimpleDB, SQS):
//!
//! * **S3** — USD 0.15 per GB-month stored, 0.10/GB in, 0.17/GB out,
//!   0.01 per 1,000 PUT/COPY/POST/LIST, 0.01 per 10,000 GETs and other
//!   requests;
//! * **SimpleDB** — USD 0.14 per machine hour, 1.50 per GB-month, same
//!   transfer rates (machine hours are estimated from operation counts —
//!   the paper itself converts to op counts "to compare the
//!   architectures using uniform metrics");
//! * **SQS** — USD 0.01 per 10,000 requests, same transfer rates.
//!
//! The headline finding this supports (§5): "operations are much cheaper
//! (in USD) than storage in the AWS pricing model."
//!
//! # Examples
//!
//! ```
//! use costmodel::{cost_of, PriceBook};
//! use simworld::{MeterBook, Op, Service};
//!
//! let mut meters = MeterBook::new();
//! meters.record(Op::S3Put, 1 << 30, 0); // upload 1 GB
//! meters.adjust_stored(Service::S3, 1 << 30);
//! let report = cost_of(&meters.snapshot(), 1.0, &PriceBook::january_2009());
//! assert!((report.total() - 0.25) < 0.01); // ~$0.10 in + ~$0.15 stored
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use simworld::{MeterSnapshot, Op, Service};

const GB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Transfer and storage rates shared by the services.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferRates {
    /// USD per GB transferred in.
    pub in_per_gb: f64,
    /// USD per GB transferred out (first tier).
    pub out_per_gb: f64,
}

/// The complete price book.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PriceBook {
    /// Transfer rates (identical across the three services in 2009).
    pub transfer: TransferRates,
    /// S3: USD per GB-month stored.
    pub s3_storage_per_gb_month: f64,
    /// S3: USD per 1,000 PUT/COPY/POST/LIST requests.
    pub s3_per_1k_put_class: f64,
    /// S3: USD per 10,000 GET-class requests.
    pub s3_per_10k_get_class: f64,
    /// SimpleDB: USD per machine hour.
    pub sdb_per_machine_hour: f64,
    /// SimpleDB: USD per GB-month stored.
    pub sdb_storage_per_gb_month: f64,
    /// SimpleDB: estimated machine hours per write operation
    /// (`PutAttributes`/`DeleteAttributes`). Amazon's published box-usage
    /// example for a small put; an approximation, as the paper notes.
    pub sdb_hours_per_write: f64,
    /// SimpleDB: estimated machine hours per read/query operation.
    pub sdb_hours_per_read: f64,
    /// SQS: USD per 10,000 requests.
    pub sqs_per_10k_requests: f64,
}

impl PriceBook {
    /// The January 2009 snapshot used throughout the paper.
    pub fn january_2009() -> PriceBook {
        PriceBook {
            transfer: TransferRates {
                in_per_gb: 0.10,
                out_per_gb: 0.17,
            },
            s3_storage_per_gb_month: 0.15,
            s3_per_1k_put_class: 0.01,
            s3_per_10k_get_class: 0.01,
            sdb_per_machine_hour: 0.14,
            sdb_storage_per_gb_month: 1.50,
            sdb_hours_per_write: 0.0000219907,
            sdb_hours_per_read: 0.0000093522,
            sqs_per_10k_requests: 0.01,
        }
    }
}

impl Default for PriceBook {
    fn default() -> Self {
        PriceBook::january_2009()
    }
}

/// Cost breakdown for one service, in USD.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceCost {
    /// Storage rent for the billing period.
    pub storage: f64,
    /// Inbound transfer.
    pub transfer_in: f64,
    /// Outbound transfer.
    pub transfer_out: f64,
    /// Request charges (or machine hours, for SimpleDB).
    pub requests: f64,
}

impl ServiceCost {
    /// Sum of the components.
    pub fn total(&self) -> f64 {
        self.storage + self.transfer_in + self.transfer_out + self.requests
    }
}

/// Full bill across the three services.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// S3 charges.
    pub s3: ServiceCost,
    /// SimpleDB charges.
    pub simpledb: ServiceCost,
    /// SQS charges.
    pub sqs: ServiceCost,
}

impl CostReport {
    /// Grand total in USD.
    pub fn total(&self) -> f64 {
        self.s3.total() + self.simpledb.total() + self.sqs.total()
    }

    /// Total request/compute charges (the "operations" the paper calls
    /// much cheaper than storage).
    pub fn operations_total(&self) -> f64 {
        self.s3.requests + self.simpledb.requests + self.sqs.requests
    }

    /// Total storage rent.
    pub fn storage_total(&self) -> f64 {
        self.s3.storage + self.simpledb.storage + self.sqs.storage
    }
}

/// Prices a metering snapshot: request/transfer charges from the
/// counters, storage rent from the stored-bytes gauges over
/// `months_stored`.
pub fn cost_of(snapshot: &MeterSnapshot, months_stored: f64, book: &PriceBook) -> CostReport {
    let mut report = CostReport::default();

    for service in Service::ALL {
        let meter = snapshot.service(service);
        let cost = match service {
            Service::S3 => &mut report.s3,
            Service::SimpleDb => &mut report.simpledb,
            Service::Sqs => &mut report.sqs,
        };
        cost.transfer_in = meter.bytes_in as f64 / GB * book.transfer.in_per_gb;
        cost.transfer_out = meter.bytes_out as f64 / GB * book.transfer.out_per_gb;
        let storage_rate = match service {
            Service::S3 => book.s3_storage_per_gb_month,
            Service::SimpleDb => book.sdb_storage_per_gb_month,
            Service::Sqs => book.s3_storage_per_gb_month, // SQS billed like S3 storage
        };
        cost.storage = meter.stored_bytes as f64 / GB * storage_rate * months_stored;
    }

    // Request charges.
    let mut s3_put_class = 0u64;
    let mut s3_get_class = 0u64;
    let mut sdb_writes = 0u64;
    let mut sdb_reads = 0u64;
    let mut sqs_requests = 0u64;
    for (op, count) in snapshot.iter_ops() {
        match op.service() {
            Service::S3 => {
                if op.is_s3_put_class() {
                    s3_put_class += count;
                } else {
                    s3_get_class += count;
                }
            }
            Service::SimpleDb => match op {
                // A batch is one billable write request however many
                // items it carries — this is the measurable form of the
                // paper's ship-provenance-in-few-round-trips argument.
                Op::SdbPutAttributes
                | Op::SdbBatchPutAttributes
                | Op::SdbBatchDeleteAttributes
                | Op::SdbDeleteAttributes
                | Op::SdbCreateDomain => sdb_writes += count,
                _ => sdb_reads += count,
            },
            Service::Sqs => sqs_requests += count,
        }
    }
    report.s3.requests = s3_put_class as f64 / 1_000.0 * book.s3_per_1k_put_class
        + s3_get_class as f64 / 10_000.0 * book.s3_per_10k_get_class;
    let machine_hours =
        sdb_writes as f64 * book.sdb_hours_per_write + sdb_reads as f64 * book.sdb_hours_per_read;
    report.simpledb.requests = machine_hours * book.sdb_per_machine_hour;
    report.sqs.requests = sqs_requests as f64 / 10_000.0 * book.sqs_per_10k_requests;
    report
}

/// Formats USD amounts the way the paper's discussion reads naturally
/// (four decimal places; operations are fractions of a cent).
pub fn format_usd(amount: f64) -> String {
    format!("${amount:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::MeterBook;

    fn snapshot_with(f: impl FnOnce(&mut MeterBook)) -> MeterSnapshot {
        let mut book = MeterBook::new();
        f(&mut book);
        book.snapshot()
    }

    #[test]
    fn throttled_requests_bill_like_accepted_ones() {
        // AWS charges for 503-rejected requests. Two runs doing the
        // same useful work — 100 accepted puts — differ only in that
        // one ate 40 rejections along the way; its bill must be
        // strictly larger, by exactly the rejections' request charges.
        let useful = snapshot_with(|b| {
            for _ in 0..100 {
                b.record(Op::S3Put, 1024, 0);
            }
        });
        let throttled = snapshot_with(|b| {
            for _ in 0..100 {
                b.record(Op::S3Put, 1024, 0);
            }
            for _ in 0..40 {
                b.record_throttled(Op::S3Put, 1024);
            }
        });
        let book = PriceBook::january_2009();
        let clean_bill = cost_of(&useful, 0.0, &book).operations_total();
        let slow_bill = cost_of(&throttled, 0.0, &book).operations_total();
        assert!(
            slow_bill > clean_bill,
            "equal useful work must cost more under throttling: {slow_bill} vs {clean_bill}"
        );
        let rejects_only = snapshot_with(|b| {
            for _ in 0..40 {
                b.record_throttled(Op::S3Put, 1024);
            }
        });
        let reject_bill = cost_of(&rejects_only, 0.0, &book).operations_total();
        assert!((slow_bill - clean_bill - reject_bill).abs() < 1e-12);
        assert_eq!(throttled.total_throttled(), 40);
    }

    #[test]
    fn s3_put_class_vs_get_class_rates() {
        let snap = snapshot_with(|b| {
            for _ in 0..1_000 {
                b.record(Op::S3Put, 0, 0);
            }
            for _ in 0..10_000 {
                b.record(Op::S3Get, 0, 0);
            }
        });
        let report = cost_of(&snap, 0.0, &PriceBook::january_2009());
        // 1,000 PUTs = $0.01; 10,000 GETs = $0.01.
        assert!((report.s3.requests - 0.02).abs() < 1e-9);
    }

    #[test]
    fn transfer_charges_match_paper_rates() {
        let snap = snapshot_with(|b| {
            b.record(Op::S3Put, 1 << 30, 0); // 1 GB in
            b.record(Op::S3Get, 0, 1 << 30); // 1 GB out
        });
        let report = cost_of(&snap, 0.0, &PriceBook::january_2009());
        assert!((report.s3.transfer_in - 0.10).abs() < 1e-9);
        assert!((report.s3.transfer_out - 0.17).abs() < 1e-9);
    }

    #[test]
    fn storage_rent_scales_with_months() {
        let snap = snapshot_with(|b| b.adjust_stored(Service::S3, 1 << 30));
        let book = PriceBook::january_2009();
        let one = cost_of(&snap, 1.0, &book);
        let three = cost_of(&snap, 3.0, &book);
        assert!((one.s3.storage - 0.15).abs() < 1e-9);
        assert!((three.s3.storage - 0.45).abs() < 1e-9);
    }

    #[test]
    fn simpledb_bills_machine_hours() {
        let snap = snapshot_with(|b| {
            for _ in 0..100_000 {
                b.record(Op::SdbPutAttributes, 0, 0);
            }
        });
        let report = cost_of(&snap, 0.0, &PriceBook::january_2009());
        let expected = 100_000.0 * 0.0000219907 * 0.14;
        assert!((report.simpledb.requests - expected).abs() < 1e-9);
    }

    #[test]
    fn sqs_requests_rate() {
        let snap = snapshot_with(|b| {
            for _ in 0..20_000 {
                b.record(Op::SqsSendMessage, 0, 0);
            }
        });
        let report = cost_of(&snap, 0.0, &PriceBook::january_2009());
        assert!((report.sqs.requests - 0.02).abs() < 1e-9);
    }

    #[test]
    fn batches_bill_one_request_each() {
        // 1,000 messages as point sends vs 100 full batches: the batch
        // path must cost exactly 10x less in request charges, because a
        // batch is one billable request however many entries it carries.
        let point = snapshot_with(|b| {
            for _ in 0..1_000 {
                b.record(Op::SqsSendMessage, 100, 0);
            }
        });
        let batched = snapshot_with(|b| {
            for _ in 0..100 {
                b.record_batch(Op::SqsSendMessageBatch, 10, 1000, 0);
            }
        });
        let book = PriceBook::january_2009();
        let point_cost = cost_of(&point, 0.0, &book);
        let batch_cost = cost_of(&batched, 0.0, &book);
        assert!((point_cost.sqs.requests - 10.0 * batch_cost.sqs.requests).abs() < 1e-9);
        // Transfer charges stay identical: the same bytes moved.
        assert!((point_cost.sqs.transfer_in - batch_cost.sqs.transfer_in).abs() < 1e-12);
    }

    #[test]
    fn simpledb_batch_is_one_write_request() {
        let snap = snapshot_with(|b| {
            b.record_batch(Op::SdbBatchPutAttributes, 25, 0, 0);
            b.record_batch(Op::SdbBatchDeleteAttributes, 25, 0, 0);
        });
        let report = cost_of(&snap, 0.0, &PriceBook::january_2009());
        let expected = 2.0 * 0.0000219907 * 0.14; // two write requests
        assert!((report.simpledb.requests - expected).abs() < 1e-12);
    }

    #[test]
    fn multi_object_delete_bills_put_class_once() {
        // 1,000 point deletes (get class) cost $0.001; one multi-delete
        // of the same keys is a single put-class POST at $0.00001.
        let point = snapshot_with(|b| {
            for _ in 0..1_000 {
                b.record(Op::S3Delete, 0, 0);
            }
        });
        let batched = snapshot_with(|b| b.record_batch(Op::S3DeleteObjects, 1_000, 0, 0));
        let book = PriceBook::january_2009();
        let point_cost = cost_of(&point, 0.0, &book).s3.requests;
        let batch_cost = cost_of(&batched, 0.0, &book).s3.requests;
        assert!((point_cost - 0.001).abs() < 1e-9);
        assert!((batch_cost - 0.00001).abs() < 1e-9);
        assert!(batch_cost * 10.0 <= point_cost);
    }

    #[test]
    fn operations_are_much_cheaper_than_storage() {
        // The paper's qualitative claim, checked on a representative mix:
        // storing 1 GB for a month vs performing 10,000 mixed ops.
        let snap = snapshot_with(|b| {
            b.adjust_stored(Service::S3, 1 << 30);
            for _ in 0..5_000 {
                b.record(Op::S3Put, 0, 0);
                b.record(Op::SdbPutAttributes, 0, 0);
            }
        });
        let report = cost_of(&snap, 1.0, &PriceBook::january_2009());
        assert!(report.operations_total() < report.storage_total());
    }

    #[test]
    fn totals_add_up() {
        let snap = snapshot_with(|b| {
            b.record(Op::S3Put, 1000, 0);
            b.record(Op::SqsSendMessage, 100, 0);
            b.adjust_stored(Service::SimpleDb, 1 << 20);
        });
        let report = cost_of(&snap, 2.0, &PriceBook::january_2009());
        let sum = report.s3.total() + report.simpledb.total() + report.sqs.total();
        assert!((report.total() - sum).abs() < 1e-12);
    }

    #[test]
    fn format_usd_is_stable() {
        assert_eq!(format_usd(0.25), "$0.2500");
        assert_eq!(format_usd(0.0), "$0.0000");
    }
}

//! # workloads — the paper's three evaluation workloads as trace
//! generators
//!
//! §5 of *Making a Cloud Provenance-Aware* generates provenance with a
//! PASS system running three benchmarks, then treats their union as one
//! dataset:
//!
//! * [`LinuxCompile`] — a parallel kernel build (`make` → many `cc` →
//!   `ld`);
//! * [`Blast`] — a BLAST sequence-search pipeline (`formatdb` →
//!   `blastall` per query → top-hit extraction);
//! * [`ProvenanceChallenge`] — the First Provenance Challenge fMRI
//!   workflow (`align_warp` → `reslice` → `softmean` → `slicer` →
//!   `convert`);
//! * [`Combined`] — all three concatenated, with [`DatasetStats`]
//!   supplying Table 2's "Raw" column.
//!
//! [`ZipfKeys`] supplements the trace generators with a skewed
//! (hot-key) index stream for the shard-imbalance experiments, and
//! [`fleet_schedule`] turns a [`FleetSpec`] into the open-loop
//! multi-tenant arrival timeline the fleet bench drives.
//!
//! Generators are deterministic in their seed, produce
//! [`pass::TraceEvent`] streams consumable by [`pass::Observer`], and
//! scale smoothly from unit-test size to the paper's ~1.27 GB dataset
//! (synthetic [`simworld::Blob`] content keeps even that cheap).
//!
//! # Examples
//!
//! ```
//! use workloads::Combined;
//!
//! let (flushes, stats) = Combined::small().flushes();
//! assert!(stats.file_versions > 0);
//! assert_eq!(flushes.len() as u64, stats.total_versions());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod blast;
mod builder;
mod challenge;
mod combined;
mod compile;
mod fleet;
mod zipf;

pub use blast::Blast;
pub use builder::TraceBuilder;
pub use challenge::{ProvenanceChallenge, ANATOMY_PAIRS, SLICE_AXES};
pub use combined::{Combined, DatasetStats};
pub use compile::LinuxCompile;
pub use fleet::{fleet_schedule, ArrivalClock, ArrivalProcess, FleetArrival, FleetSpec};
pub use zipf::ZipfKeys;

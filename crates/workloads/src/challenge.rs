//! The First Provenance Challenge workload (§5, citing Moreau et al.):
//! the fMRI image-processing workflow — four anatomy images are aligned
//! to a reference (`align_warp`), resliced, averaged into an atlas
//! (`softmean`), sliced along three axes (`slicer`) and converted to
//! graphics (`convert`).

use serde::{Deserialize, Serialize};

use crate::builder::TraceBuilder;

/// Parameters for the Provenance Challenge trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceChallenge {
    /// How many independent subjects run the whole workflow.
    pub subjects: usize,
    /// Anatomy/atlas image size in bytes.
    pub image_size: u64,
    /// Header file size in bytes.
    pub header_size: u64,
    /// Environment size range in bytes.
    pub env_size: (usize, usize),
}

/// Stage-1 input pairs per subject, fixed by the challenge definition.
pub const ANATOMY_PAIRS: usize = 4;

/// Axes sliced in stage 4, fixed by the challenge definition.
pub const SLICE_AXES: [&str; 3] = ["x", "y", "z"];

impl Default for ProvenanceChallenge {
    fn default() -> Self {
        ProvenanceChallenge {
            subjects: 10,
            image_size: 2 * 1024 * 1024,
            header_size: 348, // ANALYZE header size
            env_size: (4_000, 12_000),
        }
    }
}

impl ProvenanceChallenge {
    /// Scales the subject count by `factor`.
    pub fn scaled(mut self, factor: f64) -> ProvenanceChallenge {
        self.subjects = ((self.subjects as f64 * factor) as usize).max(1);
        self
    }

    /// Appends the trace to `t`.
    pub fn generate(&self, t: &mut TraceBuilder) {
        // The shared reference brain.
        t.source("fmri/reference.img", self.image_size);
        t.source("fmri/reference.hdr", self.header_size);
        let reference = [
            "fmri/reference.img".to_string(),
            "fmri/reference.hdr".to_string(),
        ];

        for s in 0..self.subjects {
            let dir = format!("fmri/s{s:03}");
            // Stage 0: the four anatomy image/header pairs.
            let mut pairs = Vec::new();
            for i in 1..=ANATOMY_PAIRS {
                let img = format!("{dir}/anatomy{i}.img");
                let hdr = format!("{dir}/anatomy{i}.hdr");
                t.source(&img, self.image_size);
                t.source(&hdr, self.header_size);
                pairs.push((img, hdr));
            }

            // Stage 1 (align_warp) and stage 2 (reslice), per pair.
            let mut resliced = Vec::new();
            for (i, (img, hdr)) in pairs.iter().enumerate() {
                let warp = format!("{dir}/warp{}.warp", i + 1);
                let mut inputs = vec![img.clone(), hdr.clone()];
                inputs.extend(reference.iter().cloned());
                let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
                t.run_process(
                    "align_warp",
                    format!("align_warp {img} {hdr} -m 12"),
                    env_len,
                    None,
                    &inputs,
                    &[(warp.clone(), 24_000)],
                );

                let rimg = format!("{dir}/resliced{}.img", i + 1);
                let rhdr = format!("{dir}/resliced{}.hdr", i + 1);
                let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
                t.run_process(
                    "reslice",
                    format!("reslice {warp}"),
                    env_len,
                    None,
                    &[warp.clone(), img.clone(), hdr.clone()],
                    &[
                        (rimg.clone(), self.image_size),
                        (rhdr.clone(), self.header_size),
                    ],
                );
                resliced.push(rimg);
                resliced.push(rhdr);
            }

            // Stage 3: softmean averages the resliced images into the
            // atlas.
            let atlas_img = format!("{dir}/atlas.img");
            let atlas_hdr = format!("{dir}/atlas.hdr");
            let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
            t.run_process(
                "softmean",
                "softmean atlas.img y null".into(),
                env_len,
                None,
                &resliced,
                &[
                    (atlas_img.clone(), self.image_size),
                    (atlas_hdr.clone(), self.header_size),
                ],
            );

            // Stages 4 and 5: slicer + convert per axis.
            for axis in SLICE_AXES {
                let pgm = format!("{dir}/atlas-{axis}.pgm");
                let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
                t.run_process(
                    "slicer",
                    format!("slicer atlas.img -{axis} .5"),
                    env_len,
                    None,
                    &[atlas_img.clone(), atlas_hdr.clone()],
                    &[(pgm.clone(), self.image_size / 64)],
                );
                let jpg = format!("{dir}/atlas-{axis}.jpg");
                let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
                t.run_process(
                    "convert",
                    format!("convert {pgm} {jpg}"),
                    env_len,
                    None,
                    &[pgm],
                    &[(jpg, self.image_size / 128)],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass::Observer;

    fn tiny() -> ProvenanceChallenge {
        ProvenanceChallenge {
            subjects: 1,
            image_size: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn per_subject_object_counts_match_the_challenge() {
        let mut t = TraceBuilder::new(1);
        tiny().generate(&mut t);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in t.finish() {
            flushes.extend(obs.observe(ev).expect("well-formed fmri trace"));
        }
        flushes.extend(obs.finish());
        // Files: 2 reference + 8 anatomy + 4 warp + 8 resliced + 2 atlas
        // + 3 pgm + 3 jpg = 30.
        let files = flushes
            .iter()
            .filter(|f| f.kind == pass::ObjectKind::File)
            .count();
        assert_eq!(files, 30);
        // Processes: 4 align_warp + 4 reslice + 1 softmean + 3 slicer +
        // 3 convert = 15.
        let procs = flushes
            .iter()
            .filter(|f| f.kind == pass::ObjectKind::Process)
            .count();
        assert_eq!(procs, 15);
    }

    #[test]
    fn atlas_descends_from_every_anatomy_image() {
        let mut t = TraceBuilder::new(2);
        tiny().generate(&mut t);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in t.finish() {
            flushes.extend(obs.observe(ev).unwrap());
        }
        // Walk ancestors of the atlas transitively.
        let mut frontier = vec![flushes
            .iter()
            .find(|f| f.object.name.ends_with("atlas.img"))
            .unwrap()
            .object
            .clone()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(cur) = frontier.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(f) = flushes.iter().find(|f| f.object == cur) {
                frontier.extend(f.ancestors().into_iter().cloned());
            }
        }
        for i in 1..=ANATOMY_PAIRS {
            assert!(
                seen.iter()
                    .any(|o| o.name.ends_with(&format!("anatomy{i}.img"))),
                "anatomy{i}.img must be in the atlas ancestry"
            );
        }
    }

    #[test]
    fn subjects_scale_independently() {
        let mut t1 = TraceBuilder::new(3);
        tiny().generate(&mut t1);
        let one = t1.finish().len();
        let mut t2 = TraceBuilder::new(3);
        tiny().scaled(3.0).generate(&mut t2);
        let three = t2.finish().len();
        // Reference sources are shared; the rest scales linearly.
        assert_eq!(three - 2, (one - 2) * 3);
    }
}

//! Deterministic trace construction shared by the generators.

use pass::TraceEvent;
use simworld::Blob;

/// Accumulates [`TraceEvent`]s with deterministic pid allocation and
/// size sampling, so several workloads can be concatenated into one
/// combined dataset (as §5 does) without pid collisions.
#[derive(Debug)]
pub struct TraceBuilder {
    events: Vec<TraceEvent>,
    next_pid: u32,
    rng_state: u64,
    blob_seed: u64,
}

impl TraceBuilder {
    /// A builder whose sampled sizes and blob contents derive from
    /// `seed`.
    pub fn new(seed: u64) -> TraceBuilder {
        TraceBuilder {
            events: Vec::new(),
            next_pid: 1,
            rng_state: seed,
            blob_seed: seed << 20,
        }
    }

    /// Allocates a fresh pid.
    pub fn next_pid(&mut self) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// A deterministic size in `[lo, hi]` bytes.
    pub fn size(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// A fresh synthetic blob of `len` bytes with unique content.
    pub fn blob(&mut self, len: u64) -> Blob {
        self.blob_seed += 1;
        Blob::synthetic(self.blob_seed, len)
    }

    /// A deterministic environment string of roughly `len` bytes — the
    /// payload that routinely exceeds SimpleDB's 1 KB value limit (the
    /// paper sees this "regularly" for processes).
    pub fn env(&mut self, len: usize) -> String {
        let mut env = String::with_capacity(len + 64);
        env.push_str("PATH=/usr/local/bin:/usr/bin:/bin\nHOME=/home/scientist\nSHELL=/bin/sh\n");
        let mut i = 0;
        while env.len() < len {
            env.push_str(&format!("VAR{i}={:016x}\n", self.next_u64()));
            i += 1;
        }
        env.truncate(len.max(64));
        env
    }

    /// Appends one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Declares a pre-existing source file with fresh synthetic content.
    pub fn source(&mut self, path: impl Into<String>, len: u64) {
        let blob = self.blob(len);
        self.push(TraceEvent::source(path.into(), blob));
    }

    /// Runs a whole process in one call: exec, read every input, write
    /// and close every `(output, size)`, exit. Returns the pid.
    pub fn run_process(
        &mut self,
        exe: &str,
        argv: String,
        env_len: usize,
        parent: Option<u32>,
        inputs: &[String],
        outputs: &[(String, u64)],
    ) -> u32 {
        let pid = self.next_pid();
        let env = self.env(env_len);
        self.push(TraceEvent::exec(pid, exe, argv, env, parent));
        for input in inputs {
            self.push(TraceEvent::read(pid, input.clone()));
        }
        for (output, size) in outputs {
            self.push(TraceEvent::write(pid, output.clone()));
            let blob = self.blob(*size);
            self.push(TraceEvent::close(pid, output.clone(), blob));
        }
        self.push(TraceEvent::exit(pid));
        pid
    }

    /// Starts a long-lived process (exec only), e.g. `make`; the caller
    /// exits it later.
    pub fn spawn(&mut self, exe: &str, argv: String, env_len: usize, parent: Option<u32>) -> u32 {
        let pid = self.next_pid();
        let env = self.env(env_len);
        self.push(TraceEvent::exec(pid, exe, argv, env, parent));
        pid
    }

    /// Finishes, returning the event list.
    pub fn finish(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` before any event is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn next_u64(&mut self) -> u64 {
        simworld::splitmix64(&mut self.rng_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_are_unique_and_sequential() {
        let mut t = TraceBuilder::new(0);
        assert_eq!(t.next_pid(), 1);
        assert_eq!(t.next_pid(), 2);
    }

    #[test]
    fn same_seed_same_trace() {
        let build = || {
            let mut t = TraceBuilder::new(42);
            let size = t.size(10, 100);
            t.source("in", size);
            t.run_process(
                "tool",
                "tool in".into(),
                900,
                None,
                &["in".into()],
                &[("out".into(), 10)],
            );
            t.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceBuilder::new(1);
        let mut b = TraceBuilder::new(2);
        assert_ne!(a.size(0, u64::MAX - 1), b.size(0, u64::MAX - 1));
    }

    #[test]
    fn size_respects_bounds() {
        let mut t = TraceBuilder::new(7);
        for _ in 0..100 {
            let s = t.size(10, 20);
            assert!((10..=20).contains(&s));
        }
        assert_eq!(t.size(5, 5), 5);
    }

    #[test]
    fn env_hits_requested_length() {
        let mut t = TraceBuilder::new(7);
        let e = t.env(1500);
        assert_eq!(e.len(), 1500);
        let small = t.env(10);
        assert_eq!(small.len(), 64, "floor keeps envs plausible");
    }

    #[test]
    fn run_process_emits_full_lifecycle() {
        let mut t = TraceBuilder::new(0);
        t.source("in", 5);
        t.run_process(
            "x",
            "x".into(),
            100,
            None,
            &["in".into()],
            &[("out".into(), 3)],
        );
        let events = t.finish();
        assert_eq!(events.len(), 6); // source, exec, read, write, close, exit
        assert!(matches!(events.last(), Some(TraceEvent::Exit { .. })));
    }
}

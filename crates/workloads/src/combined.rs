//! The combined dataset of §5: "We use the combined provenance generated
//! from all three benchmarks as one single dataset for the rest of the
//! discussion."

use pass::{FileFlush, ObjectKind, Observer, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::blast::Blast;
use crate::builder::TraceBuilder;
use crate::challenge::ProvenanceChallenge;
use crate::compile::LinuxCompile;

/// Configuration of the combined dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Combined {
    /// RNG seed for sizes/contents.
    pub seed: u64,
    /// The compile component.
    pub compile: LinuxCompile,
    /// The BLAST component.
    pub blast: Blast,
    /// The fMRI component.
    pub challenge: ProvenanceChallenge,
}

impl Default for Combined {
    fn default() -> Self {
        Combined::medium()
    }
}

impl Combined {
    /// A small dataset for unit tests (hundreds of objects, ~20 MB).
    pub fn small() -> Combined {
        Combined {
            seed: 2009,
            compile: LinuxCompile::default().scaled(0.15),
            blast: Blast {
                db_fragment_size: 2 * 1024 * 1024,
                ..Blast::default().scaled(0.2)
            },
            challenge: ProvenanceChallenge {
                image_size: 256 * 1024,
                ..ProvenanceChallenge::default().scaled(0.2)
            },
        }
    }

    /// The default dataset for experiments (thousands of objects,
    /// ~150 MB of synthetic data) — same shape as the paper's, smaller
    /// absolute size.
    pub fn medium() -> Combined {
        Combined {
            seed: 2009,
            compile: LinuxCompile::default().scaled(2.0),
            blast: Blast {
                db_fragment_size: 8 * 1024 * 1024,
                ..Blast::default()
            },
            challenge: ProvenanceChallenge {
                image_size: 512 * 1024,
                ..ProvenanceChallenge::default()
            },
        }
    }

    /// A dataset calibrated toward the paper's absolute numbers:
    /// ≈ 1.27 GB of raw data and tens of thousands of operations.
    /// Synthetic blobs make the data volume cheap; the object count is
    /// what costs time.
    pub fn paper() -> Combined {
        Combined {
            seed: 2009,
            compile: LinuxCompile::default().scaled(100.0),
            blast: Blast {
                db_fragment_size: 24 * 1024 * 1024,
                ..Blast::default().scaled(2.4)
            },
            challenge: ProvenanceChallenge {
                image_size: 1024 * 1024,
                ..ProvenanceChallenge::default().scaled(1.6)
            },
        }
    }

    /// Generates the concatenated trace.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut t = TraceBuilder::new(self.seed);
        self.compile.generate(&mut t);
        self.blast.generate(&mut t);
        self.challenge.generate(&mut t);
        t.finish()
    }

    /// Runs the trace through a PASS observer and returns the flushes in
    /// causal order, plus dataset statistics.
    pub fn flushes(&self) -> (Vec<FileFlush>, DatasetStats) {
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in self.events() {
            flushes.extend(obs.observe(ev).expect("generated traces are well-formed"));
        }
        flushes.extend(obs.finish());
        let stats = DatasetStats::measure(&flushes);
        (flushes, stats)
    }
}

/// Raw-dataset statistics: the "Raw" column of Table 2.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total file bytes (the paper's 1.27 GB).
    pub raw_data_bytes: u64,
    /// File versions stored — the data PUTs a provenance-free system
    /// would issue (the paper's 31,180 ops).
    pub file_versions: u64,
    /// Process versions (transient objects with provenance only).
    pub process_versions: u64,
    /// Total provenance records across all flushes.
    pub provenance_records: u64,
    /// Total serialised provenance bytes.
    pub provenance_bytes: u64,
    /// Records whose serialised value exceeds 1 KB (they become
    /// overflow objects — the paper counts 24,952).
    pub records_over_1kb: u64,
}

impl DatasetStats {
    /// Measures a flush stream.
    pub fn measure(flushes: &[FileFlush]) -> DatasetStats {
        let mut stats = DatasetStats::default();
        for f in flushes {
            match f.kind {
                ObjectKind::File => {
                    stats.file_versions += 1;
                    stats.raw_data_bytes += f.data.len();
                }
                ObjectKind::Process => stats.process_versions += 1,
            }
            for r in &f.records {
                stats.provenance_records += 1;
                stats.provenance_bytes += r.byte_len() as u64;
                if r.value.byte_len() > 1024 {
                    stats.records_over_1kb += 1;
                }
            }
        }
        stats
    }

    /// Total object versions (files + processes).
    pub fn total_versions(&self) -> u64 {
        self.file_versions + self.process_versions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_has_paper_like_shape() {
        let (flushes, stats) = Combined::small().flushes();
        assert!(!flushes.is_empty());
        assert!(stats.file_versions > 50, "files: {}", stats.file_versions);
        assert!(
            stats.process_versions > 20,
            "procs: {}",
            stats.process_versions
        );
        // Provenance overhead must be a small fraction of data (9–32 %
        // in the paper; the exact ratio depends on scale).
        assert!(stats.provenance_bytes < stats.raw_data_bytes);
        // Some records overflow 1 KB (environments), far from all.
        assert!(stats.records_over_1kb > 0);
        assert!(stats.records_over_1kb < stats.provenance_records / 2);
    }

    #[test]
    fn flushes_are_causally_ordered() {
        let (flushes, _) = Combined::small().flushes();
        let mut seen = std::collections::BTreeSet::new();
        for f in &flushes {
            for a in f.ancestors() {
                assert!(seen.contains(a), "{} before ancestor {}", f.object, a);
            }
            seen.insert(f.object.clone());
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (a, sa) = Combined::small().flushes();
        let (b, sb) = Combined::small().flushes();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[10], b[10]);
    }

    #[test]
    fn scales_are_ordered() {
        let (_, small) = Combined::small().flushes();
        let (_, medium) = Combined::medium().flushes();
        assert!(medium.file_versions > small.file_versions);
        assert!(medium.raw_data_bytes > small.raw_data_bytes);
    }

    #[test]
    fn stats_measure_is_additive() {
        let (flushes, stats) = Combined::small().flushes();
        let half = flushes.len() / 2;
        let first = DatasetStats::measure(&flushes[..half]);
        let second = DatasetStats::measure(&flushes[half..]);
        assert_eq!(
            first.total_versions() + second.total_versions(),
            stats.total_versions()
        );
        assert_eq!(
            first.provenance_bytes + second.provenance_bytes,
            stats.provenance_bytes
        );
    }
}

//! Open-loop fleet arrivals: N tenants firing persists on their own
//! clocks, independent of service completion.
//!
//! The single-client benches are *closed-loop*: each request waits for
//! the previous one, so a slow service politely slows the offered load
//! and latency percentiles flatter the provider. A real multi-tenant
//! fleet is *open-loop* — demand arrives on wall-clock schedules that do
//! not care how the backend is doing, which is exactly the regime where
//! provider throttling and retry backoff shape the tail. This module
//! generates those schedules deterministically: per-tenant Poisson or
//! bursty arrival processes, merged into one globally ordered timeline,
//! with tenant attribution optionally Zipf-skewed so one hot tenant can
//! soak a shared provider.

use simworld::{SimDuration, SimInstant};

use crate::zipf::ZipfKeys;

/// How each tenant's requests arrive over virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps with the
    /// given mean rate (requests per virtual second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_sec: f64,
    },
    /// On/off arrivals: `burst_size` requests spaced `intra_gap` apart,
    /// then silence for `burst_gap`, repeating.
    Bursty {
        /// Requests per burst (≥ 1).
        burst_size: usize,
        /// Gap between requests inside a burst.
        intra_gap: SimDuration,
        /// Gap between the last request of one burst and the first of
        /// the next.
        burst_gap: SimDuration,
    },
}

/// A fleet scenario: who arrives, how often, and how skewed.
#[derive(Clone, Copy, Debug)]
pub struct FleetSpec {
    /// Number of tenants (each gets its own arrival clock).
    pub tenants: usize,
    /// Arrivals generated per tenant.
    pub arrivals_per_tenant: usize,
    /// The arrival process every tenant runs.
    pub arrivals: ArrivalProcess,
    /// `Some(theta)` re-attributes arrivals to tenants with a
    /// Zipf(theta) popularity skew (tenant 0 hottest) while keeping the
    /// total arrival count; `None` keeps the uniform per-tenant split.
    pub skew: Option<f64>,
    /// Seed for every random draw the schedule makes.
    pub seed: u64,
}

impl FleetSpec {
    /// Total arrivals across the fleet.
    pub fn total_arrivals(&self) -> usize {
        self.tenants * self.arrivals_per_tenant
    }
}

/// One scheduled request: `tenant`'s `seq`-th arrival, due at `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetArrival {
    /// When the request is issued (virtual time).
    pub at: SimInstant,
    /// Which tenant issues it.
    pub tenant: usize,
    /// Per-tenant sequence number, from 0.
    pub seq: usize,
}

/// Deterministic per-tenant arrival-gap generator.
#[derive(Clone, Debug)]
pub struct ArrivalClock {
    process: ArrivalProcess,
    rng_state: u64,
    emitted: usize,
    now: SimInstant,
}

impl ArrivalClock {
    /// A clock for one tenant, seeded deterministically.
    pub fn new(process: ArrivalProcess, seed: u64) -> ArrivalClock {
        ArrivalClock {
            process,
            rng_state: seed,
            emitted: 0,
            now: SimInstant::EPOCH,
        }
    }

    /// The next arrival instant (strictly advancing after the first).
    pub fn next_arrival(&mut self) -> SimInstant {
        let gap = match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "Poisson rate must be positive");
                // Inverse-CDF exponential draw; 53 uniform bits, and
                // `1 - u` keeps ln() away from zero.
                let u =
                    (simworld::splitmix64(&mut self.rng_state) >> 11) as f64 / (1u64 << 53) as f64;
                let secs = -(1.0 - u).ln() / rate_per_sec;
                SimDuration::from_micros((secs * 1e6).round() as u64)
            }
            ArrivalProcess::Bursty {
                burst_size,
                intra_gap,
                burst_gap,
            } => {
                assert!(burst_size >= 1, "a burst holds at least one request");
                if self.emitted == 0 {
                    SimDuration::ZERO
                } else if self.emitted.is_multiple_of(burst_size) {
                    burst_gap
                } else {
                    intra_gap
                }
            }
        };
        self.emitted += 1;
        self.now += gap;
        self.now
    }
}

/// Expands a [`FleetSpec`] into the globally ordered arrival timeline.
///
/// Ties at an instant break by `(tenant, seq)` so the merge itself is
/// deterministic. With `skew` set, arrival *times* still come from
/// per-slot clocks but each slot's *tenant* is drawn Zipf(theta), so
/// tenant 0 receives disproportionately many requests — the hot-tenant
/// scenario.
///
/// # Examples
///
/// ```
/// use workloads::{fleet_schedule, ArrivalProcess, FleetSpec};
///
/// let spec = FleetSpec {
///     tenants: 4,
///     arrivals_per_tenant: 8,
///     arrivals: ArrivalProcess::Poisson { rate_per_sec: 50.0 },
///     skew: None,
///     seed: 42,
/// };
/// let schedule = fleet_schedule(&spec);
/// assert_eq!(schedule.len(), 32);
/// assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
pub fn fleet_schedule(spec: &FleetSpec) -> Vec<FleetArrival> {
    assert!(spec.tenants > 0, "a fleet has at least one tenant");
    let mut arrivals = Vec::with_capacity(spec.total_arrivals());
    // Zipf attribution re-labels which tenant owns each arrival slot;
    // the slots' timing clocks stay fixed, so uniform and skewed runs
    // offer the same aggregate load at the same instants.
    let mut zipf = spec
        .skew
        .map(|theta| ZipfKeys::new(spec.tenants, theta, spec.seed ^ 0x5eed_f1ee7));
    let mut seqs = vec![0usize; spec.tenants];
    for slot in 0..spec.tenants {
        // Per-slot seed: decorrelated across slots, stable across runs.
        let mut clock = ArrivalClock::new(
            spec.arrivals,
            spec.seed
                .wrapping_add((slot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        for _ in 0..spec.arrivals_per_tenant {
            let at = clock.next_arrival();
            let tenant = match zipf.as_mut() {
                Some(z) => z.next_index(),
                None => slot,
            };
            let seq = seqs[tenant];
            seqs[tenant] += 1;
            arrivals.push(FleetArrival { at, tenant, seq });
        }
    }
    arrivals.sort_by_key(|a| (a.at, a.tenant, a.seq));
    // Re-number each tenant's arrivals in timeline order so `seq`
    // reflects issue order even after the merge.
    let mut next_seq = vec![0usize; spec.tenants];
    for a in &mut arrivals {
        a.seq = next_seq[a.tenant];
        next_seq[a.tenant] += 1;
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_spec(seed: u64) -> FleetSpec {
        FleetSpec {
            tenants: 4,
            arrivals_per_tenant: 250,
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 100.0,
            },
            skew: None,
            seed,
        }
    }

    #[test]
    fn schedules_are_deterministic_for_a_seed() {
        let a = fleet_schedule(&poisson_spec(7));
        let b = fleet_schedule(&poisson_spec(7));
        assert_eq!(a, b);
        let c = fleet_schedule(&poisson_spec(8));
        assert_ne!(a, c, "a different seed must reshuffle the timeline");
    }

    #[test]
    fn schedule_is_sorted_and_seqs_count_up_per_tenant() {
        let schedule = fleet_schedule(&poisson_spec(21));
        assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
        let mut next = [0usize; 4];
        for a in &schedule {
            assert_eq!(a.seq, next[a.tenant], "seq must follow timeline order");
            next[a.tenant] += 1;
        }
        assert_eq!(next.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn poisson_mean_gap_matches_the_rate() {
        // 2000 draws at 100 req/s: the mean gap must sit near 10 ms.
        let mut clock = ArrivalClock::new(
            ArrivalProcess::Poisson {
                rate_per_sec: 100.0,
            },
            11,
        );
        let mut last = SimInstant::EPOCH;
        let n = 2000u32;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            let at = clock.next_arrival();
            total += at.saturating_since(last);
            last = at;
        }
        let mean_micros = total.as_micros() as f64 / n as f64;
        assert!(
            (mean_micros - 10_000.0).abs() < 1_000.0,
            "mean inter-arrival {mean_micros:.0}us should be within 10% of 10ms"
        );
    }

    #[test]
    fn bursts_have_the_right_width_and_gap() {
        let mut clock = ArrivalClock::new(
            ArrivalProcess::Bursty {
                burst_size: 3,
                intra_gap: SimDuration::from_millis(1),
                burst_gap: SimDuration::from_millis(50),
            },
            0,
        );
        let at: Vec<u64> = (0..7).map(|_| clock.next_arrival().as_micros()).collect();
        // [0, 1ms, 2ms] then +50ms, then 1ms steps again.
        assert_eq!(at, vec![0, 1_000, 2_000, 52_000, 53_000, 54_000, 104_000]);
    }

    #[test]
    fn zipf_skew_concentrates_arrivals_on_tenant_zero() {
        let spec = FleetSpec {
            skew: Some(0.99),
            ..poisson_spec(3)
        };
        let schedule = fleet_schedule(&spec);
        assert_eq!(schedule.len(), 1000, "skew relabels, never drops");
        let mut per_tenant = vec![0usize; spec.tenants];
        for a in &schedule {
            per_tenant[a.tenant] += 1;
        }
        let uniform_share = 1000 / spec.tenants;
        assert!(
            per_tenant[0] > uniform_share * 3 / 2,
            "hot tenant got {} of 1000; expected well above the uniform {}",
            per_tenant[0],
            uniform_share
        );
        assert!(
            per_tenant[1..].iter().all(|&c| c < per_tenant[0]),
            "tenant 0 must be the hottest: {per_tenant:?}"
        );
    }
}

//! Skewed key selection: a Zipfian generator for hot-key workloads.
//!
//! The sharded backends hash items over shards, so a *uniform* key
//! stream balances almost perfectly — which hides exactly the failure
//! mode SimpleDB's real deployments hit: hot domains. This generator
//! produces key indices with a Zipf(θ) popularity distribution (YCSB's
//! quickly-computable form, after Gray et al., "Quickly generating
//! billion-record synthetic databases"), deterministic in its seed, so
//! the shard-imbalance experiments can stress `shard_op_count` skew
//! reproducibly.

/// A deterministic Zipfian index generator over `0..n`.
///
/// Index 0 is the most popular key; popularity decays as `1/(i+1)^θ`.
/// `θ = 0.99` is the YCSB default ("zipfian"); `θ → 0` approaches
/// uniform.
///
/// # Examples
///
/// ```
/// use workloads::ZipfKeys;
///
/// let mut zipf = ZipfKeys::new(1000, 0.99, 42);
/// let mut hits = vec![0u64; 1000];
/// for _ in 0..10_000 {
///     hits[zipf.next_index()] += 1;
/// }
/// // The hottest key dwarfs the median one.
/// assert!(hits[0] > 20 * hits[500].max(1));
/// ```
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
    rng_state: u64,
}

impl ZipfKeys {
    /// A generator over `0..n` with skew `theta` in `(0, 1)`, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn new(n: usize, theta: f64, seed: u64) -> ZipfKeys {
        assert!(n > 0, "ZipfKeys needs a nonempty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must lie in (0, 1); got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        ZipfKeys {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 0.5f64.powf(theta),
            rng_state: seed,
        }
    }

    /// Key-space size.
    pub fn key_space(&self) -> usize {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The next key index, Zipf-distributed over `0..n`.
    pub fn next_index(&mut self) -> usize {
        let u = self.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        idx.min(self.n - 1)
    }

    /// A uniform index over the same key space, from the same RNG — the
    /// control row of a skew experiment.
    pub fn next_uniform_index(&mut self) -> usize {
        (self.next_u64() % self.n as u64) as usize
    }

    fn next_u64(&mut self) -> u64 {
        simworld::splitmix64(&mut self.rng_state)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The generalised harmonic number `Σ 1/i^θ` for `i` in `1..=n`.
fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ZipfKeys::new(100, 0.99, 7);
        let mut b = ZipfKeys::new(100, 0.99, 7);
        let xs: Vec<usize> = (0..100).map(|_| a.next_index()).collect();
        let ys: Vec<usize> = (0..100).map(|_| b.next_index()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn indices_stay_in_range() {
        let mut z = ZipfKeys::new(10, 0.5, 3);
        for _ in 0..1_000 {
            assert!(z.next_index() < 10);
            assert!(z.next_uniform_index() < 10);
        }
    }

    #[test]
    fn popularity_decays_with_rank() {
        let mut z = ZipfKeys::new(1_000, 0.99, 2009);
        let mut hits = vec![0u64; 1_000];
        for _ in 0..50_000 {
            hits[z.next_index()] += 1;
        }
        // Ranks decay: head ≫ torso ≫ tail (bucketed to smooth noise).
        let head: u64 = hits[..10].iter().sum();
        let torso: u64 = hits[100..110].iter().sum();
        let tail: u64 = hits[900..910].iter().sum();
        assert!(head > 5 * torso.max(1), "head {head} torso {torso}");
        assert!(torso > tail, "torso {torso} tail {tail}");
        // The YCSB constant: the hottest key draws several percent of
        // all accesses at θ=0.99 over 1k keys.
        assert!(hits[0] as f64 / 50_000.0 > 0.05, "p(hottest) = {}", hits[0]);
    }

    #[test]
    fn uniform_control_is_flat() {
        let mut z = ZipfKeys::new(100, 0.99, 11);
        let mut hits = vec![0u64; 100];
        for _ in 0..50_000 {
            hits[z.next_uniform_index()] += 1;
        }
        let max = *hits.iter().max().unwrap() as f64;
        let mean = 50_000.0 / 100.0;
        assert!(max / mean < 1.3, "uniform max/mean = {}", max / mean);
    }

    #[test]
    fn single_key_space_always_returns_zero() {
        let mut z = ZipfKeys::new(1, 0.9, 0);
        for _ in 0..10 {
            assert_eq!(z.next_index(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "nonempty key space")]
    fn zero_keys_panics() {
        ZipfKeys::new(0, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "theta must lie in (0, 1)")]
    fn theta_one_panics() {
        ZipfKeys::new(10, 1.0, 0);
    }
}

//! The Blast workload (§5, citing the PASS paper): a BLAST sequence-
//! similarity pipeline. `formatdb` indexes a protein database; one
//! `blastall` per query searches it; a post-processing script extracts
//! the top hits from each result.

use serde::{Deserialize, Serialize};

use crate::builder::TraceBuilder;

/// Parameters for the BLAST trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blast {
    /// Number of query sequences searched.
    pub queries: usize,
    /// Number of database FASTA fragments.
    pub db_fragments: usize,
    /// Size of each database fragment in bytes.
    pub db_fragment_size: u64,
    /// Query file size range in bytes.
    pub query_size: (u64, u64),
    /// Raw BLAST output size range in bytes.
    pub hits_size: (u64, u64),
    /// Environment size range in bytes.
    pub env_size: (usize, usize),
}

impl Default for Blast {
    fn default() -> Self {
        Blast {
            queries: 25,
            db_fragments: 4,
            db_fragment_size: 24 * 1024 * 1024,
            query_size: (400, 4_000),
            hits_size: (40_000, 2_000_000),
            env_size: (4_000, 12_000),
        }
    }
}

impl Blast {
    /// Scales query count by `factor` (database unchanged).
    pub fn scaled(mut self, factor: f64) -> Blast {
        self.queries = ((self.queries as f64 * factor) as usize).max(1);
        self
    }

    /// Appends the trace to `t`.
    pub fn generate(&self, t: &mut TraceBuilder) {
        // The raw database fragments exist up front.
        let fragments: Vec<String> = (0..self.db_fragments)
            .map(|i| format!("blast/db/nr{i:02}.fasta"))
            .collect();
        for f in &fragments {
            t.source(f, self.db_fragment_size);
        }

        // formatdb produces the index triplet.
        let index_files: Vec<(String, u64)> = [
            ("blast/db/nr.phr", self.db_fragment_size / 20),
            ("blast/db/nr.pin", self.db_fragment_size / 40),
            ("blast/db/nr.psq", self.db_fragment_size / 2),
        ]
        .into_iter()
        .map(|(n, s)| (n.to_string(), s * self.db_fragments as u64))
        .collect();
        let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
        t.run_process(
            "formatdb",
            "formatdb -i nr -p T".into(),
            env_len,
            None,
            &fragments,
            &index_files,
        );
        let index_names: Vec<String> = index_files.iter().map(|(n, _)| n.clone()).collect();

        // One blastall per query, then a top-hits extraction.
        for q in 0..self.queries {
            let query = format!("blast/queries/q{q:04}.fa");
            let qsize = t.size(self.query_size.0, self.query_size.1);
            t.source(&query, qsize);

            let hits = format!("blast/out/q{q:04}.hits");
            let hits_size = t.size(self.hits_size.0, self.hits_size.1);
            let mut inputs = vec![query.clone()];
            inputs.extend(index_names.iter().cloned());
            let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
            t.run_process(
                "blastall",
                format!("blastall -p blastp -d nr -i {query}"),
                env_len,
                None,
                &inputs,
                &[(hits.clone(), hits_size)],
            );

            let top = format!("blast/out/q{q:04}.top");
            let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
            t.run_process(
                "tophits",
                format!("tophits {hits}"),
                env_len,
                None,
                std::slice::from_ref(&hits),
                &[(top, (hits_size / 20).max(1))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass::Observer;

    fn small() -> Blast {
        Blast {
            queries: 3,
            db_fragments: 2,
            db_fragment_size: 10_000,
            ..Default::default()
        }
    }

    #[test]
    fn trace_flushes_cleanly_with_expected_counts() {
        let mut t = TraceBuilder::new(1);
        small().generate(&mut t);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in t.finish() {
            flushes.extend(obs.observe(ev).expect("well-formed blast trace"));
        }
        flushes.extend(obs.finish());
        // Files: 2 fragments + 3 index + 3 queries + 3 hits + 3 top = 14.
        let files = flushes
            .iter()
            .filter(|f| f.kind == pass::ObjectKind::File)
            .count();
        assert_eq!(files, 14);
        // Processes: formatdb + 3 blastall + 3 tophits = 7.
        let procs = flushes
            .iter()
            .filter(|f| f.kind == pass::ObjectKind::Process)
            .count();
        assert_eq!(procs, 7);
    }

    #[test]
    fn hits_descend_from_blastall_and_database() {
        let mut t = TraceBuilder::new(2);
        small().generate(&mut t);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in t.finish() {
            flushes.extend(obs.observe(ev).unwrap());
        }
        let hits = flushes
            .iter()
            .find(|f| f.object.name.ends_with(".hits"))
            .unwrap();
        let blast_ref = hits.ancestors()[0].clone();
        assert!(blast_ref.name.contains(":blastall"));
        let blast = flushes.iter().find(|f| f.object == blast_ref).unwrap();
        assert!(blast.ancestors().iter().any(|a| a.name.contains("nr.psq")));
    }

    #[test]
    fn scaling_queries() {
        assert_eq!(small().scaled(2.0).queries, 6);
        assert_eq!(small().scaled(0.0).queries, 1);
    }
}

//! The Linux-compile workload (§5): `make` drives one `cc` per source
//! file, each reading the source plus a sample of headers and writing an
//! object file; `ld` links everything into the kernel image.

use serde::{Deserialize, Serialize};

use crate::builder::TraceBuilder;

/// Parameters for the compile trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinuxCompile {
    /// Number of `.c` translation units.
    pub c_files: usize,
    /// Number of shared headers.
    pub headers: usize,
    /// Headers each compilation reads.
    pub includes_per_file: usize,
    /// `.c` size range in bytes.
    pub c_size: (u64, u64),
    /// Header size range in bytes.
    pub h_size: (u64, u64),
    /// Environment size range in bytes (spans the 1 KB overflow
    /// threshold, as real environments do).
    pub env_size: (usize, usize),
}

impl Default for LinuxCompile {
    fn default() -> Self {
        LinuxCompile {
            c_files: 120,
            headers: 40,
            includes_per_file: 6,
            c_size: (2_000, 60_000),
            h_size: (500, 20_000),
            env_size: (4_000, 12_000),
        }
    }
}

impl LinuxCompile {
    /// Scales the file counts by `factor` (sizes unchanged).
    pub fn scaled(mut self, factor: f64) -> LinuxCompile {
        self.c_files = ((self.c_files as f64 * factor) as usize).max(2);
        self.headers = ((self.headers as f64 * factor) as usize).max(2);
        self.includes_per_file = self.includes_per_file.min(self.headers);
        self
    }

    /// Appends the trace to `t`.
    pub fn generate(&self, t: &mut TraceBuilder) {
        // Sources.
        let makefile = "linux/Makefile".to_string();
        t.source(&makefile, 48_000);
        let headers: Vec<String> = (0..self.headers)
            .map(|i| format!("linux/include/h{i:04}.h"))
            .collect();
        for h in &headers {
            let size = t.size(self.h_size.0, self.h_size.1);
            t.source(h, size);
        }
        let sources: Vec<String> = (0..self.c_files)
            .map(|i| format!("linux/src/f{i:05}.c"))
            .collect();
        for c in &sources {
            let size = t.size(self.c_size.0, self.c_size.1);
            t.source(c, size);
        }

        // make reads the Makefile and forks one cc per unit.
        let make_env = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
        let make = t.spawn("make", "make vmlinux -j4".into(), make_env, None);
        t.push(pass::TraceEvent::read(make, makefile));

        let mut objects = Vec::with_capacity(self.c_files);
        for (i, c) in sources.iter().enumerate() {
            let mut inputs = vec![c.clone()];
            for k in 0..self.includes_per_file {
                // Deterministic but varied header sample.
                let idx = (i * 31 + k * 17) % self.headers;
                let h = headers[idx].clone();
                if !inputs.contains(&h) {
                    inputs.push(h);
                }
            }
            let obj = format!("linux/obj/f{i:05}.o");
            let c_len = t.size(self.c_size.0, self.c_size.1);
            let obj_len = (c_len * 4) / 5;
            let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
            t.run_process(
                "cc",
                format!("cc -O2 -c {c} -o {obj}"),
                env_len,
                Some(make),
                &inputs,
                &[(obj.clone(), obj_len)],
            );
            objects.push(obj);
        }

        // Link hierarchically, as kernel builds do: partial `ld -r`
        // links combine at most LINK_FANIN objects, then the final ld
        // produces the image. (This also keeps any single process's
        // fan-in bounded — thousands of direct inputs would exceed
        // SimpleDB's 256-pair item limit downstream.)
        const LINK_FANIN: usize = 100;
        let mut layer = objects;
        let mut level = 0;
        while layer.len() > LINK_FANIN {
            let mut next = Vec::new();
            for (g, group) in layer.chunks(LINK_FANIN).enumerate() {
                let partial = format!("linux/obj/built-in.l{level}.g{g:03}.o");
                let size: u64 = 8 * 1024 * group.len() as u64;
                let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
                t.run_process(
                    "ld",
                    format!("ld -r -o {partial}"),
                    env_len,
                    Some(make),
                    group,
                    &[(partial.clone(), size)],
                );
                next.push(partial);
            }
            layer = next;
            level += 1;
        }
        let image_len: u64 = (40 * 1024 * (self.c_files as u64).max(1)).min(64 * 1024 * 1024);
        let env_len = t.size(self.env_size.0 as u64, self.env_size.1 as u64) as usize;
        t.run_process(
            "ld",
            "ld -o linux/vmlinux".into(),
            env_len,
            Some(make),
            &layer,
            &[("linux/vmlinux".to_string(), image_len)],
        );
        t.push(pass::TraceEvent::exit(make));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass::Observer;

    #[test]
    fn trace_is_well_formed_and_flushes_cleanly() {
        let mut t = TraceBuilder::new(1);
        LinuxCompile {
            c_files: 10,
            headers: 5,
            includes_per_file: 3,
            ..Default::default()
        }
        .generate(&mut t);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in t.finish() {
            flushes.extend(obs.observe(ev).expect("well-formed compile trace"));
        }
        flushes.extend(obs.finish());
        // 1 Makefile + 5 headers + 10 .c + 10 .o + vmlinux = 27 files;
        // 10 cc + ld + make = 12 processes.
        let files = flushes
            .iter()
            .filter(|f| f.kind == pass::ObjectKind::File)
            .count();
        let procs = flushes
            .iter()
            .filter(|f| f.kind == pass::ObjectKind::Process)
            .count();
        assert_eq!(files, 27);
        assert_eq!(procs, 12);
    }

    #[test]
    fn object_files_depend_on_cc_which_depends_on_source() {
        let mut t = TraceBuilder::new(2);
        LinuxCompile {
            c_files: 3,
            headers: 2,
            includes_per_file: 1,
            ..Default::default()
        }
        .generate(&mut t);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for ev in t.finish() {
            flushes.extend(obs.observe(ev).unwrap());
        }
        let obj = flushes
            .iter()
            .find(|f| f.object.name.ends_with(".o"))
            .expect("an object file");
        let cc_ref = obj.ancestors()[0].clone();
        assert!(cc_ref.name.contains(":cc"));
        let cc = flushes.iter().find(|f| f.object == cc_ref).unwrap();
        assert!(cc.ancestors().iter().any(|a| a.name.ends_with(".c")));
    }

    #[test]
    fn scaled_adjusts_counts() {
        let base = LinuxCompile::default();
        let half = base.clone().scaled(0.5);
        assert_eq!(half.c_files, base.c_files / 2);
        let tiny = base.scaled(0.0001);
        assert!(tiny.c_files >= 2, "floor prevents degenerate traces");
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut t = TraceBuilder::new(9);
            LinuxCompile {
                c_files: 4,
                headers: 3,
                includes_per_file: 2,
                ..Default::default()
            }
            .generate(&mut t);
            t.finish()
        };
        assert_eq!(gen().len(), gen().len());
        assert_eq!(gen(), gen());
    }
}

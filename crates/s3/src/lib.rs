//! # sim-s3 — a simulated Amazon S3 (January 2009 featureset)
//!
//! An in-process object store reproducing the S3 semantics the paper
//! *Making a Cloud Provenance-Aware* (TaPP '09) depends on:
//!
//! * objects from 1 byte to 5 GB, addressed `bucket/key`, hash-sharded
//!   per bucket behind per-shard locks ([`S3::with_shards`]);
//! * up to **2 KB of user metadata** stored *atomically with* the object
//!   on the same PUT — the foundation of the paper's Architecture 1;
//! * `PUT`, `GET` (whole or ranged), `HEAD`, `COPY`, `DELETE`, `LIST`;
//! * **eventual consistency**: a GET right after a PUT may return the
//!   older object, and concurrent PUTs resolve last-writer-wins;
//! * idempotent deletes; COPY unbilled for transfer;
//! * per-operation billing meters feeding the workspace [`simworld`]
//!   ledger.
//!
//! # Examples
//!
//! ```
//! use sim_s3::{Metadata, S3};
//! use simworld::{Blob, SimWorld};
//!
//! let world = SimWorld::counting();
//! let s3 = S3::new(&world);
//! s3.create_bucket("lab")?;
//!
//! let meta = Metadata::from_pairs([("x-amz-meta-prov-type", "file")]);
//! s3.put_object("lab", "genome.dat", Blob::synthetic(1, 4096), meta)?;
//!
//! let head = s3.head_object("lab", "genome.dat")?;
//! assert_eq!(head.content_length, 4096);
//! assert_eq!(head.metadata.get("x-amz-meta-prov-type"), Some("file"));
//! # Ok::<(), sim_s3::S3Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod metadata;
mod service;

pub use error::{Result, S3Error};
pub use metadata::{Metadata, METADATA_LIMIT};
pub use service::{
    Head, Listing, MetadataDirective, Object, ObjectSummary, DEFAULT_SHARDS, MAX_DELETE_KEYS,
    MAX_KEY_LEN, MAX_LIST_KEYS, MAX_OBJECT_SIZE, MAX_SHARDS, S3,
};

#[cfg(test)]
mod tests;

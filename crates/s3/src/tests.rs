//! Unit tests for the S3 simulator.

use simworld::{Blob, Consistency, LatencyModel, Op, Service, SimConfig, SimDuration, SimWorld};

use crate::{Metadata, MetadataDirective, ObjectSummary, S3Error, S3};

fn counting() -> (SimWorld, S3) {
    let world = SimWorld::counting();
    let s3 = S3::new(&world);
    s3.create_bucket("b").unwrap();
    (world, s3)
}

fn eventual(seed: u64) -> (SimWorld, S3) {
    let world = SimWorld::with_config(SimConfig {
        seed,
        consistency: Consistency::eventual(SimDuration::from_secs(30)),
        latency: LatencyModel::zero(),
        replicas: 3,
    });
    let s3 = S3::new(&world);
    s3.create_bucket("b").unwrap();
    (world, s3)
}

#[test]
fn put_get_round_trip_with_metadata() {
    let (_, s3) = counting();
    let meta = Metadata::from_pairs([("x-amz-meta-a", "1")]);
    s3.put_object("b", "k", Blob::from("payload"), meta.clone())
        .unwrap();
    let obj = s3.get_object("b", "k").unwrap();
    assert_eq!(&obj.body.to_bytes()[..], b"payload");
    assert_eq!(obj.metadata, meta);
    assert_eq!(obj.etag, Blob::from("payload").md5());
}

#[test]
fn get_missing_key_errors() {
    let (_, s3) = counting();
    assert!(matches!(
        s3.get_object("b", "nope"),
        Err(S3Error::NoSuchKey { .. })
    ));
}

#[test]
fn missing_bucket_errors() {
    let (_, s3) = counting();
    assert!(matches!(
        s3.put_object("zzz", "k", Blob::empty(), Metadata::new()),
        Err(S3Error::NoSuchBucket { .. })
    ));
    assert!(matches!(
        s3.get_object("zzz", "k"),
        Err(S3Error::NoSuchBucket { .. })
    ));
    assert!(matches!(
        s3.list_objects("zzz", "", None, 10),
        Err(S3Error::NoSuchBucket { .. })
    ));
}

#[test]
fn duplicate_bucket_rejected() {
    let (_, s3) = counting();
    assert!(matches!(
        s3.create_bucket("b"),
        Err(S3Error::BucketAlreadyExists { .. })
    ));
}

#[test]
fn invalid_bucket_names_rejected() {
    let (_, s3) = counting();
    assert!(matches!(
        s3.create_bucket(""),
        Err(S3Error::InvalidBucketName { .. })
    ));
    assert!(matches!(
        s3.create_bucket("x".repeat(256)),
        Err(S3Error::InvalidBucketName { .. })
    ));
}

#[test]
fn metadata_over_2kb_rejected_at_put() {
    let (_, s3) = counting();
    let mut meta = Metadata::new();
    meta.insert("k", "v".repeat(2100));
    assert!(matches!(
        s3.put_object("b", "k", Blob::empty(), meta),
        Err(S3Error::MetadataTooLarge { .. })
    ));
}

#[test]
fn oversized_object_rejected() {
    let (_, s3) = counting();
    let too_big = Blob::synthetic(0, crate::MAX_OBJECT_SIZE + 1);
    assert!(matches!(
        s3.put_object("b", "k", too_big, Metadata::new()),
        Err(S3Error::EntityTooLarge { .. })
    ));
}

#[test]
fn key_length_limit_enforced() {
    let (_, s3) = counting();
    let long_key = "k".repeat(1025);
    assert!(matches!(
        s3.put_object("b", &long_key, Blob::empty(), Metadata::new()),
        Err(S3Error::KeyTooLong { .. })
    ));
}

#[test]
fn overwrite_is_last_writer_wins() {
    let (world, s3) = eventual(5);
    s3.put_object("b", "k", Blob::from("one"), Metadata::new())
        .unwrap();
    s3.put_object("b", "k", Blob::from("two"), Metadata::new())
        .unwrap();
    world.settle();
    assert_eq!(
        &s3.get_object("b", "k").unwrap().body.to_bytes()[..],
        b"two"
    );
}

#[test]
fn eventual_get_after_put_can_return_old_version() {
    // The §2.1 anomaly: GET right after PUT may see the previous object.
    let (world, s3) = eventual(12);
    s3.put_object("b", "k", Blob::from("old"), Metadata::new())
        .unwrap();
    world.settle();
    s3.put_object("b", "k", Blob::from("new"), Metadata::new())
        .unwrap();
    let mut saw_old = false;
    for _ in 0..64 {
        if &s3.get_object("b", "k").unwrap().body.to_bytes()[..] == b"old" {
            saw_old = true;
            break;
        }
    }
    assert!(saw_old, "expected at least one stale read before settling");
}

#[test]
fn head_returns_metadata_without_body_transfer() {
    let (world, s3) = counting();
    let meta = Metadata::from_pairs([("x-amz-meta-prov", "p")]);
    s3.put_object("b", "k", Blob::synthetic(3, 100_000), meta)
        .unwrap();
    let before = world.meters();
    let head = s3.head_object("b", "k").unwrap();
    let delta = world.meters() - before;
    assert_eq!(head.content_length, 100_000);
    assert_eq!(delta.op_count(Op::S3Head), 1);
    assert!(
        delta.bytes_out() < 1024,
        "HEAD must not transfer the body; moved {} bytes",
        delta.bytes_out()
    );
}

#[test]
fn ranged_get_returns_slice_and_bills_slice() {
    let (world, s3) = counting();
    s3.put_object("b", "k", Blob::synthetic(9, 10_000), Metadata::new())
        .unwrap();
    let before = world.meters();
    let obj = s3.get_object_range("b", "k", 100..200).unwrap();
    let delta = world.meters() - before;
    assert_eq!(obj.body.len(), 100);
    assert_eq!(
        obj.body.to_bytes(),
        Blob::synthetic(9, 10_000).slice(100..200).to_bytes()
    );
    assert_eq!(delta.bytes_out(), 100);
}

#[test]
fn ranged_get_out_of_bounds_is_invalid_range() {
    let (_, s3) = counting();
    s3.put_object("b", "k", Blob::from("abc"), Metadata::new())
        .unwrap();
    assert!(matches!(
        s3.get_object_range("b", "k", 2..9),
        Err(S3Error::InvalidRange { len: 3, .. })
    ));
}

#[test]
fn copy_preserves_body_and_can_replace_metadata() {
    let (world, s3) = counting();
    let meta = Metadata::from_pairs([("x-amz-meta-src", "yes")]);
    s3.put_object("b", "src", Blob::from("content"), meta)
        .unwrap();

    s3.copy_object("b", "src", "b", "dst-copy", MetadataDirective::Copy)
        .unwrap();
    let copied = s3.get_object("b", "dst-copy").unwrap();
    assert_eq!(copied.metadata.get("x-amz-meta-src"), Some("yes"));
    assert_eq!(&copied.body.to_bytes()[..], b"content");

    let replacement = Metadata::from_pairs([("x-amz-meta-nonce", "7")]);
    s3.copy_object(
        "b",
        "src",
        "b",
        "dst-replace",
        MetadataDirective::Replace(replacement),
    )
    .unwrap();
    let replaced = s3.get_object("b", "dst-replace").unwrap();
    assert_eq!(replaced.metadata.get("x-amz-meta-src"), None);
    assert_eq!(replaced.metadata.get("x-amz-meta-nonce"), Some("7"));
    let _ = world;
}

#[test]
fn copy_bills_no_transfer_bytes() {
    let (world, s3) = counting();
    s3.put_object("b", "src", Blob::synthetic(2, 1 << 20), Metadata::new())
        .unwrap();
    let before = world.meters();
    s3.copy_object("b", "src", "b", "dst", MetadataDirective::Copy)
        .unwrap();
    let delta = world.meters() - before;
    assert_eq!(delta.op_count(Op::S3Copy), 1);
    assert_eq!(
        delta.bytes_in(),
        0,
        "COPY is not billed for transfer (paper §5)"
    );
    assert_eq!(delta.bytes_out(), 0);
}

#[test]
fn copy_missing_source_errors() {
    let (_, s3) = counting();
    assert!(matches!(
        s3.copy_object("b", "ghost", "b", "dst", MetadataDirective::Copy),
        Err(S3Error::NoSuchKey { .. })
    ));
}

#[test]
fn failed_copy_into_missing_bucket_mutates_no_state() {
    // A copy into a bucket that does not exist must fail before it
    // touches anything — no shard touch, no RNG draw, no billed op.
    let (world, s3) = counting();
    s3.put_object("b", "src", Blob::from("x"), Metadata::new())
        .unwrap();
    let before = world.meters();
    assert!(matches!(
        s3.copy_object("b", "src", "ghost", "dst", MetadataDirective::Copy),
        Err(S3Error::NoSuchBucket { .. })
    ));
    let delta = world.meters() - before;
    assert_eq!(delta.total_ops(), 0);
    let touches: u64 = (0..16).map(|s| delta.shard_op_count(Service::S3, s)).sum();
    assert_eq!(touches, 0);
}

#[test]
fn delete_is_idempotent() {
    let (world, s3) = counting();
    s3.put_object("b", "k", Blob::from("x"), Metadata::new())
        .unwrap();
    s3.delete_object("b", "k").unwrap();
    s3.delete_object("b", "k").unwrap(); // second delete also succeeds
    world.settle();
    assert!(matches!(
        s3.get_object("b", "k"),
        Err(S3Error::NoSuchKey { .. })
    ));
}

#[test]
fn stored_bytes_gauge_tracks_put_overwrite_delete() {
    let (world, s3) = counting();
    s3.put_object("b", "k", Blob::synthetic(0, 1000), Metadata::new())
        .unwrap();
    assert_eq!(world.meters().stored_bytes(Service::S3), 1000);
    s3.put_object("b", "k", Blob::synthetic(0, 400), Metadata::new())
        .unwrap();
    assert_eq!(world.meters().stored_bytes(Service::S3), 400);
    s3.delete_object("b", "k").unwrap();
    assert_eq!(world.meters().stored_bytes(Service::S3), 0);
}

#[test]
fn list_filters_prefix_and_paginates() {
    let (world, s3) = counting();
    for i in 0..25 {
        s3.put_object(
            "b",
            &format!("logs/{i:02}"),
            Blob::from("x"),
            Metadata::new(),
        )
        .unwrap();
    }
    s3.put_object("b", "other/a", Blob::from("x"), Metadata::new())
        .unwrap();
    world.settle();

    let page1 = s3.list_objects("b", "logs/", None, 10).unwrap();
    assert_eq!(page1.objects.len(), 10);
    assert!(page1.is_truncated);
    assert_eq!(page1.objects[0].key, "logs/00");

    let marker = page1.objects.last().unwrap().key.clone();
    let page2 = s3.list_objects("b", "logs/", Some(&marker), 10).unwrap();
    assert_eq!(page2.objects[0].key, "logs/10");

    let all = s3.list_all("b", "logs/").unwrap();
    assert_eq!(all.len(), 25);
    assert!(all.iter().all(|o| o.key.starts_with("logs/")));
}

#[test]
fn list_is_lexicographically_sorted() {
    let (world, s3) = counting();
    for key in ["b", "a", "c/x", "c/a"] {
        s3.put_object("b", key, Blob::from("x"), Metadata::new())
            .unwrap();
    }
    world.settle();
    let keys: Vec<_> = s3
        .list_all("b", "")
        .unwrap()
        .into_iter()
        .map(|o| o.key)
        .collect();
    assert_eq!(keys, vec!["a", "b", "c/a", "c/x"]);
}

#[test]
fn put_bills_body_plus_metadata_bytes_in() {
    let (world, s3) = counting();
    let meta = Metadata::from_pairs([("k", "v")]); // 2 bytes
    let before = world.meters();
    s3.put_object("b", "k", Blob::synthetic(0, 500), meta)
        .unwrap();
    let delta = world.meters() - before;
    assert_eq!(delta.bytes_in(), 502);
    assert_eq!(delta.op_count(Op::S3Put), 1);
}

#[test]
fn authoritative_views_do_not_bill() {
    let (world, s3) = counting();
    s3.put_object("b", "k", Blob::from("x"), Metadata::new())
        .unwrap();
    let before = world.meters();
    let _ = s3.latest_object("b", "k");
    let _ = s3.latest_keys("b", "");
    let delta = world.meters() - before;
    assert_eq!(delta.total_ops(), 0);
}

#[test]
fn latest_views_reflect_authoritative_state() {
    let (_, s3) = eventual(77);
    s3.put_object("b", "k", Blob::from("fresh"), Metadata::new())
        .unwrap();
    // Even though replicas lag, the authoritative view sees the write.
    let obj = s3.latest_object("b", "k").unwrap();
    assert_eq!(&obj.body.to_bytes()[..], b"fresh");
    assert_eq!(s3.latest_keys("b", ""), vec!["k".to_string()]);
}

#[test]
fn clones_share_the_store() {
    let (_, s3) = counting();
    let s3b = s3.clone();
    s3.put_object("b", "k", Blob::from("x"), Metadata::new())
        .unwrap();
    assert!(s3b.get_object("b", "k").is_ok());
}

// --- sharded layout ---

#[test]
fn results_are_invariant_to_shard_layout() {
    // The shard count is a concurrency knob, never a semantics knob:
    // the same writes must produce byte-identical GET/LIST results on
    // every layout.
    let reference: Vec<String> = (0..50)
        .map(|i| format!("k/{:02}", (i * 37) % 100))
        .collect();
    let mut per_layout: Vec<(Vec<ObjectSummary>, Vec<String>)> = Vec::new();
    for shards in [1, 3, 16, 64] {
        let world = SimWorld::counting();
        let s3 = S3::with_shards(&world, shards);
        assert_eq!(s3.shard_count(), shards);
        s3.create_bucket("b").unwrap();
        for key in &reference {
            s3.put_object("b", key, Blob::from(key.as_str()), Metadata::new())
                .unwrap();
        }
        world.settle();
        per_layout.push((s3.list_all("b", "k/").unwrap(), s3.latest_keys("b", "")));
    }
    assert!(per_layout[0].0.len() == 50);
    assert!(
        per_layout.windows(2).all(|w| w[0] == w[1]),
        "LIST results diverged across shard layouts"
    );
}

#[test]
fn sharded_pagination_neither_skips_nor_duplicates() {
    let (world, _) = counting();
    let s3 = S3::with_shards(&world, 16);
    s3.create_bucket("paged").unwrap();
    let mut expected: Vec<String> = (0..40).map(|i| format!("p/{i:03}")).collect();
    for key in &expected {
        s3.put_object("paged", key, Blob::from("x"), Metadata::new())
            .unwrap();
    }
    expected.sort();
    let mut walked: Vec<String> = Vec::new();
    let mut marker: Option<String> = None;
    loop {
        let page = s3
            .list_objects("paged", "p/", marker.as_deref(), 7)
            .unwrap();
        assert!(page.objects.len() <= 7);
        walked.extend(page.objects.iter().map(|o| o.key.clone()));
        if !page.is_truncated {
            break;
        }
        marker = page.objects.last().map(|o| o.key.clone());
    }
    assert_eq!(walked, expected);
}

#[test]
fn point_ops_touch_exactly_one_shard_and_lists_fan_out() {
    let world = SimWorld::counting();
    let s3 = S3::with_shards(&world, 8);
    s3.create_bucket("b").unwrap();
    let before = world.meters();
    s3.put_object("b", "k", Blob::from("x"), Metadata::new())
        .unwrap();
    let delta = world.meters() - before;
    let touches: u64 = (0..8).map(|s| delta.shard_op_count(Service::S3, s)).sum();
    assert_eq!(touches, 1, "a PUT touches exactly one shard");

    let before = world.meters();
    s3.get_object("b", "k").unwrap();
    s3.head_object("b", "k").unwrap();
    s3.delete_object("b", "k").unwrap();
    let delta = world.meters() - before;
    let touches: u64 = (0..8).map(|s| delta.shard_op_count(Service::S3, s)).sum();
    assert_eq!(touches, 3, "GET/HEAD/DELETE touch one shard each");

    let before = world.meters();
    s3.list_objects("b", "", None, 10).unwrap();
    let delta = world.meters() - before;
    assert!(
        (0..8).all(|s| delta.shard_op_count(Service::S3, s) == 1),
        "a LIST fans out across every shard"
    );
}

#[test]
fn narrow_prefix_list_is_charged_only_its_key_range() {
    // A LIST's scan charge (and so its virtual latency) must track the
    // prefix's contiguous key range, not the whole bucket: listing the
    // 10 "logs/" keys may not pay for the 1500 "data/" keys around them.
    let world = SimWorld::with_config(SimConfig {
        seed: 7,
        consistency: Consistency::Strong,
        latency: LatencyModel::default(),
        replicas: 1,
    });
    let s3 = S3::with_shards(&world, 1);
    s3.create_bucket("b").unwrap();
    for i in 0..1500 {
        s3.put_object(
            "b",
            &format!("data/{i:04}"),
            Blob::from("x"),
            Metadata::new(),
        )
        .unwrap();
    }
    for i in 0..10 {
        s3.put_object("b", &format!("logs/{i}"), Blob::from("x"), Metadata::new())
            .unwrap();
    }
    let t0 = world.now();
    let narrow = s3.list_objects("b", "logs/", None, 1000).unwrap();
    let narrow_elapsed = world.now() - t0;
    assert_eq!(narrow.objects.len(), 10);
    // Base (40 ms) + max jitter (10 ms) + ~11 scanned rows + one
    // transfer chunk stay under 52 ms; charging the bucket's other
    // 1500 cells would add 30 ms of scan time and blow this bound.
    assert!(
        narrow_elapsed.as_micros() < 55_000,
        "narrow-prefix LIST was charged past its key range: {narrow_elapsed:?}"
    );
}

#[test]
fn list_marker_before_the_prefix_range_still_lists_it() {
    let (world, s3) = counting();
    for key in ["alpha", "logs/1", "logs/2", "zeta"] {
        s3.put_object("b", key, Blob::from("x"), Metadata::new())
            .unwrap();
    }
    world.settle();
    // A marker below the prefix range must not truncate the range away.
    let page = s3.list_objects("b", "logs/", Some("alpha"), 10).unwrap();
    let keys: Vec<_> = page.objects.iter().map(|o| o.key.as_str()).collect();
    assert_eq!(keys, vec!["logs/1", "logs/2"]);
    // A marker past the range yields an empty, final page.
    let done = s3.list_objects("b", "logs/", Some("logs0"), 10).unwrap();
    assert!(done.objects.is_empty() && !done.is_truncated);
}

#[test]
fn list_all_pins_replicas_for_the_whole_walk() {
    // Regression for the eventual-consistency blind spot: `list_all`
    // used to sample a fresh replica per page, so page 1 could count an
    // unsettled key toward its cap (is_truncated = true) and page 2,
    // served by a stale replica, could silently drop it. With the
    // replicas pinned per walk, every walk satisfies the accounting
    // identity `keys returned == 999 + LIST pages billed`: a walk that
    // promises more (2 pages) must deliver the 1001st key.
    let world = SimWorld::with_config(SimConfig {
        seed: 42,
        consistency: Consistency::eventual(SimDuration::from_secs(3600)),
        latency: LatencyModel::zero(),
        replicas: 3,
    });
    let s3 = S3::with_shards(&world, 1);
    s3.create_bucket("b").unwrap();
    for i in 0..1000 {
        s3.put_object("b", &format!("a{i:04}"), Blob::from("x"), Metadata::new())
            .unwrap();
    }
    world.settle();
    // One more key, unsettled: visible only on its primary replica for
    // the next hour. It sorts after the settled keys, i.e. exactly past
    // the 1000-key page boundary.
    s3.put_object("b", "b-unsettled", Blob::from("x"), Metadata::new())
        .unwrap();
    let (mut saw_short, mut saw_full) = (false, false);
    for _ in 0..40 {
        let before = world.meters();
        let keys = s3.list_all("b", "").unwrap();
        let pages = (world.meters() - before).op_count(Op::S3List);
        assert_eq!(
            keys.len() as u64,
            999 + pages,
            "a truncated page promised a key the walk never delivered"
        );
        match keys.len() {
            1000 => saw_short = true,
            1001 => saw_full = true,
            n => panic!("unexpected listing length {n}"),
        }
    }
    assert!(
        saw_short && saw_full,
        "the sweep should observe both the stale and the fresh replica view"
    );
}

// --- multi-object delete ---

mod delete_objects {
    use super::*;
    use crate::{MAX_DELETE_KEYS, MAX_KEY_LEN};

    fn fill(s3: &S3, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let key = format!("obj/{i:03}");
                s3.put_object("b", &key, Blob::synthetic(i as u64, 64), Metadata::new())
                    .unwrap();
                key
            })
            .collect()
    }

    #[test]
    fn removes_all_keys_in_one_request() {
        let (world, s3) = counting();
        let keys = fill(&s3, 40);
        let before = world.meters();
        let removed = s3.delete_objects("b", &keys).unwrap();
        let delta = world.meters() - before;
        assert_eq!(removed, 40);
        assert_eq!(delta.op_count(Op::S3DeleteObjects), 1);
        assert_eq!(delta.batch_entry_count(Op::S3DeleteObjects), 40);
        assert_eq!(delta.op_count(Op::S3Delete), 0);
        assert!(s3.latest_keys("b", "").is_empty());
        assert_eq!(world.meters().stored_bytes(Service::S3), 0);
    }

    #[test]
    fn absent_keys_are_idempotent_and_uncounted() {
        let (_, s3) = counting();
        fill(&s3, 2);
        let keys = vec![
            "obj/000".to_string(),
            "never/existed".to_string(),
            "obj/001".to_string(),
        ];
        assert_eq!(s3.delete_objects("b", &keys).unwrap(), 2);
        // Replay deletes nothing further.
        assert_eq!(s3.delete_objects("b", &keys).unwrap(), 0);
    }

    #[test]
    fn error_paths_mutate_nothing() {
        let (world, s3) = counting();
        let keys = fill(&s3, 3);
        let stored_before = world.meters().stored_bytes(Service::S3);
        let before = world.meters();
        assert_eq!(s3.delete_objects("b", &[]), Err(S3Error::EmptyDelete));
        let too_many: Vec<String> = (0..MAX_DELETE_KEYS + 1).map(|i| format!("k{i}")).collect();
        assert_eq!(
            s3.delete_objects("b", &too_many),
            Err(S3Error::TooManyDeleteKeys {
                submitted: MAX_DELETE_KEYS + 1
            })
        );
        let bad_key = vec![keys[0].clone(), "x".repeat(MAX_KEY_LEN + 1)];
        assert_eq!(
            s3.delete_objects("b", &bad_key),
            Err(S3Error::KeyTooLong {
                length: MAX_KEY_LEN + 1
            })
        );
        assert_eq!(
            s3.delete_objects("nope", &keys),
            Err(S3Error::NoSuchBucket {
                bucket: "nope".to_string()
            })
        );
        let delta = world.meters() - before;
        assert_eq!(delta.total_ops(), 0, "rejected deletes leave no trace");
        assert_eq!(world.meters().stored_bytes(Service::S3), stored_before);
        assert_eq!(s3.latest_keys("b", "").len(), 3);
    }

    #[test]
    fn matches_point_deletes_in_final_state() {
        let (_, point_s3) = counting();
        let (_, batch_s3) = counting();
        let keys = fill(&point_s3, 12);
        fill(&batch_s3, 12);
        let doomed: Vec<String> = keys.iter().take(7).cloned().collect();
        for key in &doomed {
            point_s3.delete_object("b", key).unwrap();
        }
        batch_s3.delete_objects("b", &doomed).unwrap();
        assert_eq!(point_s3.latest_keys("b", ""), batch_s3.latest_keys("b", ""));
    }

    #[test]
    fn batch_delete_is_cheaper_than_point_deletes_in_virtual_time() {
        let elapsed = |batched: bool| {
            let world = SimWorld::new(91);
            let s3 = S3::new(&world);
            s3.create_bucket("b").unwrap();
            let keys = fill(&s3, 30);
            let t0 = world.now();
            if batched {
                s3.delete_objects("b", &keys).unwrap();
            } else {
                for key in &keys {
                    s3.delete_object("b", key).unwrap();
                }
            }
            (world.now() - t0).as_micros()
        };
        let point = elapsed(false);
        let batch = elapsed(true);
        assert!(
            batch * 5 < point,
            "batch {batch}µs must undercut point deletes {point}µs by >5x"
        );
    }
}

mod throttle {
    use super::*;
    use crate::DEFAULT_SHARDS;
    use simworld::ThrottleConfig;

    /// A throttled endpoint: 1 req/s per shard, burst 1, on a world
    /// whose clock only moves when the test advances it.
    fn throttled() -> (SimWorld, S3) {
        let (world, s3) = counting();
        s3.set_throttle(Some(ThrottleConfig::per_shard(1.0)));
        (world, s3)
    }

    #[test]
    fn second_put_to_a_hot_shard_is_rejected_billed_and_unapplied() {
        let (world, s3) = throttled();
        s3.put_object("b", "k", Blob::from("v1"), Metadata::new())
            .unwrap();
        let before = world.meters();
        let err = s3
            .put_object("b", "k", Blob::from("v2"), Metadata::new())
            .unwrap_err();
        assert!(err.is_throttle(), "got {err}");
        assert!(matches!(err, S3Error::ServiceUnavailable { ref bucket } if bucket == "b"));
        // The rejection is billed as a request…
        let phase = world.meters() - before;
        assert_eq!(phase.op_count(Op::S3Put), 1);
        assert_eq!(phase.throttled(Service::S3), 1);
        // …but nothing was applied.
        let obj = s3.latest_object("b", "k").unwrap();
        assert_eq!(&obj.body.to_bytes()[..], b"v1");
    }

    #[test]
    fn tokens_refill_with_virtual_time() {
        let (world, s3) = throttled();
        s3.put_object("b", "k", Blob::from("1"), Metadata::new())
            .unwrap();
        assert!(s3
            .put_object("b", "k", Blob::from("2"), Metadata::new())
            .is_err());
        world.advance(SimDuration::from_secs(1));
        s3.put_object("b", "k", Blob::from("3"), Metadata::new())
            .unwrap();
    }

    #[test]
    fn copies_and_deletes_drain_the_destination_shard_bucket() {
        let (world, s3) = throttled();
        s3.put_object("b", "src", Blob::from("v"), Metadata::new())
            .unwrap();
        world.advance(SimDuration::from_secs(10));
        // Find a destination key on the same shard as a probe key so the
        // copy and the delete contend for one bucket.
        let shard_of = |k: &str| simworld::fnv1a_64(k) % DEFAULT_SHARDS as u64;
        let dst = "dst".to_string();
        // Copy drains dst's shard…
        s3.copy_object("b", "src", "b", &dst, MetadataDirective::Copy)
            .unwrap();
        let same_shard = (0..200)
            .map(|i| format!("k{i}"))
            .find(|k| shard_of(k) == shard_of(&dst))
            .unwrap();
        // …so an immediate write to the same shard is rejected.
        let err = s3
            .put_object("b", &same_shard, Blob::from("x"), Metadata::new())
            .unwrap_err();
        assert!(err.is_throttle());
        // Deletes are throttled writes too.
        world.advance(SimDuration::from_secs(1));
        s3.delete_object("b", &dst).unwrap();
        assert!(s3.delete_object("b", &dst).unwrap_err().is_throttle());
    }

    #[test]
    fn rejected_batch_delete_applies_nothing_and_drains_no_bucket() {
        let (world, s3) = throttled();
        let keys: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
        for key in &keys {
            s3.put_object("b", key, Blob::from("v"), Metadata::new())
                .unwrap();
            world.advance(SimDuration::from_secs(1));
        }
        // Exhaust one shard's token with a point put.
        s3.put_object("b", "k0", Blob::from("v2"), Metadata::new())
            .unwrap();
        // The batch spanning the hot shard is rejected whole…
        let err = s3.delete_objects("b", &keys).unwrap_err();
        assert!(err.is_throttle());
        for key in &keys {
            assert!(s3.latest_object("b", key).is_some(), "{key} vanished");
        }
        // …and a key off the hot shard still deletes immediately (its
        // bucket was not drained by the rejected batch).
        let shard_of = |k: &str| simworld::fnv1a_64(k) % DEFAULT_SHARDS as u64;
        let cold = keys.iter().find(|k| shard_of(k) != shard_of("k0")).unwrap();
        s3.delete_object("b", cold).unwrap();
    }

    #[test]
    fn reads_are_never_throttled() {
        let (_, s3) = throttled();
        s3.put_object("b", "k", Blob::from("v"), Metadata::new())
            .unwrap();
        assert!(s3
            .put_object("b", "k", Blob::from("w"), Metadata::new())
            .is_err());
        // GET, HEAD and LIST sail through an exhausted bucket.
        s3.get_object("b", "k").unwrap();
        s3.head_object("b", "k").unwrap();
        s3.list_objects("b", "", None, 10).unwrap();
    }

    #[test]
    fn clearing_the_throttle_restores_unlimited_admission() {
        let (_, s3) = throttled();
        s3.put_object("b", "k", Blob::from("v"), Metadata::new())
            .unwrap();
        assert!(s3
            .put_object("b", "k", Blob::from("w"), Metadata::new())
            .is_err());
        assert!(s3.throttle().is_some());
        s3.set_throttle(None);
        assert!(s3.throttle().is_none());
        for i in 0..10 {
            s3.put_object("b", "k", Blob::from(format!("{i}")), Metadata::new())
                .unwrap();
        }
    }

    #[test]
    fn throttle_off_runs_draw_identical_rng_streams() {
        // The admission check must not perturb the RNG when disabled —
        // pinned by comparing a plain run with a set_throttle(None) run.
        let run = |configure: bool| {
            let world = SimWorld::new(1234);
            let s3 = S3::new(&world);
            if configure {
                s3.set_throttle(None);
            }
            s3.create_bucket("b").unwrap();
            for i in 0..10 {
                s3.put_object("b", &format!("k{i}"), Blob::from("v"), Metadata::new())
                    .unwrap();
            }
            (world.now(), world.rand_u64())
        };
        assert_eq!(run(false), run(true));
    }
}

#[test]
fn list_marker_walk_spans_a_split() {
    // A LIST walk started before a split must neither skip nor
    // duplicate keys: pages re-pin by stable shard id and children
    // created mid-walk resolve through their parent's pin.
    let world = SimWorld::counting();
    let s3 = S3::with_shards(&world, 4);
    s3.create_bucket("b").unwrap();
    for i in 0..40 {
        s3.put_object("b", &format!("k{i:02}"), Blob::from("x"), Metadata::new())
            .unwrap();
    }
    world.settle();
    let mut keys = Vec::new();
    let mut marker: Option<String> = None;
    loop {
        let page = s3.list_objects("b", "", marker.as_deref(), 7).unwrap();
        keys.extend(page.objects.iter().map(|o| o.key.clone()));
        // Re-shape the bucket between every page.
        s3.split_hottest("b")
            .expect("a populated shard can always split");
        if !page.is_truncated {
            break;
        }
        marker = Some(page.objects.last().unwrap().key.clone());
    }
    assert!(s3.bucket_shard_count("b").unwrap() > 4, "splits happened");
    assert_eq!(keys.len(), 40, "no skips, no duplicates");
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "still key-ordered");
}

//! Error type for the simulated S3 service.

use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::S3`] operations, mirroring the REST error
/// codes of the real service.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum S3Error {
    /// The referenced bucket does not exist (`NoSuchBucket`).
    NoSuchBucket {
        /// Bucket name as given.
        bucket: String,
    },
    /// The referenced object does not exist — or is not yet visible on the
    /// replica that served the request (`NoSuchKey`).
    NoSuchKey {
        /// Bucket name.
        bucket: String,
        /// Object key.
        key: String,
    },
    /// Bucket creation collided with an existing bucket
    /// (`BucketAlreadyExists`).
    BucketAlreadyExists {
        /// Bucket name.
        bucket: String,
    },
    /// User metadata exceeded the 2 KB limit (`MetadataTooLarge`).
    MetadataTooLarge {
        /// Serialized metadata size in bytes.
        size: u64,
        /// The enforced limit.
        limit: u64,
    },
    /// Object body exceeded the 5 GB limit (`EntityTooLarge`).
    EntityTooLarge {
        /// Body size in bytes.
        size: u64,
    },
    /// Object key exceeded the 1024-byte limit (`KeyTooLong`).
    KeyTooLong {
        /// Key length in bytes.
        length: usize,
    },
    /// A ranged GET asked for bytes outside the object
    /// (`InvalidRange`).
    InvalidRange {
        /// Requested start offset.
        start: u64,
        /// Requested end offset (exclusive).
        end: u64,
        /// Actual object length.
        len: u64,
    },
    /// Malformed bucket name (`InvalidBucketName`).
    InvalidBucketName {
        /// The rejected name.
        bucket: String,
    },
    /// A multi-object delete carried no keys (`MalformedXML` in the real
    /// service — an empty `<Delete>` document).
    EmptyDelete,
    /// A multi-object delete carried more than
    /// [`crate::MAX_DELETE_KEYS`] keys (`MalformedXML`).
    TooManyDeleteKeys {
        /// Keys submitted.
        submitted: usize,
    },
    /// The request rate on the key's partition exceeded the provisioned
    /// limit and the request was rejected without applying (`SlowDown`,
    /// HTTP 503). Retry with backoff.
    ServiceUnavailable {
        /// Bucket whose partition throttled the request.
        bucket: String,
    },
}

impl S3Error {
    /// `true` for the retriable 503 rejection.
    pub fn is_throttle(&self) -> bool {
        matches!(self, S3Error::ServiceUnavailable { .. })
    }
}

impl fmt::Display for S3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S3Error::NoSuchBucket { bucket } => write!(f, "no such bucket: {bucket}"),
            S3Error::NoSuchKey { bucket, key } => write!(f, "no such key: {bucket}/{key}"),
            S3Error::BucketAlreadyExists { bucket } => {
                write!(f, "bucket already exists: {bucket}")
            }
            S3Error::MetadataTooLarge { size, limit } => {
                write!(f, "metadata of {size} bytes exceeds the {limit}-byte limit")
            }
            S3Error::EntityTooLarge { size } => {
                write!(f, "object of {size} bytes exceeds the 5 GB limit")
            }
            S3Error::KeyTooLong { length } => {
                write!(f, "key of {length} bytes exceeds the 1024-byte limit")
            }
            S3Error::InvalidRange { start, end, len } => {
                write!(f, "range {start}..{end} invalid for object of {len} bytes")
            }
            S3Error::InvalidBucketName { bucket } => {
                write!(f, "invalid bucket name: {bucket:?}")
            }
            S3Error::EmptyDelete => f.write_str("multi-object delete must carry at least one key"),
            S3Error::TooManyDeleteKeys { submitted } => {
                write!(
                    f,
                    "{submitted} keys submitted; a multi-object delete carries at most 1000"
                )
            }
            S3Error::ServiceUnavailable { bucket } => {
                write!(
                    f,
                    "503 SlowDown: request rate exceeded on bucket {bucket:?}; retry with backoff"
                )
            }
        }
    }
}

impl Error for S3Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, S3Error>;

//! S3 user metadata: string pairs capped at 2 KB per object.
//!
//! The 2 KB cap is load-bearing for the paper: it is why Architecture 1
//! must spill large provenance records into separate overflow objects
//! (§4.1), which in turn is what breaks its query story.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Result, S3Error};

/// The S3 limit on total user metadata per object, in bytes.
pub const METADATA_LIMIT: u64 = 2048;

/// User metadata attached to an S3 object.
///
/// Size is accounted the way S3 does: the sum of UTF-8 lengths of every
/// key and value. Inserting beyond [`METADATA_LIMIT`] is allowed on the
/// builder-style type itself; the limit is enforced by the service when
/// the object is PUT, so tests can construct oversized metadata to probe
/// the failure path.
///
/// # Examples
///
/// ```
/// use sim_s3::Metadata;
///
/// let mut meta = Metadata::new();
/// meta.insert("x-amz-meta-nonce", "42");
/// assert_eq!(meta.get("x-amz-meta-nonce"), Some("42"));
/// assert_eq!(meta.byte_size(), "x-amz-meta-nonce42".len() as u64);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Metadata {
    entries: BTreeMap<String, String>,
}

impl Metadata {
    /// Empty metadata.
    pub fn new() -> Metadata {
        Metadata::default()
    }

    /// Builds metadata from `(key, value)` pairs.
    pub fn from_pairs<K, V, I>(pairs: I) -> Metadata
    where
        K: Into<String>,
        V: Into<String>,
        I: IntoIterator<Item = (K, V)>,
    {
        let mut m = Metadata::new();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        m
    }

    /// Inserts or replaces one pair, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.entries.insert(key.into(), value.into())
    }

    /// Looks up a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Removes a pair, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.entries.remove(key)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Total size as S3 accounts it: UTF-8 bytes of all keys and values.
    pub fn byte_size(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    /// Enforces the service limit.
    ///
    /// # Errors
    ///
    /// [`S3Error::MetadataTooLarge`] when over [`METADATA_LIMIT`].
    pub fn check_limit(&self) -> Result<()> {
        let size = self.byte_size();
        if size > METADATA_LIMIT {
            return Err(S3Error::MetadataTooLarge {
                size,
                limit: METADATA_LIMIT,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Metadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pairs / {} bytes", self.len(), self.byte_size())
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for Metadata {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Metadata {
        Metadata::from_pairs(iter)
    }
}

impl<K: Into<String>, V: Into<String>> Extend<(K, V)> for Metadata {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = Metadata::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a", "1"), None);
        assert_eq!(m.insert("a", "2"), Some("1".to_string()));
        assert_eq!(m.get("a"), Some("2"));
        assert_eq!(m.remove("a"), Some("2".to_string()));
        assert!(m.get("a").is_none());
    }

    #[test]
    fn byte_size_counts_keys_and_values() {
        let m = Metadata::from_pairs([("key", "value"), ("k2", "v2")]);
        assert_eq!(m.byte_size(), (3 + 5 + 2 + 2) as u64);
    }

    #[test]
    fn check_limit_boundary() {
        let mut m = Metadata::new();
        m.insert("k", "v".repeat(2047));
        assert_eq!(m.byte_size(), 2048);
        assert!(m.check_limit().is_ok(), "exactly 2KB is allowed");
        m.insert("x", "");
        assert!(matches!(
            m.check_limit(),
            Err(S3Error::MetadataTooLarge {
                size: 2049,
                limit: 2048
            })
        ));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let m = Metadata::from_pairs([("b", "2"), ("a", "1"), ("c", "3")]);
        let keys: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn collect_and_extend() {
        let mut m: Metadata = [("a", "1")].into_iter().collect();
        m.extend([("b", "2")]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn multibyte_values_counted_in_utf8_bytes() {
        let m = Metadata::from_pairs([("k", "é")]); // 'é' is 2 bytes
        assert_eq!(m.byte_size(), 3);
    }
}

//! The S3 service simulator.
//!
//! # Sharded storage layout
//!
//! Each bucket is a [`simworld::ShardMap`]: a **range-routed** set of
//! shards, each owning a contiguous span of the 64-bit key-hash ring and
//! sitting behind its own lock (default [`DEFAULT_SHARDS`] shards,
//! configurable via [`S3::with_shards`] / [`S3::with_shard_plan`]).
//! Point operations (PUT/GET/HEAD/COPY/DELETE) contend only for one
//! shard while LIST fans out across all shards and merges the per-shard
//! key pages in lexicographic order — the same shared layer the sharded
//! SimpleDB simulator routes through. With a [`simworld::SplitPolicy`]
//! armed, a hot shard splits its hash range in two in the background;
//! placement changes, but converged state is byte-identical with
//! splitting on or off.
//!
//! Shard-count requests are validated by the one shared rule
//! ([`simworld::clamp_shards`], identical in SimpleDB): `with_shards(0)`
//! is promoted to 1 shard and oversized requests are silently capped at
//! [`MAX_SHARDS`].
//!
//! # LIST consistency
//!
//! A LIST pins **one replica per shard, keyed by stable shard id**, for
//! the whole call: the key listing and the per-key sizes come from the
//! same per-shard view, so a key counted toward the page cap can never
//! vanish from the page. [`S3::list_all`] pins the replicas once for its
//! *entire* internal pagination walk, so a marker-based scan is one
//! coherent view per shard — a stale replica sampled mid-walk can no
//! longer hide keys an earlier page's replica had already promised, and
//! because pins are keyed by stable id (not shard index), a shard that
//! splits mid-walk keeps serving the walk from its parent's pinned
//! replica: the walk neither skips nor duplicates a key.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simworld::{
    Blob, Md5Digest, Op, ReplicaPin, Service, ShardMap, ShardPlan, SimInstant, SimWorld,
    SplitEvent, ThrottleConfig,
};

use crate::error::{Result, S3Error};
use crate::metadata::Metadata;

/// S3's maximum object size circa January 2009: 5 GB.
pub const MAX_OBJECT_SIZE: u64 = 5 * 1024 * 1024 * 1024;

/// S3's maximum key length in bytes.
pub const MAX_KEY_LEN: usize = 1024;

/// Maximum keys returned per LIST page.
pub const MAX_LIST_KEYS: usize = 1000;

/// Maximum keys per multi-object delete request.
pub const MAX_DELETE_KEYS: usize = 1000;

/// Default number of hash shards per bucket.
pub const DEFAULT_SHARDS: usize = 16;

/// Upper bound on shards per bucket — the workspace-wide
/// [`simworld::MAX_SHARDS`], shared with SimpleDB so the clamping rule
/// cannot drift between services.
pub const MAX_SHARDS: usize = simworld::MAX_SHARDS;

/// Approximate fixed response overhead per listed key (XML framing).
const LIST_ENTRY_OVERHEAD: u64 = 64;

/// A stored object as returned by GET.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Object {
    /// Object content (possibly a sub-range for ranged GETs).
    pub body: Blob,
    /// User metadata.
    pub metadata: Metadata,
    /// MD5 of the complete body (S3's ETag for simple PUTs).
    pub etag: Md5Digest,
    /// When the object version was written.
    pub last_modified: SimInstant,
}

/// Metadata-only view returned by HEAD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Head {
    /// User metadata.
    pub metadata: Metadata,
    /// Full body length in bytes.
    pub content_length: u64,
    /// MD5 of the body.
    pub etag: Md5Digest,
    /// When the object version was written.
    pub last_modified: SimInstant,
}

/// One entry of a LIST response.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectSummary {
    /// Object key.
    pub key: String,
    /// Body length in bytes.
    pub size: u64,
}

/// A LIST response page.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Listing {
    /// Keys in lexicographic order, after `marker`, matching `prefix`.
    pub objects: Vec<ObjectSummary>,
    /// `true` when more keys remain past this page.
    pub is_truncated: bool,
}

/// Whether COPY carries the source metadata or replaces it — the
/// `x-amz-metadata-directive` header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetadataDirective {
    /// Keep the source object's metadata.
    Copy,
    /// Replace metadata wholesale with the supplied pairs.
    Replace(Metadata),
}

#[derive(Clone, Debug)]
struct Stored {
    body: Blob,
    metadata: Metadata,
    etag: Md5Digest,
    last_modified: SimInstant,
}

impl Stored {
    fn footprint(&self) -> u64 {
        self.body.len() + self.metadata.byte_size()
    }
}

type Bucket = ShardMap<Stored>;

struct Inner {
    buckets: RwLock<BTreeMap<String, Arc<Bucket>>>,
    /// One optional throttle config for the endpoint; the per-shard
    /// token buckets live inside each bucket's [`ShardMap`], keyed by
    /// stable shard id so they survive (and are re-keyed across) splits.
    throttle: Mutex<Option<ThrottleConfig>>,
}

/// The simulated Simple Storage Service.
///
/// All clones share one backing store (they are handles to the same
/// simulated service endpoint). Every operation is metered against the
/// world's ledger and advances the virtual clock; reads are served from a
/// sampled replica and may be stale under eventual consistency. Point
/// operations lock only the hash shard their key lives on.
///
/// # Examples
///
/// ```
/// use sim_s3::{Metadata, S3};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let s3 = S3::new(&world);
/// s3.create_bucket("data")?;
/// s3.put_object("data", "hello.txt", Blob::from("hi"), Metadata::new())?;
/// let obj = s3.get_object("data", "hello.txt")?;
/// assert_eq!(&obj.body.to_bytes()[..], b"hi");
/// # Ok::<(), sim_s3::S3Error>(())
/// ```
#[derive(Clone)]
pub struct S3 {
    world: SimWorld,
    plan: ShardPlan,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for S3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buckets = self.inner.buckets.read();
        f.debug_struct("S3")
            .field("buckets", &buckets.len())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// Meters one COPY request, keyed for completion order when the caller
/// supplied an `order_key` (see [`S3::copy_object_ordered`]).
fn record_copy(world: &SimWorld, order_key: Option<u64>) {
    match order_key {
        Some(key) => world.record_op_keyed(Op::S3Copy, 0, 0, key),
        None => world.record_op(Op::S3Copy, 0, 0),
    }
}

impl S3 {
    /// Connects a new simulated S3 endpoint to `world` with
    /// [`DEFAULT_SHARDS`] shards per bucket.
    pub fn new(world: &SimWorld) -> S3 {
        S3::with_shards(world, DEFAULT_SHARDS)
    }

    /// Connects an endpoint whose buckets are split into `shards` hash
    /// shards, validated by the shared rule ([`simworld::clamp_shards`]:
    /// zero becomes 1, oversized caps at [`MAX_SHARDS`]). More shards
    /// mean less lock contention between concurrent point operations and
    /// more fan-out parallelism for LIST. The layout is static — no
    /// splitting.
    pub fn with_shards(world: &SimWorld, shards: usize) -> S3 {
        S3::with_shard_plan(world, ShardPlan::fixed(shards))
    }

    /// Connects an endpoint provisioning each bucket per `plan`: the
    /// initial shard count plus, optionally, a hot-shard
    /// [`simworld::SplitPolicy`].
    pub fn with_shard_plan(world: &SimWorld, plan: ShardPlan) -> S3 {
        S3 {
            world: world.clone(),
            plan,
            inner: Arc::new(Inner {
                buckets: RwLock::new(BTreeMap::new()),
                throttle: Mutex::new(None),
            }),
        }
    }

    /// Initial (post-clamp) hash shards per bucket on this endpoint.
    /// Splitting can grow an individual bucket past this — see
    /// [`S3::bucket_shard_count`].
    pub fn shard_count(&self) -> usize {
        simworld::clamp_shards(self.plan.shards)
    }

    /// The shard plan buckets are provisioned with.
    pub fn shard_plan(&self) -> ShardPlan {
        self.plan
    }

    /// Shards `bucket` currently holds (grows as hot shards split), or
    /// `None` for an unknown bucket. Unbilled.
    pub fn bucket_shard_count(&self, bucket: &str) -> Option<usize> {
        Some(self.bucket(bucket).ok()?.shard_count())
    }

    /// Splits performed on `bucket` so far, or `None` for an unknown
    /// bucket. Unbilled.
    pub fn bucket_split_count(&self, bucket: &str) -> Option<u64> {
        Some(self.bucket(bucket).ok()?.split_count())
    }

    /// Stable ids of `bucket`'s current shards in hash-range order, or
    /// `None` for an unknown bucket. Unbilled.
    pub fn bucket_shard_ids(&self, bucket: &str) -> Option<Vec<u32>> {
        Some(self.bucket(bucket).ok()?.shard_ids())
    }

    /// Test/bench hook: force-splits the shard of `bucket` currently
    /// holding the most cells, policy or not. Returns the split record,
    /// or `None` when the bucket is unknown or nothing can split.
    pub fn split_hottest(&self, bucket: &str) -> Option<SplitEvent> {
        self.bucket(bucket).ok()?.force_split()
    }

    /// Installs (or, with `None`, removes) a per-shard write-rate limit.
    /// Above the limit, write-path calls return
    /// [`S3Error::ServiceUnavailable`] without applying — the rejection
    /// is still a billable, metered request. Read paths (GET/HEAD/LIST)
    /// are not throttled. Replaces any prior limit and resets bucket
    /// state.
    pub fn set_throttle(&self, config: Option<ThrottleConfig>) {
        *self.inner.throttle.lock() = config;
        for bkt in self.inner.buckets.read().values() {
            bkt.reset_throttle();
        }
    }

    /// The active per-shard write-rate limit, if any.
    pub fn throttle(&self) -> Option<ThrottleConfig> {
        *self.inner.throttle.lock()
    }

    /// All-or-nothing admission for a request landing on `shards` of
    /// `bkt`: every touched shard's token bucket must hold a token, or
    /// the whole request is rejected and no bucket is drained (a
    /// rejected batch must not consume the budget of the shards it
    /// missed).
    fn admit(&self, bkt: &Bucket, shards: &[u32]) -> bool {
        let config = *self.inner.throttle.lock();
        bkt.admit(self.world.now(), config, shards)
    }

    /// Creates a bucket.
    ///
    /// # Errors
    ///
    /// [`S3Error::BucketAlreadyExists`] on name collision;
    /// [`S3Error::InvalidBucketName`] for empty or oversized names.
    pub fn create_bucket(&self, bucket: impl Into<String>) -> Result<()> {
        let bucket = bucket.into();
        if bucket.is_empty() || bucket.len() > 255 {
            return Err(S3Error::InvalidBucketName { bucket });
        }
        let mut buckets = self.inner.buckets.write();
        if buckets.contains_key(&bucket) {
            return Err(S3Error::BucketAlreadyExists { bucket });
        }
        self.world.record_op(Op::S3Put, bucket.len() as u64, 0);
        buckets.insert(bucket, Arc::new(ShardMap::new(self.plan)));
        Ok(())
    }

    /// Stores an object, overwriting any existing object at the key.
    /// Data and metadata travel in the *same* request — the paper's
    /// Architecture 1 leans on this for atomicity. Touches exactly one
    /// shard.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`], [`S3Error::KeyTooLong`],
    /// [`S3Error::EntityTooLarge`] or [`S3Error::MetadataTooLarge`].
    pub fn put_object(
        &self,
        bucket: &str,
        key: &str,
        body: Blob,
        metadata: Metadata,
    ) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(S3Error::KeyTooLong { length: key.len() });
        }
        if body.len() > MAX_OBJECT_SIZE {
            return Err(S3Error::EntityTooLarge { size: body.len() });
        }
        metadata.check_limit()?;
        let bkt = self.bucket(bucket)?;
        let shard = bkt.route(key);
        let stored = Stored {
            etag: body.md5(),
            last_modified: self.world.now(),
            body,
            metadata,
        };
        let bytes_in = stored.footprint();
        if !self.admit(&bkt, &[shard]) {
            self.world.record_throttled(Op::S3Put, bytes_in);
            self.world.record_shard_touch(Service::S3, shard);
            bkt.maybe_split();
            return Err(S3Error::ServiceUnavailable {
                bucket: bucket.to_string(),
            });
        }
        let shard = bkt.with_cells(key, |shard, map| {
            let prev_footprint = map
                .read_latest(&key.to_string())
                .map(|s| s.footprint())
                .unwrap_or(0);
            self.world.record_op(Op::S3Put, bytes_in, 0);
            self.world.record_shard_touch(Service::S3, shard);
            self.world
                .adjust_stored(Service::S3, bytes_in as i64 - prev_footprint as i64);
            map.write(&self.world, key.to_string(), Some(stored));
            shard
        });
        bkt.note_ops(&[shard]);
        Ok(())
    }

    /// Retrieves a whole object. Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchKey`] when absent *or not yet visible on the
    /// sampled replica* — retrying after the propagation lag succeeds.
    pub fn get_object(&self, bucket: &str, key: &str) -> Result<Object> {
        let bkt = self.bucket(bucket)?;
        let shard = bkt.route(key);
        self.world.record_shard_touch(Service::S3, shard);
        let stored = bkt.with_cells(key, |_, map| map.read(&self.world, &key.to_string()));
        bkt.note_ops(&[shard]);
        let stored = stored.ok_or_else(|| {
            self.world.record_op(Op::S3Get, 0, 0);
            S3Error::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }
        })?;
        let bytes_out = stored.footprint();
        self.world.record_op(Op::S3Get, 0, bytes_out);
        Ok(Object {
            body: stored.body,
            metadata: stored.metadata,
            etag: stored.etag,
            last_modified: stored.last_modified,
        })
    }

    /// Retrieves a byte range of an object. Metadata and the full-body
    /// ETag still accompany the response.
    ///
    /// # Errors
    ///
    /// [`S3Error::InvalidRange`] if the range does not fit the object;
    /// otherwise as [`S3::get_object`].
    pub fn get_object_range(&self, bucket: &str, key: &str, range: Range<u64>) -> Result<Object> {
        let bkt = self.bucket(bucket)?;
        let shard = bkt.route(key);
        self.world.record_shard_touch(Service::S3, shard);
        let stored = bkt.with_cells(key, |_, map| map.read(&self.world, &key.to_string()));
        bkt.note_ops(&[shard]);
        let stored = stored.ok_or_else(|| {
            self.world.record_op(Op::S3Get, 0, 0);
            S3Error::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }
        })?;
        if range.start > range.end || range.end > stored.body.len() {
            return Err(S3Error::InvalidRange {
                start: range.start,
                end: range.end,
                len: stored.body.len(),
            });
        }
        let body = stored.body.slice(range);
        let bytes_out = body.len() + stored.metadata.byte_size();
        self.world.record_op(Op::S3Get, 0, bytes_out);
        Ok(Object {
            body,
            metadata: stored.metadata,
            etag: stored.etag,
            last_modified: stored.last_modified,
        })
    }

    /// Retrieves only the metadata of an object — the sole provenance
    /// "query" primitive Architecture 1 has. Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// As [`S3::get_object`].
    pub fn head_object(&self, bucket: &str, key: &str) -> Result<Head> {
        let bkt = self.bucket(bucket)?;
        let shard = bkt.route(key);
        self.world.record_shard_touch(Service::S3, shard);
        let stored = bkt.with_cells(key, |_, map| map.read(&self.world, &key.to_string()));
        bkt.note_ops(&[shard]);
        let stored = stored.ok_or_else(|| {
            self.world.record_op(Op::S3Head, 0, 0);
            S3Error::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }
        })?;
        self.world
            .record_op(Op::S3Head, 0, stored.metadata.byte_size());
        Ok(Head {
            content_length: stored.body.len(),
            metadata: stored.metadata,
            etag: stored.etag,
            last_modified: stored.last_modified,
        })
    }

    /// Server-side copy. Per the paper (§5), COPY is **not** billed for
    /// data transfer — only the operation itself — which is why
    /// Architecture 3's temp-object dance adds ops but no transfer bytes.
    /// Locks the source shard, then the destination shard (never both at
    /// once, so opposite-direction copies cannot deadlock).
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchKey`] if the source is absent or not yet visible
    /// on the sampled replica; metadata limit errors when replacing.
    pub fn copy_object(
        &self,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
        directive: MetadataDirective,
    ) -> Result<()> {
        self.copy_inner(src_bucket, src_key, dst_bucket, dst_key, directive, None)
    }

    /// [`S3::copy_object`] with a completion-order key: pipelined
    /// copies carrying the same `order_key` complete in issue order
    /// (see [`simworld::SimWorld::record_op_keyed`]). Architecture 3's
    /// commit daemon keys a transaction's apply-chain copies by txid so
    /// they stay ordered however deep its pipeline runs, while copies
    /// of different transactions overlap freely. Serial behaviour is
    /// identical to the unkeyed call.
    ///
    /// # Errors
    ///
    /// As [`S3::copy_object`].
    pub fn copy_object_ordered(
        &self,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
        directive: MetadataDirective,
        order_key: u64,
    ) -> Result<()> {
        self.copy_inner(
            src_bucket,
            src_key,
            dst_bucket,
            dst_key,
            directive,
            Some(order_key),
        )
    }

    fn copy_inner(
        &self,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
        directive: MetadataDirective,
        order_key: Option<u64>,
    ) -> Result<()> {
        if dst_key.len() > MAX_KEY_LEN {
            return Err(S3Error::KeyTooLong {
                length: dst_key.len(),
            });
        }
        // Resolve both buckets before touching any state, so a copy
        // into a missing bucket leaves no fingerprints (no shard touch,
        // no RNG draw) on the simulation.
        let src_bkt = self.bucket(src_bucket)?;
        let dst_bkt = self.bucket(dst_bucket)?;
        // Throttling gates the *write* side: admission is checked on the
        // destination shard before the source is even read, so a rejected
        // copy burns no source shard touch or replica sample.
        let dst_shard = dst_bkt.route(dst_key);
        if !self.admit(&dst_bkt, &[dst_shard]) {
            self.world.record_throttled(Op::S3Copy, 0);
            self.world.record_shard_touch(Service::S3, dst_shard);
            dst_bkt.maybe_split();
            return Err(S3Error::ServiceUnavailable {
                bucket: dst_bucket.to_string(),
            });
        }
        let src_shard = src_bkt.route(src_key);
        self.world.record_shard_touch(Service::S3, src_shard);
        let src = src_bkt.with_cells(src_key, |_, map| {
            map.read(&self.world, &src_key.to_string())
        });
        src_bkt.note_ops(&[src_shard]);
        let src = src.ok_or_else(|| {
            record_copy(&self.world, order_key);
            S3Error::NoSuchKey {
                bucket: src_bucket.to_string(),
                key: src_key.to_string(),
            }
        })?;
        let metadata = match directive {
            MetadataDirective::Copy => src.metadata.clone(),
            MetadataDirective::Replace(m) => {
                m.check_limit()?;
                m
            }
        };
        let stored = Stored {
            etag: src.etag,
            last_modified: self.world.now(),
            body: src.body,
            metadata,
        };
        let dst_shard = dst_bkt.with_cells(dst_key, |shard, map| {
            let prev_footprint = map
                .read_latest(&dst_key.to_string())
                .map(|s| s.footprint())
                .unwrap_or(0);
            record_copy(&self.world, order_key);
            self.world.record_shard_touch(Service::S3, shard);
            self.world.adjust_stored(
                Service::S3,
                stored.footprint() as i64 - prev_footprint as i64,
            );
            map.write(&self.world, dst_key.to_string(), Some(stored));
            shard
        });
        dst_bkt.note_ops(&[dst_shard]);
        Ok(())
    }

    /// Deletes an object. Idempotent: deleting an absent key succeeds,
    /// as in the real service. Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`] only.
    pub fn delete_object(&self, bucket: &str, key: &str) -> Result<()> {
        let bkt = self.bucket(bucket)?;
        let shard = bkt.route(key);
        if !self.admit(&bkt, &[shard]) {
            self.world.record_throttled(Op::S3Delete, 0);
            self.world.record_shard_touch(Service::S3, shard);
            bkt.maybe_split();
            return Err(S3Error::ServiceUnavailable {
                bucket: bucket.to_string(),
            });
        }
        let shard = bkt.with_cells(key, |shard, map| {
            let prev = map.read_latest(&key.to_string()).map(|s| s.footprint());
            self.world.record_op(Op::S3Delete, 0, 0);
            self.world.record_shard_touch(Service::S3, shard);
            if let Some(footprint) = prev {
                self.world.adjust_stored(Service::S3, -(footprint as i64));
                map.write(&self.world, key.to_string(), None);
            }
            shard
        });
        bkt.note_ops(&[shard]);
        Ok(())
    }

    /// Multi-object delete (`POST ?delete`): removes up to
    /// [`MAX_DELETE_KEYS`] keys in **one billable request**. Keys are
    /// grouped by hash shard and every touched shard's lock is taken
    /// exactly once; shards drop their keys in parallel, so the latency
    /// model charges one round trip plus the busiest shard's share of
    /// the per-key marginal cost. Idempotent per key, like
    /// [`S3::delete_object`]. Returns how many keys actually held an
    /// object.
    ///
    /// # Errors
    ///
    /// Every error mutates nothing: [`S3Error::EmptyDelete`],
    /// [`S3Error::TooManyDeleteKeys`], [`S3Error::KeyTooLong`],
    /// [`S3Error::NoSuchBucket`].
    pub fn delete_objects(&self, bucket: &str, keys: &[String]) -> Result<u64> {
        if keys.is_empty() {
            return Err(S3Error::EmptyDelete);
        }
        if keys.len() > MAX_DELETE_KEYS {
            return Err(S3Error::TooManyDeleteKeys {
                submitted: keys.len(),
            });
        }
        for key in keys {
            if key.len() > MAX_KEY_LEN {
                return Err(S3Error::KeyTooLong { length: key.len() });
            }
        }
        let bkt = self.bucket(bucket)?;

        // Group keys per shard; every touched shard's lock is taken
        // exactly once, in ascending id order (deadlock-free against
        // concurrent batches).
        let mut by_shard: BTreeMap<u32, Vec<&String>> = BTreeMap::new();
        for key in keys {
            by_shard.entry(bkt.route(key)).or_default().push(key);
        }
        let gating = by_shard.values().map(Vec::len).max().unwrap_or(0) as u64;
        let bytes_in: u64 = keys.iter().map(|k| k.len() as u64).sum();
        let shards: Vec<u32> = by_shard.keys().copied().collect();
        if !self.admit(&bkt, &shards) {
            self.world.record_throttled(Op::S3DeleteObjects, bytes_in);
            for &shard in &shards {
                self.world.record_shard_touch(Service::S3, shard);
            }
            bkt.maybe_split();
            return Err(S3Error::ServiceUnavailable {
                bucket: bucket.to_string(),
            });
        }
        self.world
            .record_batch(Op::S3DeleteObjects, keys.len() as u64, bytes_in, 0, gating);
        let removed = bkt.with_cells_multi(&shards, |guards| {
            let mut removed = 0u64;
            let mut freed = 0i64;
            for (shard, shard_keys) in &by_shard {
                let map = guards.get_mut(*shard);
                self.world.record_shard_touch(Service::S3, *shard);
                for key in shard_keys {
                    let prev = map.read_latest(&key.to_string()).map(|s| s.footprint());
                    if let Some(footprint) = prev {
                        freed += footprint as i64;
                        removed += 1;
                        map.write(&self.world, key.to_string(), None);
                    }
                }
            }
            if freed > 0 {
                self.world.adjust_stored(Service::S3, -freed);
            }
            removed
        });
        bkt.note_ops(&shards);
        Ok(removed)
    }

    /// Lists keys (lexicographic) matching `prefix`, starting strictly
    /// after `marker`, up to `max_keys` (capped at [`MAX_LIST_KEYS`]).
    /// The listing is eventually consistent: it reflects one sampled
    /// replica per shard, pinned for the whole call.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`].
    pub fn list_objects(
        &self,
        bucket: &str,
        prefix: &str,
        marker: Option<&str>,
        max_keys: usize,
    ) -> Result<Listing> {
        let bkt = self.bucket(bucket)?;
        let (listing, touched) = bkt.read_view(|view| {
            let pin = view.pin_replicas(&self.world);
            (
                self.list_page_on(view, &pin, prefix, marker, max_keys),
                view.sorted_ids(),
            )
        });
        bkt.note_ops(&touched);
        Ok(listing)
    }

    /// Lists *every* key with `prefix`, driving pagination internally.
    /// Each page is a billed LIST op. One replica per shard is pinned
    /// for the **whole walk**, keyed by stable shard id, so the result
    /// is a coherent per-shard view: a fresh (possibly stale) replica
    /// sampled mid-walk can no longer hide keys that an earlier page
    /// counted toward its cap, and a shard that splits between pages
    /// keeps serving the walk from its parent's pinned replica.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`].
    pub fn list_all(&self, bucket: &str, prefix: &str) -> Result<Vec<ObjectSummary>> {
        let bkt = self.bucket(bucket)?;
        let pin = bkt.read_view(|view| view.pin_replicas(&self.world));
        let mut out = Vec::new();
        let mut marker: Option<String> = None;
        loop {
            let (page, touched) = bkt.read_view(|view| {
                (
                    self.list_page_on(view, &pin, prefix, marker.as_deref(), MAX_LIST_KEYS),
                    view.sorted_ids(),
                )
            });
            bkt.note_ops(&touched);
            let truncated = page.is_truncated;
            marker = page.objects.last().map(|o| o.key.clone());
            out.extend(page.objects);
            if !truncated || marker.is_none() {
                return Ok(out);
            }
        }
    }

    /// One LIST page over the shard fan-out, on explicitly pinned
    /// replicas (a shard born after the pin was minted resolves to its
    /// nearest pinned ancestor). The cross-shard machinery is the same
    /// adaptive-quota merge the sharded SimpleDB `Query` uses
    /// ([`simworld::merged_shard_page`]); per shard, the scan is
    /// range-bounded to the prefix's contiguous key range, so a
    /// narrow-prefix LIST examines (and is charged for) only the cells
    /// that could match.
    fn list_page_on(
        &self,
        view: &simworld::MapView<'_, Stored>,
        pin: &ReplicaPin,
        prefix: &str,
        marker: Option<&str>,
        max_keys: usize,
    ) -> Listing {
        use std::ops::Bound;
        let cap = max_keys.clamp(1, MAX_LIST_KEYS);
        let now = self.world.now();
        let shard_count = view.shard_count();
        self.world
            .record_shard_touches(Service::S3, &view.sorted_ids());
        let replicas: Vec<usize> = (0..shard_count)
            .map(|pos| {
                view.resolve_pin(pin, pos)
                    .expect("ids never disappear, so every shard reaches a pinned ancestor")
            })
            .collect();
        let prefix_key = prefix.to_string();
        let (page, more, scanned) = simworld::merged_shard_page(
            shard_count,
            marker.map(str::to_string),
            cap,
            |i, cursor, quota| {
                // Seek straight to the prefix range; keys that share the
                // prefix are contiguous under byte-wise string order, so
                // the first key past it ends the shard's scan.
                let start = match cursor {
                    Some(c) if c.as_str() >= prefix => Bound::Excluded(c),
                    _ if !prefix.is_empty() => Bound::Included(&prefix_key),
                    _ => Bound::Unbounded,
                };
                view.with_cells_at(i, |map| {
                    map.visible_page_from(
                        replicas[i],
                        now,
                        start,
                        quota,
                        |k| !k.starts_with(prefix),
                        |_, _| true,
                    )
                })
            },
        );
        let objects: Vec<ObjectSummary> = page
            .into_iter()
            .map(|(key, stored)| ObjectSummary {
                size: stored.body.len(),
                key,
            })
            .collect();
        let bytes_out: u64 = objects
            .iter()
            .map(|o| o.key.len() as u64 + LIST_ENTRY_OVERHEAD)
            .sum();
        // Shards scan in parallel: the busiest shard's examined rows
        // gate the response — this is where bucket sharding buys
        // deterministic virtual-time LIST speedup.
        self.world.record_scan(Op::S3List, 0, bytes_out, scanned);
        Listing {
            objects,
            is_truncated: more,
        }
    }

    // --- authoritative (non-billed) views, for invariant checks ---

    /// The newest committed object at a key, ignoring replication lag and
    /// without billing. For tests and property validators only.
    pub fn latest_object(&self, bucket: &str, key: &str) -> Option<Object> {
        let bkt = self.bucket(bucket).ok()?;
        bkt.with_cells(key, |_, map| {
            map.read_latest(&key.to_string()).map(|s| Object {
                body: s.body,
                metadata: s.metadata,
                etag: s.etag,
                last_modified: s.last_modified,
            })
        })
    }

    /// Authoritative list of live keys with `prefix`, unbilled. For tests
    /// and property validators only.
    pub fn latest_keys(&self, bucket: &str, prefix: &str) -> Vec<String> {
        let Ok(bkt) = self.bucket(bucket) else {
            return Vec::new();
        };
        let mut keys: Vec<String> = bkt.read_view(|view| {
            let mut keys = Vec::new();
            for pos in 0..view.shard_count() {
                view.with_cells_at(pos, |map| {
                    keys.extend(
                        map.iter_latest()
                            .filter(|(k, _)| k.starts_with(prefix))
                            .map(|(k, _)| k.clone()),
                    );
                });
            }
            keys
        });
        keys.sort_unstable();
        keys
    }

    /// Looks a bucket up, cloning its handle out so the buckets map lock
    /// is held only for the lookup.
    fn bucket(&self, bucket: &str) -> Result<Arc<Bucket>> {
        self.inner
            .buckets
            .read()
            .get(bucket)
            .cloned()
            .ok_or_else(|| S3Error::NoSuchBucket {
                bucket: bucket.to_string(),
            })
    }
}

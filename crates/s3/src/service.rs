//! The S3 service simulator.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simworld::{Blob, EcMap, Md5Digest, Op, Service, SimInstant, SimWorld};

use crate::error::{Result, S3Error};
use crate::metadata::Metadata;

/// S3's maximum object size circa January 2009: 5 GB.
pub const MAX_OBJECT_SIZE: u64 = 5 * 1024 * 1024 * 1024;

/// S3's maximum key length in bytes.
pub const MAX_KEY_LEN: usize = 1024;

/// Maximum keys returned per LIST page.
pub const MAX_LIST_KEYS: usize = 1000;

/// Approximate fixed response overhead per listed key (XML framing).
const LIST_ENTRY_OVERHEAD: u64 = 64;

/// A stored object as returned by GET.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Object {
    /// Object content (possibly a sub-range for ranged GETs).
    pub body: Blob,
    /// User metadata.
    pub metadata: Metadata,
    /// MD5 of the complete body (S3's ETag for simple PUTs).
    pub etag: Md5Digest,
    /// When the object version was written.
    pub last_modified: SimInstant,
}

/// Metadata-only view returned by HEAD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Head {
    /// User metadata.
    pub metadata: Metadata,
    /// Full body length in bytes.
    pub content_length: u64,
    /// MD5 of the body.
    pub etag: Md5Digest,
    /// When the object version was written.
    pub last_modified: SimInstant,
}

/// One entry of a LIST response.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectSummary {
    /// Object key.
    pub key: String,
    /// Body length in bytes.
    pub size: u64,
}

/// A LIST response page.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Listing {
    /// Keys in lexicographic order, after `marker`, matching `prefix`.
    pub objects: Vec<ObjectSummary>,
    /// `true` when more keys remain past this page.
    pub is_truncated: bool,
}

/// Whether COPY carries the source metadata or replaces it — the
/// `x-amz-metadata-directive` header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetadataDirective {
    /// Keep the source object's metadata.
    Copy,
    /// Replace metadata wholesale with the supplied pairs.
    Replace(Metadata),
}

#[derive(Clone, Debug)]
struct Stored {
    body: Blob,
    metadata: Metadata,
    etag: Md5Digest,
    last_modified: SimInstant,
}

impl Stored {
    fn footprint(&self) -> u64 {
        self.body.len() + self.metadata.byte_size()
    }
}

#[derive(Default)]
struct Inner {
    buckets: BTreeMap<String, EcMap<String, Stored>>,
}

/// The simulated Simple Storage Service.
///
/// All clones share one backing store (they are handles to the same
/// simulated service endpoint). Every operation is metered against the
/// world's ledger and advances the virtual clock; reads are served from a
/// sampled replica and may be stale under eventual consistency.
///
/// # Examples
///
/// ```
/// use sim_s3::{Metadata, S3};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let s3 = S3::new(&world);
/// s3.create_bucket("data")?;
/// s3.put_object("data", "hello.txt", Blob::from("hi"), Metadata::new())?;
/// let obj = s3.get_object("data", "hello.txt")?;
/// assert_eq!(&obj.body.to_bytes()[..], b"hi");
/// # Ok::<(), sim_s3::S3Error>(())
/// ```
#[derive(Clone)]
pub struct S3 {
    world: SimWorld,
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for S3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("S3")
            .field("buckets", &inner.buckets.len())
            .finish_non_exhaustive()
    }
}

impl S3 {
    /// Connects a new simulated S3 endpoint to `world`.
    pub fn new(world: &SimWorld) -> S3 {
        S3 {
            world: world.clone(),
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Creates a bucket.
    ///
    /// # Errors
    ///
    /// [`S3Error::BucketAlreadyExists`] on name collision;
    /// [`S3Error::InvalidBucketName`] for empty or oversized names.
    pub fn create_bucket(&self, bucket: impl Into<String>) -> Result<()> {
        let bucket = bucket.into();
        if bucket.is_empty() || bucket.len() > 255 {
            return Err(S3Error::InvalidBucketName { bucket });
        }
        let mut inner = self.inner.lock();
        if inner.buckets.contains_key(&bucket) {
            return Err(S3Error::BucketAlreadyExists { bucket });
        }
        self.world.record_op(Op::S3Put, bucket.len() as u64, 0);
        inner.buckets.insert(bucket, EcMap::new());
        Ok(())
    }

    /// Stores an object, overwriting any existing object at the key.
    /// Data and metadata travel in the *same* request — the paper's
    /// Architecture 1 leans on this for atomicity.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`], [`S3Error::KeyTooLong`],
    /// [`S3Error::EntityTooLarge`] or [`S3Error::MetadataTooLarge`].
    pub fn put_object(
        &self,
        bucket: &str,
        key: &str,
        body: Blob,
        metadata: Metadata,
    ) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(S3Error::KeyTooLong { length: key.len() });
        }
        if body.len() > MAX_OBJECT_SIZE {
            return Err(S3Error::EntityTooLarge { size: body.len() });
        }
        metadata.check_limit()?;
        let mut inner = self.inner.lock();
        let map = bucket_mut(&mut inner, bucket)?;

        let prev_footprint = map
            .read_latest(&key.to_string())
            .map(|s| s.footprint())
            .unwrap_or(0);
        let stored = Stored {
            etag: body.md5(),
            last_modified: self.world.now(),
            body,
            metadata,
        };
        let bytes_in = stored.footprint();
        self.world.record_op(Op::S3Put, bytes_in, 0);
        self.world
            .adjust_stored(Service::S3, bytes_in as i64 - prev_footprint as i64);
        map.write(&self.world, key.to_string(), Some(stored));
        Ok(())
    }

    /// Retrieves a whole object.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchKey`] when absent *or not yet visible on the
    /// sampled replica* — retrying after the propagation lag succeeds.
    pub fn get_object(&self, bucket: &str, key: &str) -> Result<Object> {
        let inner = self.inner.lock();
        let map = bucket_ref(&inner, bucket)?;
        let stored = map.read(&self.world, &key.to_string()).ok_or_else(|| {
            self.world.record_op(Op::S3Get, 0, 0);
            S3Error::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }
        })?;
        let bytes_out = stored.footprint();
        self.world.record_op(Op::S3Get, 0, bytes_out);
        Ok(Object {
            body: stored.body,
            metadata: stored.metadata,
            etag: stored.etag,
            last_modified: stored.last_modified,
        })
    }

    /// Retrieves a byte range of an object. Metadata and the full-body
    /// ETag still accompany the response.
    ///
    /// # Errors
    ///
    /// [`S3Error::InvalidRange`] if the range does not fit the object;
    /// otherwise as [`S3::get_object`].
    pub fn get_object_range(&self, bucket: &str, key: &str, range: Range<u64>) -> Result<Object> {
        let inner = self.inner.lock();
        let map = bucket_ref(&inner, bucket)?;
        let stored = map.read(&self.world, &key.to_string()).ok_or_else(|| {
            self.world.record_op(Op::S3Get, 0, 0);
            S3Error::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }
        })?;
        if range.start > range.end || range.end > stored.body.len() {
            return Err(S3Error::InvalidRange {
                start: range.start,
                end: range.end,
                len: stored.body.len(),
            });
        }
        let body = stored.body.slice(range);
        let bytes_out = body.len() + stored.metadata.byte_size();
        self.world.record_op(Op::S3Get, 0, bytes_out);
        Ok(Object {
            body,
            metadata: stored.metadata,
            etag: stored.etag,
            last_modified: stored.last_modified,
        })
    }

    /// Retrieves only the metadata of an object — the sole provenance
    /// "query" primitive Architecture 1 has.
    ///
    /// # Errors
    ///
    /// As [`S3::get_object`].
    pub fn head_object(&self, bucket: &str, key: &str) -> Result<Head> {
        let inner = self.inner.lock();
        let map = bucket_ref(&inner, bucket)?;
        let stored = map.read(&self.world, &key.to_string()).ok_or_else(|| {
            self.world.record_op(Op::S3Head, 0, 0);
            S3Error::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }
        })?;
        self.world
            .record_op(Op::S3Head, 0, stored.metadata.byte_size());
        Ok(Head {
            content_length: stored.body.len(),
            metadata: stored.metadata,
            etag: stored.etag,
            last_modified: stored.last_modified,
        })
    }

    /// Server-side copy. Per the paper (§5), COPY is **not** billed for
    /// data transfer — only the operation itself — which is why
    /// Architecture 3's temp-object dance adds ops but no transfer bytes.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchKey`] if the source is absent or not yet visible
    /// on the sampled replica; metadata limit errors when replacing.
    pub fn copy_object(
        &self,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
        directive: MetadataDirective,
    ) -> Result<()> {
        if dst_key.len() > MAX_KEY_LEN {
            return Err(S3Error::KeyTooLong {
                length: dst_key.len(),
            });
        }
        let mut inner = self.inner.lock();
        let src = bucket_ref_mutless(&inner, src_bucket)?
            .read(&self.world, &src_key.to_string())
            .ok_or_else(|| {
                self.world.record_op(Op::S3Copy, 0, 0);
                S3Error::NoSuchKey {
                    bucket: src_bucket.to_string(),
                    key: src_key.to_string(),
                }
            })?;
        let metadata = match directive {
            MetadataDirective::Copy => src.metadata.clone(),
            MetadataDirective::Replace(m) => {
                m.check_limit()?;
                m
            }
        };
        let dst_map = bucket_mut(&mut inner, dst_bucket)?;
        let prev_footprint = dst_map
            .read_latest(&dst_key.to_string())
            .map(|s| s.footprint())
            .unwrap_or(0);
        let stored = Stored {
            etag: src.etag,
            last_modified: self.world.now(),
            body: src.body,
            metadata,
        };
        self.world.record_op(Op::S3Copy, 0, 0);
        self.world.adjust_stored(
            Service::S3,
            stored.footprint() as i64 - prev_footprint as i64,
        );
        dst_map.write(&self.world, dst_key.to_string(), Some(stored));
        Ok(())
    }

    /// Deletes an object. Idempotent: deleting an absent key succeeds,
    /// as in the real service.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`] only.
    pub fn delete_object(&self, bucket: &str, key: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let map = bucket_mut(&mut inner, bucket)?;
        let prev = map.read_latest(&key.to_string()).map(|s| s.footprint());
        self.world.record_op(Op::S3Delete, 0, 0);
        if let Some(footprint) = prev {
            self.world.adjust_stored(Service::S3, -(footprint as i64));
            map.write(&self.world, key.to_string(), None);
        }
        Ok(())
    }

    /// Lists keys (lexicographic) matching `prefix`, starting strictly
    /// after `marker`, up to `max_keys` (capped at [`MAX_LIST_KEYS`]).
    /// The listing itself is eventually consistent: it reflects one
    /// sampled replica.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`].
    pub fn list_objects(
        &self,
        bucket: &str,
        prefix: &str,
        marker: Option<&str>,
        max_keys: usize,
    ) -> Result<Listing> {
        let inner = self.inner.lock();
        let map = bucket_ref(&inner, bucket)?;
        let cap = max_keys.clamp(1, MAX_LIST_KEYS);
        // One replica serves the whole LIST: the key listing and the
        // per-key materialisation must agree, or a key counted toward
        // the page cap could vanish from the page and be skipped by a
        // marker-based walk forever.
        let replica = self.world.sample_read_replica();
        let now = self.world.now();
        // Key-only listing first; object state is materialised for the
        // returned page only, so paging a large bucket costs O(page).
        let mut keys: Vec<String> = map
            .visible_keys_on(replica, now)
            .into_iter()
            .filter(|k| k.starts_with(prefix) && marker.map(|m| k.as_str() > m).unwrap_or(true))
            .collect();
        keys.sort_unstable();
        let is_truncated = keys.len() > cap;
        keys.truncate(cap);
        let matching: Vec<ObjectSummary> = keys
            .into_iter()
            .filter_map(|key| {
                map.read_on(replica, now, &key).map(|s| ObjectSummary {
                    size: s.body.len(),
                    key,
                })
            })
            .collect();
        let bytes_out: u64 = matching
            .iter()
            .map(|o| o.key.len() as u64 + LIST_ENTRY_OVERHEAD)
            .sum();
        // A LIST examines the whole (unsharded) bucket index; charge the
        // server-side scan in addition to the transfer.
        self.world
            .record_scan(Op::S3List, 0, bytes_out, map.cell_count() as u64);
        Ok(Listing {
            objects: matching,
            is_truncated,
        })
    }

    /// Lists *every* key with `prefix`, driving pagination internally.
    /// Each page is a billed LIST op.
    ///
    /// # Errors
    ///
    /// [`S3Error::NoSuchBucket`].
    pub fn list_all(&self, bucket: &str, prefix: &str) -> Result<Vec<ObjectSummary>> {
        let mut out = Vec::new();
        let mut marker: Option<String> = None;
        loop {
            let page = self.list_objects(bucket, prefix, marker.as_deref(), MAX_LIST_KEYS)?;
            let truncated = page.is_truncated;
            marker = page.objects.last().map(|o| o.key.clone());
            out.extend(page.objects);
            if !truncated || marker.is_none() {
                return Ok(out);
            }
        }
    }

    // --- authoritative (non-billed) views, for invariant checks ---

    /// The newest committed object at a key, ignoring replication lag and
    /// without billing. For tests and property validators only.
    pub fn latest_object(&self, bucket: &str, key: &str) -> Option<Object> {
        let inner = self.inner.lock();
        let map = inner.buckets.get(bucket)?;
        map.read_latest(&key.to_string()).map(|s| Object {
            body: s.body,
            metadata: s.metadata,
            etag: s.etag,
            last_modified: s.last_modified,
        })
    }

    /// Authoritative list of live keys with `prefix`, unbilled. For tests
    /// and property validators only.
    pub fn latest_keys(&self, bucket: &str, prefix: &str) -> Vec<String> {
        let inner = self.inner.lock();
        match inner.buckets.get(bucket) {
            Some(map) => map
                .iter_latest()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, _)| k.clone())
                .collect(),
            None => Vec::new(),
        }
    }
}

fn bucket_mut<'a>(inner: &'a mut Inner, bucket: &str) -> Result<&'a mut EcMap<String, Stored>> {
    inner
        .buckets
        .get_mut(bucket)
        .ok_or_else(|| S3Error::NoSuchBucket {
            bucket: bucket.to_string(),
        })
}

fn bucket_ref<'a>(inner: &'a Inner, bucket: &str) -> Result<&'a EcMap<String, Stored>> {
    inner
        .buckets
        .get(bucket)
        .ok_or_else(|| S3Error::NoSuchBucket {
            bucket: bucket.to_string(),
        })
}

// Identical to `bucket_ref`; exists so call sites that later need the map
// mutably can borrow immutably first without convincing the borrow
// checker of disjointness.
fn bucket_ref_mutless<'a>(inner: &'a Inner, bucket: &str) -> Result<&'a EcMap<String, Stored>> {
    bucket_ref(inner, bucket)
}

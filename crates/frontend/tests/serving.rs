//! End-to-end and adversarial tests for the network frontend: the
//! typed surface over TCP and Unix sockets, and every way a client can
//! speak the protocol badly without taking the server down.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use frontend::{Client, ClientError, Command, FaultCode, Reply, Server, MAX_FRAME};
use pass::FileFlush;
use provenance_cloud::{ProvQuery, S3SimpleDb, S3SimpleDbSqs, ServeHandle};
use simworld::{Blob, SimWorld};

fn arch2_handle() -> ServeHandle {
    ServeHandle::new(S3SimpleDb::new(&SimWorld::counting()))
}

fn flush(name: &str, seed: u64, parent: Option<&str>) -> FileFlush {
    let mut b = FileFlush::builder(name).data(Blob::synthetic(seed, 2048));
    if let Some(p) = parent {
        b = b.record("input", &format!("{p}:1"));
    }
    b.build()
}

fn unique_socket_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "prov-frontend-{tag}-{}-{n}.sock",
        std::process::id()
    ))
}

#[test]
fn tcp_round_trip_record_flush_read_query_stats() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 2).unwrap();
    let addr = server.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();

    client.record(&flush("raw.dat", 1, None)).unwrap();
    client
        .record(&flush("cooked.dat", 2, Some("raw.dat")))
        .unwrap();
    client.flush().unwrap();

    let read = client.read("cooked.dat").unwrap();
    assert!(read.consistent());
    assert_eq!(read.object.version, 1);
    assert_eq!(read.data.to_bytes(), Blob::synthetic(2, 2048).to_bytes());

    let answer = client
        .query(&ProvQuery::ProvenanceOf {
            name: "cooked.dat".into(),
            version: 1,
        })
        .unwrap();
    assert_eq!(answer.items.len(), 1);

    let stats = client.stats().unwrap();
    assert_eq!(stats.architecture, "s3+simpledb");
    assert!(stats.requests >= 5);
    assert!(stats.store_ops > 0);

    server.shutdown();
}

#[test]
fn unix_round_trip_arch3_with_wal_flush() {
    let world = SimWorld::counting();
    let handle = ServeHandle::new(S3SimpleDbSqs::new(&world, "net-1"));
    let path = unique_socket_path("arch3");
    let server = Server::bind_unix(handle, &path, 2).unwrap();
    let mut client = Client::connect_unix(&path).unwrap();

    client.record(&flush("wal.dat", 3, None)).unwrap();
    // Logged but uncommitted: the verified read must fail structurally.
    let err = client.read("wal.dat").unwrap_err();
    assert_eq!(err.fault().map(|f| f.code), Some(FaultCode::NotFound));
    client.flush().unwrap();
    assert!(client.read("wal.dat").unwrap().consistent());

    server.shutdown();
    assert!(!path.exists(), "shutdown removes the socket file");
}

#[test]
fn store_errors_are_structured_and_nonfatal() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 1).unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    let err = client.read("never-written.dat").unwrap_err();
    let fault = err.fault().expect("remote fault");
    assert_eq!(fault.code, FaultCode::NotFound);
    assert!(fault.message.contains("never-written.dat"));

    // Same connection keeps serving.
    client.record(&flush("ok.dat", 1, None)).unwrap();
    assert!(client.read("ok.dat").unwrap().consistent());
    server.shutdown();
}

#[test]
fn garbage_command_tag_gets_structured_error_and_connection_survives() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 1).unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    let reply = client.raw_round_trip(&[0x42, 1, 2, 3]).unwrap();
    let Reply::Err(fault) = reply else {
        panic!("expected error reply, got {reply:?}");
    };
    assert_eq!(fault.code, FaultCode::BadCommand);
    assert!(fault.message.contains("0x42"));

    // Still in sync: a well-formed command on the same stream works.
    client.record(&flush("after-garbage.dat", 1, None)).unwrap();
    server.shutdown();
}

#[test]
fn zero_length_frame_gets_bad_frame_error_and_connection_survives() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 1).unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    // A zero length prefix, written raw (write_frame refuses to).
    client.stream_mut().write_all(&0u32.to_be_bytes()).unwrap();
    let reply = client
        .raw_round_trip(&frontend::encode_command(&Command::Flush))
        .unwrap();
    let Reply::Err(fault) = reply else {
        panic!("expected error reply, got {reply:?}");
    };
    assert_eq!(fault.code, FaultCode::BadFrame);

    // The flush command that followed the bad frame is answered next.
    let reply = {
        use frontend::read_frame;
        let payload = read_frame(client.stream_mut()).unwrap().unwrap();
        frontend::decode_reply(&payload).unwrap()
    };
    assert_eq!(reply, Reply::Unit);
    server.shutdown();
}

#[test]
fn oversized_frame_gets_structured_error_then_close() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 1).unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    let huge = (MAX_FRAME as u32) + 1;
    client.stream_mut().write_all(&huge.to_be_bytes()).unwrap();
    let payload = frontend::read_frame(client.stream_mut()).unwrap().unwrap();
    let Reply::Err(fault) = frontend::decode_reply(&payload).unwrap() else {
        panic!("expected error reply");
    };
    assert_eq!(fault.code, FaultCode::FrameTooLarge);
    // Then the server closes its end.
    assert!(frontend::read_frame(client.stream_mut()).unwrap().is_none());

    // The pool is still up: a fresh connection serves.
    let mut client2 = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    client2.record(&flush("after-huge.dat", 1, None)).unwrap();
    server.shutdown();
}

#[test]
fn disconnect_mid_request_leaves_pool_serving() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 1).unwrap();
    let addr = server.tcp_addr().unwrap();

    // Half a length prefix, then hang up.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0x00, 0x01]).unwrap();
    }
    // A full prefix promising bytes that never come, then hang up.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&64u32.to_be_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    }

    // The single worker survived both and serves the next connection.
    let mut client = Client::connect_tcp(addr).unwrap();
    client.record(&flush("survivor.dat", 1, None)).unwrap();
    assert!(client.read("survivor.dat").unwrap().consistent());
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_store() {
    let handle = arch2_handle();
    let server = Server::bind_tcp(handle.clone(), "127.0.0.1:0", 4).unwrap();
    let addr = server.tcp_addr().unwrap();

    // Seed a few objects through one client.
    let mut seeder = Client::connect_tcp(addr).unwrap();
    for i in 0..8u64 {
        seeder
            .record(&flush(&format!("c{i}.dat"), i, None))
            .unwrap();
    }

    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                for i in 0..8u64 {
                    let outcome = client.read(&format!("c{i}.dat")).unwrap();
                    assert!(outcome.consistent());
                }
            })
        })
        .collect();
    for reader in readers {
        reader.join().unwrap();
    }

    // The server-side handle observed every request.
    assert!(handle.requests() >= 8 + 4 * 8);
    server.shutdown();
}

#[test]
fn networked_store_fingerprint_matches_in_process_run() {
    // In-process reference run.
    let reference = arch2_handle();
    for i in 0..6u64 {
        let parent = (i > 0).then(|| format!("f{}.dat", i - 1));
        reference
            .record(&flush(&format!("f{i}.dat"), i, parent.as_deref()))
            .unwrap();
    }
    reference.flush().unwrap();

    // The same workload over the wire.
    let served = arch2_handle();
    let path = unique_socket_path("fp");
    let server = Server::bind_unix(served.clone(), &path, 2).unwrap();
    let mut client = Client::connect_unix(&path).unwrap();
    for i in 0..6u64 {
        let parent = (i > 0).then(|| format!("f{}.dat", i - 1));
        client
            .record(&flush(&format!("f{i}.dat"), i, parent.as_deref()))
            .unwrap();
    }
    client.flush().unwrap();
    let stats = client.stats().unwrap();
    server.shutdown();

    assert_eq!(stats.fingerprint, reference.fingerprint());
    assert_eq!(stats.fingerprint, served.fingerprint());
}

#[test]
fn client_reports_server_closing_mid_reply_as_transport_error() {
    let server = Server::bind_tcp(arch2_handle(), "127.0.0.1:0", 1).unwrap();
    let addr = server.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    client.record(&flush("x.dat", 1, None)).unwrap();
    server.shutdown();
    // The pool is gone; the next call fails with Io, not a panic or hang.
    let err = client.read("x.dat").unwrap_err();
    assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
}

//! Round-trip property tests on the wire codec: whatever structure the
//! encoder can produce, the decoder reconstructs exactly — and frames
//! survive arbitrary chunking of the byte stream.

use frontend::{
    decode_command, decode_reply, encode_command, encode_reply, read_frame, write_frame, Command,
    Reply, WireFault,
};
use frontend::{FaultCode, MAX_FRAME};
use pass::{FileFlush, ObjectKind, ObjectRef, ProvenanceRecord};
use proptest::prelude::*;
use provenance_cloud::{ProvQuery, QueryAnswer, QueryItem, ReadOutcome, ReadStatus, ServeStats};
use simworld::Blob;

/// Builds a flush from generated primitives. Records go through
/// `from_pair`, the same normalization the decoder applies, so
/// equality after a round trip is exact.
fn build_flush(
    name: &str,
    version: u32,
    process: bool,
    data: &[u8],
    pairs: &[(String, String)],
) -> FileFlush {
    FileFlush {
        object: ObjectRef::new(name.to_string(), version),
        kind: if process {
            ObjectKind::Process
        } else {
            ObjectKind::File
        },
        data: Blob::from_bytes(data.to_vec()),
        records: pairs
            .iter()
            .map(|(k, v)| ProvenanceRecord::from_pair(k, v))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_command_round_trips(
        name in "[a-z/._ -]{1,40}",
        version in 1u32..1000,
        process in 0u8..2,
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        keys in proptest::collection::vec("[a-z_]{1,12}", 0..8),
        values in proptest::collection::vec("[ -~]{0,64}", 0..8),
    ) {
        let pairs: Vec<(String, String)> = keys.into_iter().zip(values).collect();
        let flush = build_flush(&name, version, process == 1, &data, &pairs);
        // Normalize once more: from_pair may map a textual value onto a
        // reference representation whose render differs from the input;
        // one extra round trip reaches the fixed point the wire uses.
        let flush = build_flush(
            &name,
            version,
            process == 1,
            &data,
            &flush.records.iter().map(|r| r.to_pair()).collect::<Vec<_>>(),
        );
        let command = Command::Record(flush);
        prop_assert_eq!(decode_command(&encode_command(&command)).unwrap(), command);
    }

    #[test]
    fn query_and_read_commands_round_trip(
        name in "[a-zA-Z0-9/._-]{1,60}",
        version in 1u32..u32::MAX,
        which in 0u8..6,
    ) {
        let command = match which {
            0 => Command::Read(name),
            1 => Command::Query(ProvQuery::ProvenanceOfAll),
            2 => Command::Query(ProvQuery::ProvenanceOf { name, version }),
            3 => Command::Query(ProvQuery::OutputsOf { program: name }),
            4 => Command::Query(ProvQuery::DescendantsOf { program: name }),
            _ => Command::Stats,
        };
        prop_assert_eq!(decode_command(&encode_command(&command)).unwrap(), command);
    }

    #[test]
    fn replies_round_trip(
        name in "[a-z0-9/._-]{1,40}",
        version in 1u32..10_000,
        retries in 0u32..100,
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        which in 0u8..5,
        counters in proptest::collection::vec(any::<u64>(), 5..6),
        code in 1u8..9,
    ) {
        let records = vec![
            ProvenanceRecord::from_pair("input", &format!("{name}:{version}")),
            ProvenanceRecord::from_pair("type", "file"),
        ];
        let reply = match which {
            0 => Reply::Unit,
            1 => Reply::Read(ReadOutcome {
                object: ObjectRef::new(name, version),
                data: Blob::from_bytes(data),
                records,
                status: match retries % 4 {
                    0 => ReadStatus::AtomicUnit,
                    1 => ReadStatus::VerifiedConsistent { retries },
                    2 => ReadStatus::InconsistencyDetected { retries },
                    _ => ReadStatus::Unverified,
                },
            }),
            2 => Reply::Query(QueryAnswer {
                items: vec![QueryItem {
                    object: ObjectRef::new(name, version),
                    records,
                }],
            }),
            3 => Reply::Stats(ServeStats {
                architecture: name,
                requests: counters[0],
                store_ops: counters[1],
                bytes_in: counters[2],
                bytes_out: counters[3],
                fingerprint: counters[4],
            }),
            _ => Reply::Err(WireFault::new(
                FaultCode::from_u8(code).unwrap(),
                name,
            )),
        };
        prop_assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
    }

    #[test]
    fn frames_survive_arbitrary_stream_chunking(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        chunk in 1usize..64,
    ) {
        prop_assert!(payload.len() <= MAX_FRAME);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();

        // A reader that returns at most `chunk` bytes per read call —
        // TCP segmentation in miniature.
        struct Dribble<'a> { buf: &'a [u8], chunk: usize }
        impl std::io::Read for Dribble<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let n = self.chunk.min(out.len()).min(self.buf.len());
                out[..n].copy_from_slice(&self.buf[..n]);
                self.buf = &self.buf[n..];
                Ok(n)
            }
        }
        let mut reader = Dribble { buf: &wire, chunk };
        prop_assert_eq!(read_frame(&mut reader).unwrap().unwrap(), payload);
        prop_assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn decoder_never_panics_on_garbage(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Any byte soup either decodes or errors — no panic, no hang.
        let _ = decode_command(&payload);
        let _ = decode_reply(&payload);
    }
}

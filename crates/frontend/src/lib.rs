//! # prov-frontend — serving the provenance store over a socket
//!
//! The store so far has only ever been driven in-process. This crate
//! puts a network face on it: a length-prefixed binary protocol
//! (std::net only — no external dependencies) served over **TCP** and
//! **Unix-domain sockets** through one shared command layer.
//!
//! * [`codec`] — the wire format: frames, command/reply encodings,
//!   structured error replies.
//! * [`server`] — a fixed pool of connection-handler threads over a
//!   shared [`provenance_cloud::ServeHandle`]; reads and queries run
//!   concurrently against the store's per-shard locks.
//! * [`client`] — a blocking client speaking the same codec, generic
//!   over the stream type.
//!
//! ## Wire protocol
//!
//! Every message — command or reply — is one *frame*:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 BE | payload: `length` B |
//! +----------------+---------------------+
//! ```
//!
//! `length` counts the payload only, must be ≥ 1 (the tag byte) and at
//! most [`codec::MAX_FRAME`]. The payload's first byte is a tag; the
//! rest is the tag-specific body. Integers are big-endian; strings are
//! `u32` length + UTF-8 bytes; blobs are `u64` length + raw bytes.
//!
//! Command tags: `0x01` Record, `0x02` RecordBatch, `0x03` Flush,
//! `0x04` Read, `0x05` Query, `0x06` Stats. Reply tags: `0x80` Unit,
//! `0x81` Read, `0x82` Query, `0x83` Stats, `0x7F` Error (code byte +
//! message). See [`codec`] for the full layouts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod server;

pub use client::{Client, ClientError};
pub use codec::{
    decode_command, decode_reply, encode_command, encode_reply, read_frame, write_frame, Command,
    DecodeError, FaultCode, FrameError, Reply, WireFault, MAX_FRAME,
};
pub use server::{Endpoint, Server};

//! A blocking client for the wire protocol, generic over the stream.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use pass::FileFlush;
use provenance_cloud::{ProvQuery, QueryAnswer, ReadOutcome, ServeStats};

use crate::codec::{
    decode_reply, encode_command, read_frame, write_frame, Command, FrameError, Reply, WireFault,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including the server closing mid-reply).
    Io(io::Error),
    /// The server answered with a structured fault.
    Remote(WireFault),
    /// The server answered with bytes this client could not interpret,
    /// or a reply of the wrong shape for the command.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Remote(fault) => write!(f, "server fault: {fault}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured fault, when the failure was a server-side error
    /// reply.
    pub fn fault(&self) -> Option<&WireFault> {
        match self {
            ClientError::Remote(fault) => Some(fault),
            _ => None,
        }
    }
}

/// A blocking protocol client over any bidirectional stream.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client<UnixStream>> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn over(stream: S) -> Client<S> {
        Client { stream }
    }

    /// One request/reply round trip.
    fn call(&mut self, command: &Command) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, &encode_command(command))?;
        let payload = match read_frame(&mut self.stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before replying",
                )))
            }
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        };
        match decode_reply(&payload).map_err(|e| ClientError::Protocol(e.to_string()))? {
            Reply::Err(fault) => Err(ClientError::Remote(fault)),
            reply => Ok(reply),
        }
    }

    /// Persists one flush.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a server-side fault.
    pub fn record(&mut self, flush: &FileFlush) -> Result<(), ClientError> {
        match self.call(&Command::Record(flush.clone()))? {
            Reply::Unit => Ok(()),
            other => Err(unexpected("Record", &other)),
        }
    }

    /// Persists a group of flushes through the batched path.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a server-side fault.
    pub fn record_batch(&mut self, flushes: &[FileFlush]) -> Result<(), ClientError> {
        match self.call(&Command::RecordBatch(flushes.to_vec()))? {
            Reply::Unit => Ok(()),
            other => Err(unexpected("RecordBatch", &other)),
        }
    }

    /// Drives the store's daemons until quiescent.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a server-side fault.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.call(&Command::Flush)? {
            Reply::Unit => Ok(()),
            other => Err(unexpected("Flush", &other)),
        }
    }

    /// Verified read of `name`'s current version.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a server-side fault
    /// (`NotFound` included).
    pub fn read(&mut self, name: &str) -> Result<ReadOutcome, ClientError> {
        match self.call(&Command::Read(name.to_string()))? {
            Reply::Read(outcome) => Ok(outcome),
            other => Err(unexpected("Read", &other)),
        }
    }

    /// Runs a provenance query.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a server-side fault.
    pub fn query(&mut self, query: &ProvQuery) -> Result<QueryAnswer, ClientError> {
        match self.call(&Command::Query(query.clone()))? {
            Reply::Query(answer) => Ok(answer),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Fetches counters, meters, and the state fingerprint.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a server-side fault.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.call(&Command::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Sends raw bytes as one frame and reads one reply frame back —
    /// the adversarial-test hook for speaking the protocol badly on
    /// purpose.
    ///
    /// # Errors
    ///
    /// [`ClientError`] as for typed calls.
    pub fn raw_round_trip(&mut self, payload: &[u8]) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, payload)?;
        let reply = match read_frame(&mut self.stream) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before replying",
                )))
            }
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        };
        decode_reply(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// The underlying stream, for tests that need to mangle the
    /// transport (half-written frames, abrupt shutdowns).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}

fn unexpected(command: &str, reply: &Reply) -> ClientError {
    ClientError::Protocol(format!("{command} answered with {reply:?}"))
}

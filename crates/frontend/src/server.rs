//! The serving loop: a fixed pool of connection-handler threads over a
//! shared [`ServeHandle`].
//!
//! Every worker thread blocks in `accept` on its own clone of the
//! listener and handles one connection at a time, so up to `threads`
//! connections are served concurrently; reads and queries go straight
//! through the handle's `&self` path and contend only on the store's
//! per-shard locks, while record/flush serialize on the handle's
//! writer mutex — the same semantics an in-process driver gets.
//!
//! Fault handling per connection:
//!
//! * store errors → structured [`Reply::Err`]; the connection stays up;
//! * undecodable command / zero-length frame → structured error reply;
//!   the stream is still in sync, so the connection stays up;
//! * oversized length prefix → structured error reply, then the
//!   connection closes (the payload was never consumed, so the stream
//!   cannot resync);
//! * truncated frame or transport error → the connection drops.
//!
//! A dying connection never takes a worker with it: the worker loops
//! back into `accept`. The pool only exits on [`Server::shutdown`].

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use provenance_cloud::ServeHandle;

use crate::codec::{
    decode_command, encode_reply, read_frame, write_frame, Command, FaultCode, FrameError, Reply,
    WireFault,
};

/// Where a running server is listening.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP socket address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

enum Acceptor {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn force_close(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            Conn::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Acceptor {
    fn try_clone(&self) -> io::Result<Acceptor> {
        Ok(match self {
            Acceptor::Tcp(l) => Acceptor::Tcp(l.try_clone()?),
            Acceptor::Unix(l) => Acceptor::Unix(l.try_clone()?),
        })
    }

    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Acceptor::Tcp(l) => Conn::Tcp(l.accept()?.0),
            Acceptor::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }
}

/// Live connections, indexed so [`Server::shutdown`] can force-close
/// them and unblock workers parked in a read.
#[derive(Default)]
struct Registry {
    next: AtomicU64,
    live: Mutex<HashMap<u64, Conn>>,
}

impl Registry {
    fn insert(&self, conn: &Conn) -> Option<u64> {
        let clone = conn.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.live.lock().expect("registry lock").insert(id, clone);
        Some(id)
    }

    fn remove(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.live.lock().expect("registry lock").remove(&id);
        }
    }

    fn close_all(&self) {
        for conn in self.live.lock().expect("registry lock").values() {
            conn.force_close();
        }
    }
}

/// A running frontend: a listener plus its pool of handler threads.
/// Dropping without [`Server::shutdown`] leaks the (daemon-like)
/// threads until process exit; tests and the loadgen always shut down.
#[derive(Debug)]
pub struct Server {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Server {
    /// Binds a TCP server on `addr` (use port 0 for an ephemeral port)
    /// serving `handle` with `threads` handler threads.
    ///
    /// # Errors
    ///
    /// Socket bind/clone errors.
    pub fn bind_tcp(handle: ServeHandle, addr: &str, threads: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let endpoint = Endpoint::Tcp(listener.local_addr()?);
        Server::start(handle, Acceptor::Tcp(listener), endpoint, threads)
    }

    /// Binds a Unix-domain-socket server on `path` (a stale socket file
    /// from a previous run is removed first).
    ///
    /// # Errors
    ///
    /// Socket bind/clone errors.
    pub fn bind_unix(
        handle: ServeHandle,
        path: impl AsRef<Path>,
        threads: usize,
    ) -> io::Result<Server> {
        let path = path.as_ref();
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        let endpoint = Endpoint::Unix(path.to_path_buf());
        Server::start(handle, Acceptor::Unix(listener), endpoint, threads)
    }

    fn start(
        handle: ServeHandle,
        acceptor: Acceptor,
        endpoint: Endpoint,
        threads: usize,
    ) -> io::Result<Server> {
        assert!(threads >= 1, "a server needs at least one worker");
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::default());
        let mut workers = Vec::with_capacity(threads);
        for worker in 0..threads {
            let acceptor = acceptor.try_clone()?;
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("prov-serve-{worker}"))
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            let Ok(conn) = acceptor.accept() else {
                                continue;
                            };
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let id = registry.insert(&conn);
                            serve_connection(&handle, conn);
                            registry.remove(id);
                        }
                    })?,
            );
        }
        Ok(Server {
            endpoint,
            stop,
            registry,
            workers,
        })
    }

    /// Where the server is listening.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The bound TCP address, if this is a TCP server.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            Endpoint::Tcp(addr) => Some(*addr),
            Endpoint::Unix(_) => None,
        }
    }

    /// The bound socket path, if this is a Unix server.
    pub fn unix_path(&self) -> Option<&Path> {
        match &self.endpoint {
            Endpoint::Tcp(_) => None,
            Endpoint::Unix(path) => Some(path),
        }
    }

    /// Stops accepting, force-closes live connections, wakes every
    /// worker, and joins the pool. In-flight requests race the close:
    /// one being written when the socket dies is simply dropped with
    /// the connection.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock workers parked in a read on an open connection.
        self.registry.close_all();
        // Unblock workers parked in accept: one self-connection per
        // worker wakes them all to observe the flag.
        for _ in &self.workers {
            match &self.endpoint {
                Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
                Endpoint::Unix(path) => drop(UnixStream::connect(path)),
            }
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Runs one connection to completion. Never panics outward; never
/// takes down the worker.
fn serve_connection(handle: &ServeHandle, mut conn: Conn) {
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(Some(payload)) => payload,
            // Clean close between frames.
            Ok(None) => return,
            // In sync (the zero-length prefix was fully consumed):
            // answer and keep serving.
            Err(FrameError::Empty) => {
                let fault = WireFault::new(FaultCode::BadFrame, "zero-length frame");
                if reply_to(&mut conn, &Reply::Err(fault)).is_err() {
                    return;
                }
                continue;
            }
            // The announced payload was never consumed — no way to
            // resync. Say why, then drop the connection.
            Err(e @ FrameError::TooLarge(_)) => {
                let fault = WireFault::new(FaultCode::FrameTooLarge, e.to_string());
                let _ = reply_to(&mut conn, &Reply::Err(fault));
                return;
            }
            // Peer died mid-frame or the transport failed: drop.
            Err(FrameError::Truncated | FrameError::Io(_)) => return,
        };
        let reply = match decode_command(&payload) {
            Ok(command) => execute(handle, &command),
            Err(e) => Reply::Err(WireFault::new(FaultCode::BadCommand, e.to_string())),
        };
        if reply_to(&mut conn, &reply).is_err() {
            return;
        }
    }
}

fn reply_to(conn: &mut Conn, reply: &Reply) -> io::Result<()> {
    write_frame(conn, &encode_reply(reply))
}

/// Executes one decoded command against the handle, mapping store
/// errors to structured faults.
fn execute(handle: &ServeHandle, command: &Command) -> Reply {
    let result = match command {
        Command::Record(flush) => handle.record(flush).map(|()| Reply::Unit),
        Command::RecordBatch(flushes) => handle.record_batch(flushes).map(|()| Reply::Unit),
        Command::Flush => handle.flush().map(|()| Reply::Unit),
        Command::Read(name) => handle.read(name).map(Reply::Read),
        Command::Query(query) => handle.query(query).map(Reply::Query),
        Command::Stats => Ok(Reply::Stats(handle.stats())),
    };
    result.unwrap_or_else(|e| Reply::Err(WireFault::from(&e)))
}

//! The wire format: length-prefixed frames carrying tagged commands and
//! replies.
//!
//! The codec is deliberately dependency-free and explicit: big-endian
//! fixed-width integers, `u32`-prefixed UTF-8 strings, `u64`-prefixed
//! raw blobs. Provenance records travel as the same `(attribute,
//! value)` pairs the store persists
//! ([`ProvenanceRecord::to_pair`]/[`ProvenanceRecord::from_pair`]), so
//! the network format and the storage format cannot drift apart.

use std::fmt;
use std::io::{self, Read, Write};

use pass::{FileFlush, ObjectKind, ObjectRef, ProvenanceRecord};
use provenance_cloud::{
    CloudError, ProvQuery, QueryAnswer, QueryItem, ReadOutcome, ReadStatus, ServeStats,
};
use simworld::Blob;

/// Hard cap on a frame's payload length: 8 MiB. Generous against the
/// store's own limits (a 1 KB record overflows to S3; SimpleDB items
/// cap at 256 pairs), tight enough that a hostile length prefix cannot
/// make the server allocate unboundedly.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Command tag: persist one flush.
pub const CMD_RECORD: u8 = 0x01;
/// Command tag: persist a group of flushes through the batched path.
pub const CMD_RECORD_BATCH: u8 = 0x02;
/// Command tag: drive background daemons until quiescent.
pub const CMD_FLUSH: u8 = 0x03;
/// Command tag: verified read of one object.
pub const CMD_READ: u8 = 0x04;
/// Command tag: provenance query (Q1–Q3).
pub const CMD_QUERY: u8 = 0x05;
/// Command tag: counters, meters, and the state fingerprint.
pub const CMD_STATS: u8 = 0x06;

/// Reply tag: success, no body.
pub const REP_UNIT: u8 = 0x80;
/// Reply tag: a [`ReadOutcome`].
pub const REP_READ: u8 = 0x81;
/// Reply tag: a [`QueryAnswer`].
pub const REP_QUERY: u8 = 0x82;
/// Reply tag: a [`ServeStats`].
pub const REP_STATS: u8 = 0x83;
/// Reply tag: structured error (code byte + message string).
pub const REP_ERR: u8 = 0x7F;

/// A request to the serving store.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Persist one object version and its provenance.
    Record(FileFlush),
    /// Persist a group through the store's batched path.
    RecordBatch(Vec<FileFlush>),
    /// Drive daemons until quiescent (arch3's commit daemon).
    Flush,
    /// Verified read of the named object's current version.
    Read(String),
    /// A provenance query.
    Query(ProvQuery),
    /// Counter/meter snapshot plus the state fingerprint.
    Stats,
}

/// A response from the serving store.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The command succeeded and has no result body.
    Unit,
    /// Result of [`Command::Read`].
    Read(ReadOutcome),
    /// Result of [`Command::Query`].
    Query(QueryAnswer),
    /// Result of [`Command::Stats`].
    Stats(ServeStats),
    /// The command failed; the fault says how.
    Err(WireFault),
}

/// Structured error classes carried in error replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultCode {
    /// The requested object is not stored.
    NotFound = 1,
    /// Stored state failed to decode.
    Corrupt = 2,
    /// A retry budget was spent without the error clearing.
    RetryExhausted = 3,
    /// A simulated crash fired mid-protocol.
    Crashed = 4,
    /// A backend service call failed (S3 / SimpleDB / SQS).
    Service = 5,
    /// The frame itself was malformed (zero length, short payload).
    BadFrame = 6,
    /// The payload carried an unknown or undecodable command.
    BadCommand = 7,
    /// The announced frame length exceeded [`MAX_FRAME`].
    FrameTooLarge = 8,
}

impl FaultCode {
    /// Parses a code byte.
    pub fn from_u8(code: u8) -> Option<FaultCode> {
        Some(match code {
            1 => FaultCode::NotFound,
            2 => FaultCode::Corrupt,
            3 => FaultCode::RetryExhausted,
            4 => FaultCode::Crashed,
            5 => FaultCode::Service,
            6 => FaultCode::BadFrame,
            7 => FaultCode::BadCommand,
            8 => FaultCode::FrameTooLarge,
            _ => return None,
        })
    }
}

/// A structured error reply: class plus human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Error class.
    pub code: FaultCode,
    /// Rendered detail (the server's `CloudError` display, or a frame
    /// diagnosis).
    pub message: String,
}

impl WireFault {
    /// Builds a fault.
    pub fn new(code: FaultCode, message: impl Into<String>) -> WireFault {
        WireFault {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl From<&CloudError> for WireFault {
    fn from(e: &CloudError) -> WireFault {
        let code = match e {
            CloudError::NotFound { .. } => FaultCode::NotFound,
            CloudError::Corrupt { .. } => FaultCode::Corrupt,
            CloudError::RetryExhausted { .. } => FaultCode::RetryExhausted,
            CloudError::Crashed(_) => FaultCode::Crashed,
            CloudError::S3(_) | CloudError::SimpleDb(_) | CloudError::Sqs(_) => FaultCode::Service,
        };
        WireFault::new(code, e.to_string())
    }
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the announced structure did.
    UnexpectedEnd,
    /// An unknown tag byte for the given kind of structure.
    BadTag {
        /// What was being decoded ("command", "reply", "query", ...).
        kind: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the structure was fully decoded.
    Trailing,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("payload truncated"),
            DecodeError::BadTag { kind, tag } => write!(f, "unknown {kind} tag 0x{tag:02x}"),
            DecodeError::BadUtf8 => f.write_str("string field not UTF-8"),
            DecodeError::Trailing => f.write_str("trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// Transport error.
    Io(io::Error),
    /// The stream ended mid-prefix or mid-payload.
    Truncated,
    /// The length prefix announced zero payload bytes (every payload
    /// carries at least a tag). The stream is still in sync — the
    /// server answers with a [`FaultCode::BadFrame`] and carries on.
    Empty,
    /// The length prefix exceeded [`MAX_FRAME`]. The payload is not
    /// consumed, so the connection cannot resync and must close.
    TooLarge(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::Truncated => f.write_str("stream ended mid-frame"),
            FrameError::Empty => f.write_str("zero-length frame"),
            FrameError::TooLarge(len) => write!(f, "frame of {len} bytes exceeds {MAX_FRAME}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

// ---- frame transport ----------------------------------------------------

/// Writes one frame: `u32` big-endian payload length, then the payload.
///
/// # Errors
///
/// Transport errors from `w`.
///
/// # Panics
///
/// If `payload` is empty or longer than [`MAX_FRAME`] — encoders in
/// this module never produce either.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME,
        "frame payload out of bounds"
    );
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` is a clean end of stream (the
/// peer closed between frames); ending anywhere *inside* a frame is
/// [`FrameError::Truncated`].
///
/// # Errors
///
/// [`FrameError`] as described on its variants.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len as usize > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(e.into()),
    }
}

// ---- primitive encoders --------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, blob: &Blob) {
    let bytes = blob.to_bytes();
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(&bytes);
}

fn put_records(out: &mut Vec<u8>, records: &[ProvenanceRecord]) {
    put_u32(out, records.len() as u32);
    for record in records {
        let (name, value) = record.to_pair();
        put_str(out, &name);
        put_str(out, &value);
    }
}

fn put_flush(out: &mut Vec<u8>, flush: &FileFlush) {
    put_str(out, &flush.object.name);
    put_u32(out, flush.object.version);
    out.push(match flush.kind {
        ObjectKind::File => 0,
        ObjectKind::Process => 1,
    });
    put_blob(out, &flush.data);
    put_records(out, &flush.records);
}

// ---- primitive decoders --------------------------------------------------

struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn blob(&mut self) -> Result<Blob, DecodeError> {
        let len = self.u64()? as usize;
        Ok(Blob::from_bytes(self.take(len)?.to_vec()))
    }

    fn records(&mut self) -> Result<Vec<ProvenanceRecord>, DecodeError> {
        let count = self.u32()? as usize;
        let mut records = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name = self.str()?;
            let value = self.str()?;
            records.push(ProvenanceRecord::from_pair(&name, &value));
        }
        Ok(records)
    }

    fn flush(&mut self) -> Result<FileFlush, DecodeError> {
        let name = self.str()?;
        let version = self.u32()?;
        let kind = match self.u8()? {
            0 => ObjectKind::File,
            1 => ObjectKind::Process,
            tag => return Err(DecodeError::BadTag { kind: "kind", tag }),
        };
        let data = self.blob()?;
        let records = self.records()?;
        Ok(FileFlush {
            object: ObjectRef::new(name, version),
            kind,
            data,
            records,
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Trailing)
        }
    }
}

// ---- commands ------------------------------------------------------------

fn put_query(out: &mut Vec<u8>, query: &ProvQuery) {
    match query {
        ProvQuery::ProvenanceOfAll => out.push(0),
        ProvQuery::ProvenanceOf { name, version } => {
            out.push(1);
            put_str(out, name);
            put_u32(out, *version);
        }
        ProvQuery::OutputsOf { program } => {
            out.push(2);
            put_str(out, program);
        }
        ProvQuery::DescendantsOf { program } => {
            out.push(3);
            put_str(out, program);
        }
    }
}

fn get_query(cur: &mut Cur<'_>) -> Result<ProvQuery, DecodeError> {
    Ok(match cur.u8()? {
        0 => ProvQuery::ProvenanceOfAll,
        1 => ProvQuery::ProvenanceOf {
            name: cur.str()?,
            version: cur.u32()?,
        },
        2 => ProvQuery::OutputsOf {
            program: cur.str()?,
        },
        3 => ProvQuery::DescendantsOf {
            program: cur.str()?,
        },
        tag => return Err(DecodeError::BadTag { kind: "query", tag }),
    })
}

/// Encodes a command into a frame payload (tag byte + body).
pub fn encode_command(command: &Command) -> Vec<u8> {
    let mut out = Vec::new();
    match command {
        Command::Record(flush) => {
            out.push(CMD_RECORD);
            put_flush(&mut out, flush);
        }
        Command::RecordBatch(flushes) => {
            out.push(CMD_RECORD_BATCH);
            put_u32(&mut out, flushes.len() as u32);
            for flush in flushes {
                put_flush(&mut out, flush);
            }
        }
        Command::Flush => out.push(CMD_FLUSH),
        Command::Read(name) => {
            out.push(CMD_READ);
            put_str(&mut out, name);
        }
        Command::Query(query) => {
            out.push(CMD_QUERY);
            put_query(&mut out, query);
        }
        Command::Stats => out.push(CMD_STATS),
    }
    out
}

/// Decodes a frame payload as a command.
///
/// # Errors
///
/// [`DecodeError`] on an unknown tag or malformed body.
pub fn decode_command(payload: &[u8]) -> Result<Command, DecodeError> {
    let mut cur = Cur { buf: payload };
    let command = match cur.u8()? {
        CMD_RECORD => Command::Record(cur.flush()?),
        CMD_RECORD_BATCH => {
            let count = cur.u32()? as usize;
            let mut flushes = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                flushes.push(cur.flush()?);
            }
            Command::RecordBatch(flushes)
        }
        CMD_FLUSH => Command::Flush,
        CMD_READ => Command::Read(cur.str()?),
        CMD_QUERY => Command::Query(get_query(&mut cur)?),
        CMD_STATS => Command::Stats,
        tag => {
            return Err(DecodeError::BadTag {
                kind: "command",
                tag,
            })
        }
    };
    cur.finish()?;
    Ok(command)
}

// ---- replies -------------------------------------------------------------

fn put_status(out: &mut Vec<u8>, status: ReadStatus) {
    match status {
        ReadStatus::AtomicUnit => out.push(0),
        ReadStatus::VerifiedConsistent { retries } => {
            out.push(1);
            put_u32(out, retries);
        }
        ReadStatus::InconsistencyDetected { retries } => {
            out.push(2);
            put_u32(out, retries);
        }
        ReadStatus::Unverified => out.push(3),
    }
}

fn get_status(cur: &mut Cur<'_>) -> Result<ReadStatus, DecodeError> {
    Ok(match cur.u8()? {
        0 => ReadStatus::AtomicUnit,
        1 => ReadStatus::VerifiedConsistent {
            retries: cur.u32()?,
        },
        2 => ReadStatus::InconsistencyDetected {
            retries: cur.u32()?,
        },
        3 => ReadStatus::Unverified,
        tag => {
            return Err(DecodeError::BadTag {
                kind: "status",
                tag,
            })
        }
    })
}

/// Encodes a reply into a frame payload (tag byte + body).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        Reply::Unit => out.push(REP_UNIT),
        Reply::Read(outcome) => {
            out.push(REP_READ);
            put_str(&mut out, &outcome.object.name);
            put_u32(&mut out, outcome.object.version);
            put_blob(&mut out, &outcome.data);
            put_records(&mut out, &outcome.records);
            put_status(&mut out, outcome.status);
        }
        Reply::Query(answer) => {
            out.push(REP_QUERY);
            put_u32(&mut out, answer.items.len() as u32);
            for item in &answer.items {
                put_str(&mut out, &item.object.name);
                put_u32(&mut out, item.object.version);
                put_records(&mut out, &item.records);
            }
        }
        Reply::Stats(stats) => {
            out.push(REP_STATS);
            put_str(&mut out, &stats.architecture);
            put_u64(&mut out, stats.requests);
            put_u64(&mut out, stats.store_ops);
            put_u64(&mut out, stats.bytes_in);
            put_u64(&mut out, stats.bytes_out);
            put_u64(&mut out, stats.fingerprint);
        }
        Reply::Err(fault) => {
            out.push(REP_ERR);
            out.push(fault.code as u8);
            put_str(&mut out, &fault.message);
        }
    }
    out
}

/// Decodes a frame payload as a reply.
///
/// # Errors
///
/// [`DecodeError`] on an unknown tag or malformed body.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, DecodeError> {
    let mut cur = Cur { buf: payload };
    let reply = match cur.u8()? {
        REP_UNIT => Reply::Unit,
        REP_READ => {
            let name = cur.str()?;
            let version = cur.u32()?;
            let data = cur.blob()?;
            let records = cur.records()?;
            let status = get_status(&mut cur)?;
            Reply::Read(ReadOutcome {
                object: ObjectRef::new(name, version),
                data,
                records,
                status,
            })
        }
        REP_QUERY => {
            let count = cur.u32()? as usize;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let name = cur.str()?;
                let version = cur.u32()?;
                let records = cur.records()?;
                items.push(QueryItem {
                    object: ObjectRef::new(name, version),
                    records,
                });
            }
            Reply::Query(QueryAnswer { items })
        }
        REP_STATS => Reply::Stats(ServeStats {
            architecture: cur.str()?,
            requests: cur.u64()?,
            store_ops: cur.u64()?,
            bytes_in: cur.u64()?,
            bytes_out: cur.u64()?,
            fingerprint: cur.u64()?,
        }),
        REP_ERR => {
            let code_byte = cur.u8()?;
            let code = FaultCode::from_u8(code_byte).ok_or(DecodeError::BadTag {
                kind: "fault code",
                tag: code_byte,
            })?;
            Reply::Err(WireFault {
                code,
                message: cur.str()?,
            })
        }
        tag => return Err(DecodeError::BadTag { kind: "reply", tag }),
    };
    cur.finish()?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flush() -> FileFlush {
        FileFlush::builder("dir/a.dat")
            .data(Blob::from("hello"))
            .record("input", "dir/b.dat:3")
            .record("env", "PATH=/bin")
            .build()
    }

    #[test]
    fn command_round_trips() {
        let commands = [
            Command::Record(sample_flush()),
            Command::RecordBatch(vec![sample_flush(), sample_flush()]),
            Command::Flush,
            Command::Read("dir/a.dat".into()),
            Command::Query(ProvQuery::ProvenanceOfAll),
            Command::Query(ProvQuery::ProvenanceOf {
                name: "x".into(),
                version: 7,
            }),
            Command::Query(ProvQuery::OutputsOf {
                program: "blastall".into(),
            }),
            Command::Query(ProvQuery::DescendantsOf {
                program: "blastall".into(),
            }),
            Command::Stats,
        ];
        for command in commands {
            let payload = encode_command(&command);
            assert_eq!(decode_command(&payload).unwrap(), command);
        }
    }

    #[test]
    fn reply_round_trips() {
        let replies = [
            Reply::Unit,
            Reply::Read(ReadOutcome {
                object: ObjectRef::new("a", 2),
                data: Blob::from("bytes"),
                records: sample_flush().records,
                status: ReadStatus::VerifiedConsistent { retries: 1 },
            }),
            Reply::Query(QueryAnswer {
                items: vec![QueryItem {
                    object: ObjectRef::new("b", 1),
                    records: vec![ProvenanceRecord::from_pair("type", "file")],
                }],
            }),
            Reply::Stats(ServeStats {
                architecture: "s3+simpledb".into(),
                requests: 9,
                store_ops: 100,
                bytes_in: 5,
                bytes_out: 6,
                fingerprint: 0xdead_beef,
            }),
            Reply::Err(WireFault::new(FaultCode::NotFound, "object not found: x")),
        ];
        for reply in replies {
            let payload = encode_reply(&reply);
            assert_eq!(decode_reply(&payload).unwrap(), reply);
        }
    }

    #[test]
    fn frame_round_trips_over_a_buffer() {
        let payload = encode_command(&Command::Flush);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &payload).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), payload);
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_prefix_and_payload_are_distinguished_from_eof() {
        // Two bytes of a four-byte prefix.
        let mut reader: &[u8] = &[0x00, 0x01];
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameError::Truncated)
        ));
        // Full prefix announcing 100 bytes, only 3 present.
        let mut wire = 100u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        let mut reader = wire.as_slice();
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn zero_and_oversized_lengths_are_structured_errors() {
        let mut reader: &[u8] = &0u32.to_be_bytes();
        assert!(matches!(read_frame(&mut reader), Err(FrameError::Empty)));
        let mut reader: &[u8] = &u32::MAX.to_be_bytes();
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn garbage_tags_and_trailing_bytes_are_rejected() {
        assert_eq!(
            decode_command(&[0x42]),
            Err(DecodeError::BadTag {
                kind: "command",
                tag: 0x42
            })
        );
        let mut payload = encode_command(&Command::Flush);
        payload.push(0xFF);
        assert_eq!(decode_command(&payload), Err(DecodeError::Trailing));
        assert_eq!(
            decode_command(&[CMD_READ, 0, 0]),
            Err(DecodeError::UnexpectedEnd)
        );
        assert!(matches!(
            decode_reply(&[REP_ERR, 99, 0, 0, 0, 0]),
            Err(DecodeError::BadTag {
                kind: "fault code",
                ..
            })
        ));
    }

    #[test]
    fn fault_codes_map_cloud_errors() {
        let fault = WireFault::from(&CloudError::NotFound { name: "x".into() });
        assert_eq!(fault.code, FaultCode::NotFound);
        assert!(fault.message.contains('x'));
        let fault = WireFault::from(&CloudError::Corrupt {
            message: "bad".into(),
        });
        assert_eq!(fault.code, FaultCode::Corrupt);
        for code in 1..=8 {
            assert_eq!(FaultCode::from_u8(code).map(|c| c as u8), Some(code));
        }
        assert_eq!(FaultCode::from_u8(0), None);
        assert_eq!(FaultCode::from_u8(9), None);
    }
}

//! The SimpleDB service simulator.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simworld::{Op, Service, SimWorld};

use crate::error::{Result, SdbError};
use crate::model::{
    byte_size, pair_count, to_attributes, Attribute, ItemState, ReplaceableAttribute,
    ITEM_NAME_LIMIT, MAX_ATTRS_PER_CALL, MAX_DOMAINS, MAX_PAIRS_PER_ITEM,
};
use crate::query::QueryExpr;
use crate::select::{Output, SelectStatement};
use simworld::EcMap;

/// Default page size for `Query`/`QueryWithAttributes`.
pub const QUERY_DEFAULT_PAGE: usize = 100;

/// Maximum page size for `Query`/`QueryWithAttributes`.
pub const QUERY_MAX_PAGE: usize = 250;

/// Approximate fixed response overhead per returned item name.
const ITEM_ENTRY_OVERHEAD: u64 = 32;

/// One attribute to remove in a `DeleteAttributes` call.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DeletableAttribute {
    /// Attribute name.
    pub name: String,
    /// `Some(v)`: delete only the pair `(name, v)`;
    /// `None`: delete every value of `name`.
    pub value: Option<String>,
}

impl DeletableAttribute {
    /// Deletes every value of `name`.
    pub fn all_of(name: impl Into<String>) -> DeletableAttribute {
        DeletableAttribute {
            name: name.into(),
            value: None,
        }
    }

    /// Deletes one `(name, value)` pair.
    pub fn pair(name: impl Into<String>, value: impl Into<String>) -> DeletableAttribute {
        DeletableAttribute {
            name: name.into(),
            value: Some(value.into()),
        }
    }
}

/// Result of `Query`: item names only.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QueryResult {
    /// Matching item names, in item-name order unless the expression
    /// carried a `sort`.
    pub item_names: Vec<String>,
    /// Present when more results remain; feed back in to continue.
    pub next_token: Option<String>,
}

/// One item of a `QueryWithAttributes`/`Select` response.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResultItem {
    /// Item name.
    pub name: String,
    /// The item's attributes (possibly filtered/projected).
    pub attributes: Vec<Attribute>,
}

/// Result of `QueryWithAttributes`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QueryWithAttributesResult {
    /// Matching items with their attributes.
    pub items: Vec<ResultItem>,
    /// Present when more results remain.
    pub next_token: Option<String>,
}

/// Result of `Select`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SelectResult {
    /// Matching items (empty for `count(*)`).
    pub items: Vec<ResultItem>,
    /// Populated for `select count(*)`.
    pub count: Option<u64>,
    /// Present when more results remain.
    pub next_token: Option<String>,
}

#[derive(Default)]
struct Inner {
    domains: BTreeMap<String, EcMap<String, ItemState>>,
}

/// The simulated SimpleDB service.
///
/// Clones share one backing store. Every call is metered and advances the
/// virtual clock; reads and queries observe a sampled replica and may be
/// stale under eventual consistency — exactly the §2.2 behaviour ("an
/// item inserted might not be returned in a query that is run immediately
/// after the insert").
///
/// # Examples
///
/// ```
/// use sim_simpledb::{ReplaceableAttribute, SimpleDb};
/// use simworld::SimWorld;
///
/// let world = SimWorld::counting();
/// let db = SimpleDb::new(&world);
/// db.create_domain("prov")?;
/// db.put_attributes("prov", "foo_2", &[
///     ReplaceableAttribute::add("input", "bar:2"),
///     ReplaceableAttribute::add("type", "file"),
/// ])?;
/// let names = db.query("prov", Some("['type' = 'file']"), None, None)?;
/// assert_eq!(names.item_names, vec!["foo_2"]);
/// # Ok::<(), sim_simpledb::SdbError>(())
/// ```
#[derive(Clone)]
pub struct SimpleDb {
    world: SimWorld,
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for SimpleDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SimpleDb")
            .field("domains", &inner.domains.len())
            .finish_non_exhaustive()
    }
}

impl SimpleDb {
    /// Connects a new simulated SimpleDB endpoint to `world`.
    pub fn new(world: &SimWorld) -> SimpleDb {
        SimpleDb {
            world: world.clone(),
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Creates a domain. Idempotent, as in the real service.
    ///
    /// # Errors
    ///
    /// [`SdbError::TooManyDomains`] past the account limit.
    pub fn create_domain(&self, domain: impl Into<String>) -> Result<()> {
        let domain = domain.into();
        let mut inner = self.inner.lock();
        self.world
            .record_op(Op::SdbCreateDomain, domain.len() as u64, 0);
        if inner.domains.contains_key(&domain) {
            return Ok(());
        }
        if inner.domains.len() >= MAX_DOMAINS {
            return Err(SdbError::TooManyDomains { limit: MAX_DOMAINS });
        }
        inner.domains.insert(domain, EcMap::new());
        Ok(())
    }

    /// Lists domain names.
    pub fn list_domains(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let names: Vec<String> = inner.domains.keys().cloned().collect();
        let bytes: u64 = names.iter().map(|n| n.len() as u64).sum();
        self.world.record_op(Op::SdbListDomains, 0, bytes);
        names
    }

    /// Inserts or updates attributes of an item. Idempotent: re-running
    /// the same call converges to the same state (§2.2).
    ///
    /// # Errors
    ///
    /// Limit violations ([`SdbError::TooManyAttributesInCall`],
    /// [`SdbError::TooManyAttributesOnItem`], name/value/item length) and
    /// [`SdbError::NoSuchDomain`].
    pub fn put_attributes(
        &self,
        domain: &str,
        item_name: &str,
        attrs: &[ReplaceableAttribute],
    ) -> Result<()> {
        if attrs.is_empty() {
            return Err(SdbError::EmptyAttributeList);
        }
        if attrs.len() > MAX_ATTRS_PER_CALL {
            return Err(SdbError::TooManyAttributesInCall {
                submitted: attrs.len(),
            });
        }
        if item_name.len() > ITEM_NAME_LIMIT {
            return Err(SdbError::ItemNameTooLong {
                length: item_name.len(),
            });
        }
        for a in attrs {
            a.check_limits()?;
        }
        let mut inner = self.inner.lock();
        let map = domain_mut(&mut inner, domain)?;

        let mut item = map.read_latest(&item_name.to_string()).unwrap_or_default();
        let before_bytes = byte_size(&item);
        // Replacement drops all existing values of the name once per
        // call, before any values from this call are added.
        let mut replaced: Vec<&str> = Vec::new();
        for a in attrs {
            if a.replace && !replaced.contains(&a.name.as_str()) {
                item.remove(&a.name);
                replaced.push(&a.name);
            }
        }
        for a in attrs {
            item.entry(a.name.clone())
                .or_default()
                .insert(a.value.clone());
        }
        let pairs = pair_count(&item);
        if pairs > MAX_PAIRS_PER_ITEM {
            return Err(SdbError::TooManyAttributesOnItem {
                item: item_name.to_string(),
                pairs,
            });
        }
        let after_bytes = byte_size(&item);
        let bytes_in: u64 = attrs
            .iter()
            .map(|a| (a.name.len() + a.value.len()) as u64)
            .sum();
        self.world
            .record_op(Op::SdbPutAttributes, bytes_in + item_name.len() as u64, 0);
        self.world
            .adjust_stored(Service::SimpleDb, after_bytes as i64 - before_bytes as i64);
        map.write(&self.world, item_name.to_string(), Some(item));
        Ok(())
    }

    /// Reads an item's attributes, optionally filtered to a set of names.
    /// Served from a sampled replica; a freshly written item may be
    /// missing or stale. Absent items return an empty list, as in the
    /// real service.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`].
    pub fn get_attributes(
        &self,
        domain: &str,
        item_name: &str,
        names: Option<&[&str]>,
    ) -> Result<Vec<Attribute>> {
        let inner = self.inner.lock();
        let map = domain_ref(&inner, domain)?;
        let item = map
            .read(&self.world, &item_name.to_string())
            .unwrap_or_default();
        let mut attrs = to_attributes(&item);
        if let Some(filter) = names {
            attrs.retain(|a| filter.contains(&a.name.as_str()));
        }
        let bytes: u64 = attrs
            .iter()
            .map(|a| (a.name.len() + a.value.len()) as u64)
            .sum();
        self.world
            .record_op(Op::SdbGetAttributes, item_name.len() as u64, bytes);
        Ok(attrs)
    }

    /// Deletes attributes (or, with `attrs = None`, the entire item).
    /// Idempotent: deleting absent attributes or items succeeds (§2.2).
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`].
    pub fn delete_attributes(
        &self,
        domain: &str,
        item_name: &str,
        attrs: Option<&[DeletableAttribute]>,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        let map = domain_mut(&mut inner, domain)?;
        self.world
            .record_op(Op::SdbDeleteAttributes, item_name.len() as u64, 0);
        let Some(mut item) = map.read_latest(&item_name.to_string()) else {
            return Ok(());
        };
        let before_bytes = byte_size(&item);
        let new_state = match attrs {
            None => None,
            Some(specs) => {
                for spec in specs {
                    match &spec.value {
                        None => {
                            item.remove(&spec.name);
                        }
                        Some(v) => {
                            if let Some(values) = item.get_mut(&spec.name) {
                                values.remove(v);
                                if values.is_empty() {
                                    item.remove(&spec.name);
                                }
                            }
                        }
                    }
                }
                // An item with no attributes ceases to exist.
                if item.is_empty() {
                    None
                } else {
                    Some(item)
                }
            }
        };
        let after_bytes = new_state.as_ref().map(byte_size).unwrap_or(0);
        self.world
            .adjust_stored(Service::SimpleDb, after_bytes as i64 - before_bytes as i64);
        map.write(&self.world, item_name.to_string(), new_state);
        map.gc(self.world.now());
        Ok(())
    }

    /// `Query`: returns matching item names. `expression = None` matches
    /// every item. Results reflect one sampled replica.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`], [`SdbError::InvalidQuery`],
    /// [`SdbError::InvalidNextToken`].
    pub fn query(
        &self,
        domain: &str,
        expression: Option<&str>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<QueryResult> {
        let (rows, next) = self.run_query(domain, expression, max_items, next_token)?;
        let item_names: Vec<String> = rows.into_iter().map(|(n, _)| n).collect();
        let bytes: u64 = item_names
            .iter()
            .map(|n| n.len() as u64 + ITEM_ENTRY_OVERHEAD)
            .sum();
        self.world.record_op(
            Op::SdbQuery,
            expression.map(|e| e.len() as u64).unwrap_or(0),
            bytes,
        );
        Ok(QueryResult {
            item_names,
            next_token: next,
        })
    }

    /// `QueryWithAttributes`: matching items together with (optionally a
    /// subset of) their attributes.
    ///
    /// # Errors
    ///
    /// As [`SimpleDb::query`].
    pub fn query_with_attributes(
        &self,
        domain: &str,
        expression: Option<&str>,
        attribute_filter: Option<&[String]>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<QueryWithAttributesResult> {
        let (rows, next) = self.run_query(domain, expression, max_items, next_token)?;
        let items: Vec<ResultItem> = rows
            .into_iter()
            .map(|(name, state)| {
                let mut attributes = to_attributes(&state);
                if let Some(filter) = attribute_filter {
                    attributes.retain(|a| filter.contains(&a.name));
                }
                ResultItem { name, attributes }
            })
            .collect();
        let bytes: u64 = items
            .iter()
            .map(|i| {
                i.name.len() as u64
                    + ITEM_ENTRY_OVERHEAD
                    + i.attributes
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        self.world.record_op(
            Op::SdbQueryWithAttributes,
            expression.map(|e| e.len() as u64).unwrap_or(0),
            bytes,
        );
        Ok(QueryWithAttributesResult {
            items,
            next_token: next,
        })
    }

    /// `Select`: the SQL-form interface.
    ///
    /// # Errors
    ///
    /// As [`SimpleDb::query`]; the domain named in the statement must
    /// exist.
    pub fn select(&self, sql: &str, next_token: Option<&str>) -> Result<SelectResult> {
        let stmt = SelectStatement::parse(sql)?;
        let snapshot = {
            let inner = self.inner.lock();
            let map = domain_ref(&inner, &stmt.domain)?;
            map.visible_entries(&self.world)
        };
        let matched = stmt.apply(snapshot);

        if stmt.output == Output::Count {
            let count = matched.len().min(stmt.limit) as u64;
            self.world.record_op(Op::SdbSelect, sql.len() as u64, 16);
            return Ok(SelectResult {
                items: Vec::new(),
                count: Some(count),
                next_token: None,
            });
        }

        let offset = parse_token(next_token)?;
        let page: Vec<(String, ItemState)> = matched
            .iter()
            .skip(offset)
            .take(stmt.limit)
            .cloned()
            .collect();
        let consumed = offset + page.len();
        let next = if consumed < matched.len() {
            Some(consumed.to_string())
        } else {
            None
        };

        let items: Vec<ResultItem> = page
            .into_iter()
            .map(|(name, state)| {
                let attributes = match &stmt.output {
                    Output::ItemName => Vec::new(),
                    Output::All => to_attributes(&state),
                    Output::Attrs(list) => to_attributes(&state)
                        .into_iter()
                        .filter(|a| list.contains(&a.name))
                        .collect(),
                    Output::Count => unreachable!("count handled above"),
                };
                ResultItem { name, attributes }
            })
            .collect();
        let bytes: u64 = items
            .iter()
            .map(|i| {
                i.name.len() as u64
                    + ITEM_ENTRY_OVERHEAD
                    + i.attributes
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        self.world.record_op(Op::SdbSelect, sql.len() as u64, bytes);
        Ok(SelectResult {
            items,
            count: None,
            next_token: next,
        })
    }

    // --- authoritative (non-billed) views for invariant checks ---

    /// The newest committed attributes of an item, ignoring replication
    /// lag and without billing. For tests and property validators only.
    pub fn latest_item(&self, domain: &str, item_name: &str) -> Option<Vec<Attribute>> {
        let inner = self.inner.lock();
        let map = inner.domains.get(domain)?;
        map.read_latest(&item_name.to_string())
            .map(|s| to_attributes(&s))
    }

    /// Authoritative list of live item names, unbilled. For tests and
    /// property validators only.
    pub fn latest_item_names(&self, domain: &str) -> Vec<String> {
        let inner = self.inner.lock();
        match inner.domains.get(domain) {
            Some(map) => map.iter_latest().map(|(k, _)| k.clone()).collect(),
            None => Vec::new(),
        }
    }

    /// Shared implementation of `Query`/`QueryWithAttributes`: snapshot a
    /// replica, filter, sort, paginate.
    fn run_query(
        &self,
        domain: &str,
        expression: Option<&str>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<(Vec<(String, ItemState)>, Option<String>)> {
        let parsed = expression.map(QueryExpr::parse).transpose()?;
        let page_size = max_items
            .unwrap_or(QUERY_DEFAULT_PAGE)
            .clamp(1, QUERY_MAX_PAGE);
        let offset = parse_token(next_token)?;
        let inner = self.inner.lock();
        let map = domain_ref(&inner, domain)?;
        // Fast path for the match-everything query: page over the key
        // listing and materialise only the returned page, so enumerating
        // a large domain is O(page) per call instead of O(domain).
        if parsed.is_none() {
            let keys = map.visible_keys(&self.world);
            let total = keys.len();
            let page: Vec<(String, ItemState)> = keys
                .into_iter()
                .skip(offset)
                .take(page_size)
                .filter_map(|k| map.read(&self.world, &k).map(|item| (k, item)))
                .collect();
            let consumed = offset + page.len();
            let next = if consumed < total {
                Some(consumed.to_string())
            } else {
                None
            };
            return Ok((page, next));
        }
        let snapshot = map.visible_entries(&self.world);
        let mut rows: Vec<(String, ItemState)> = snapshot
            .into_iter()
            .filter(|(_, item)| parsed.as_ref().map(|q| q.matches(item)).unwrap_or(true))
            .collect();
        if let Some(q) = &parsed {
            rows = q.apply_sort(rows);
        }
        let page: Vec<(String, ItemState)> =
            rows.iter().skip(offset).take(page_size).cloned().collect();
        let consumed = offset + page.len();
        let next = if consumed < rows.len() {
            Some(consumed.to_string())
        } else {
            None
        };
        Ok((page, next))
    }
}

fn parse_token(token: Option<&str>) -> Result<usize> {
    match token {
        None => Ok(0),
        Some(t) => t.parse::<usize>().map_err(|_| SdbError::InvalidNextToken),
    }
}

fn domain_mut<'a>(inner: &'a mut Inner, domain: &str) -> Result<&'a mut EcMap<String, ItemState>> {
    inner
        .domains
        .get_mut(domain)
        .ok_or_else(|| SdbError::NoSuchDomain {
            domain: domain.to_string(),
        })
}

fn domain_ref<'a>(inner: &'a Inner, domain: &str) -> Result<&'a EcMap<String, ItemState>> {
    inner
        .domains
        .get(domain)
        .ok_or_else(|| SdbError::NoSuchDomain {
            domain: domain.to_string(),
        })
}

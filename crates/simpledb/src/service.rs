//! The SimpleDB service simulator.
//!
//! # Sharded storage layout
//!
//! Each domain is partitioned into a fixed set of hash shards (default
//! [`DEFAULT_SHARDS`], configurable via [`SimpleDb::with_shards`]); an
//! item lives on the shard selected by an FNV-1a hash of its name. Every
//! shard sits behind its own lock, so point operations
//! (`PutAttributes`/`GetAttributes`/`DeleteAttributes`) contend only for
//! one shard while `Query`/`Select` fan out across all shards and merge
//! the per-shard results in item-name order. This models both the real
//! service's internal partitioning and the concurrency story the
//! ROADMAP's multi-client scaling work needs.
//!
//! # Shard-aware pagination tokens
//!
//! A `next_token` encodes the shard count, one **pinned replica per
//! shard**, and a cursor. Pinning replicas means every page of one
//! logical scan reads the same replica view per shard (the
//! `visible_entries` single-replica contract, stretched across pages).
//! Unsorted scans use a *resume-after-name* cursor, so a paginated scan
//! neither skips nor duplicates an item no matter what is inserted or
//! deleted between pages; sorted scans (whose global order can shift
//! under writes) fall back to an offset cursor over the pinned views.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simworld::{EcMap, Op, Service, SimWorld, ThrottleConfig, TokenBucket};

use crate::error::{Result, SdbError};
use crate::model::{
    byte_size, pair_count, to_attributes, Attribute, ItemState, ReplaceableAttribute,
    ITEM_NAME_LIMIT, MAX_ATTRS_PER_CALL, MAX_DOMAINS, MAX_PAIRS_PER_ITEM,
};
use crate::query::QueryExpr;
use crate::select::{Output, SelectStatement};

/// Default page size for `Query`/`QueryWithAttributes`.
pub const QUERY_DEFAULT_PAGE: usize = 100;

/// Maximum page size for `Query`/`QueryWithAttributes`.
pub const QUERY_MAX_PAGE: usize = 250;

/// Maximum items per `BatchPutAttributes`/`BatchDeleteAttributes` call.
pub const MAX_BATCH_ITEMS: usize = 25;

/// Maximum attribute name-value pairs summed across one batch call's
/// items (the real service's `NumberSubmittedAttributesExceeded` bound).
pub const MAX_PAIRS_PER_BATCH: usize = 256;

/// Default number of hash shards per domain.
pub const DEFAULT_SHARDS: usize = 16;

/// Upper bound on shards per domain (a sanity bound standing in for the
/// real service's partitioning limits).
pub const MAX_SHARDS: usize = 256;

/// Approximate fixed response overhead per returned item name.
const ITEM_ENTRY_OVERHEAD: u64 = 32;

/// One attribute to remove in a `DeleteAttributes` call.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DeletableAttribute {
    /// Attribute name.
    pub name: String,
    /// `Some(v)`: delete only the pair `(name, v)`;
    /// `None`: delete every value of `name`.
    pub value: Option<String>,
}

impl DeletableAttribute {
    /// Deletes every value of `name`.
    pub fn all_of(name: impl Into<String>) -> DeletableAttribute {
        DeletableAttribute {
            name: name.into(),
            value: None,
        }
    }

    /// Deletes one `(name, value)` pair.
    pub fn pair(name: impl Into<String>, value: impl Into<String>) -> DeletableAttribute {
        DeletableAttribute {
            name: name.into(),
            value: Some(value.into()),
        }
    }
}

/// Result of `Query`: item names only.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QueryResult {
    /// Matching item names, in item-name order unless the expression
    /// carried a `sort`.
    pub item_names: Vec<String>,
    /// Present when more results remain; feed back in to continue.
    pub next_token: Option<String>,
}

/// One item of a `QueryWithAttributes`/`Select` response.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResultItem {
    /// Item name.
    pub name: String,
    /// The item's attributes (possibly filtered/projected).
    pub attributes: Vec<Attribute>,
}

/// Result of `QueryWithAttributes`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QueryWithAttributesResult {
    /// Matching items with their attributes.
    pub items: Vec<ResultItem>,
    /// Present when more results remain.
    pub next_token: Option<String>,
}

/// Result of `Select`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SelectResult {
    /// Matching items (empty for `count(*)`).
    pub items: Vec<ResultItem>,
    /// Populated for `select count(*)`.
    pub count: Option<u64>,
    /// Present when more results remain.
    pub next_token: Option<String>,
}

/// One domain: a fixed set of hash shards, each behind its own lock.
struct Domain {
    shards: Vec<Mutex<EcMap<String, ItemState>>>,
}

impl Domain {
    fn new(shard_count: usize) -> Domain {
        Domain {
            shards: (0..shard_count.clamp(1, MAX_SHARDS))
                .map(|_| Mutex::new(EcMap::new()))
                .collect(),
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, item_name: &str) -> usize {
        (simworld::fnv1a_64(item_name) % self.shards.len() as u64) as usize
    }
}

/// Provider-side rate limiting: one lazily-created token bucket per
/// `(domain, shard)`, governed by a single optional config. `None`
/// (the default) admits everything with one cheap check.
#[derive(Default)]
struct ThrottleState {
    config: Option<ThrottleConfig>,
    buckets: HashMap<(String, usize), TokenBucket>,
}

struct Inner {
    domains: RwLock<BTreeMap<String, Arc<Domain>>>,
    throttle: Mutex<ThrottleState>,
}

/// The simulated SimpleDB service.
///
/// Clones share one backing store. Every call is metered and advances the
/// virtual clock; reads and queries observe a sampled replica and may be
/// stale under eventual consistency — exactly the §2.2 behaviour ("an
/// item inserted might not be returned in a query that is run immediately
/// after the insert").
///
/// # Examples
///
/// ```
/// use sim_simpledb::{ReplaceableAttribute, SimpleDb};
/// use simworld::SimWorld;
///
/// let world = SimWorld::counting();
/// let db = SimpleDb::new(&world);
/// db.create_domain("prov")?;
/// db.put_attributes("prov", "foo_2", &[
///     ReplaceableAttribute::add("input", "bar:2"),
///     ReplaceableAttribute::add("type", "file"),
/// ])?;
/// let names = db.query("prov", Some("['type' = 'file']"), None, None)?;
/// assert_eq!(names.item_names, vec!["foo_2"]);
/// # Ok::<(), sim_simpledb::SdbError>(())
/// ```
#[derive(Clone)]
pub struct SimpleDb {
    world: SimWorld,
    shard_count: usize,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SimpleDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let domains = self.inner.domains.read();
        f.debug_struct("SimpleDb")
            .field("domains", &domains.len())
            .field("shards", &self.shard_count)
            .finish_non_exhaustive()
    }
}

impl SimpleDb {
    /// Connects a new simulated SimpleDB endpoint to `world` with
    /// [`DEFAULT_SHARDS`] shards per domain.
    pub fn new(world: &SimWorld) -> SimpleDb {
        SimpleDb::with_shards(world, DEFAULT_SHARDS)
    }

    /// Connects an endpoint whose domains are split into `shards` hash
    /// shards (clamped to `1..=`[`MAX_SHARDS`]). More shards mean less
    /// lock contention between concurrent point operations and more
    /// fan-out parallelism for `Query`/`Select`.
    pub fn with_shards(world: &SimWorld, shards: usize) -> SimpleDb {
        SimpleDb {
            world: world.clone(),
            shard_count: shards.clamp(1, MAX_SHARDS),
            inner: Arc::new(Inner {
                domains: RwLock::new(BTreeMap::new()),
                throttle: Mutex::new(ThrottleState::default()),
            }),
        }
    }

    /// Hash shards per domain on this endpoint.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Installs (or, with `None`, removes) a per-shard write-rate limit.
    /// Above the limit, write-path calls return
    /// [`SdbError::ServiceUnavailable`] without applying — the rejection
    /// is still a billable, metered request. Read paths are not
    /// throttled. Replaces any prior limit and resets bucket state.
    pub fn set_throttle(&self, config: Option<ThrottleConfig>) {
        let mut t = self.inner.throttle.lock();
        t.config = config;
        t.buckets.clear();
    }

    /// The active per-shard write-rate limit, if any.
    pub fn throttle(&self) -> Option<ThrottleConfig> {
        self.inner.throttle.lock().config
    }

    /// All-or-nothing admission for a request landing on `shards` of
    /// `domain`: every touched shard's bucket must hold a token, or the
    /// whole request is rejected and no bucket is drained (a rejected
    /// batch must not consume the budget of the shards it missed).
    fn admit(&self, domain: &str, shards: &[usize]) -> bool {
        let mut t = self.inner.throttle.lock();
        let Some(cfg) = t.config else {
            return true;
        };
        let now = self.world.now();
        let distinct: BTreeSet<usize> = shards.iter().copied().collect();
        let ok = distinct.iter().all(|&s| {
            t.buckets
                .entry((domain.to_string(), s))
                .or_insert_with(|| TokenBucket::new(cfg, now))
                .peek(now)
        });
        if ok {
            for &s in &distinct {
                t.buckets
                    .get_mut(&(domain.to_string(), s))
                    .expect("bucket created by peek above")
                    .take();
            }
        }
        ok
    }

    /// Creates a domain. Idempotent, as in the real service.
    ///
    /// # Errors
    ///
    /// [`SdbError::TooManyDomains`] past the account limit.
    pub fn create_domain(&self, domain: impl Into<String>) -> Result<()> {
        let domain = domain.into();
        let mut domains = self.inner.domains.write();
        self.world
            .record_op(Op::SdbCreateDomain, domain.len() as u64, 0);
        if domains.contains_key(&domain) {
            return Ok(());
        }
        if domains.len() >= MAX_DOMAINS {
            return Err(SdbError::TooManyDomains { limit: MAX_DOMAINS });
        }
        domains.insert(domain, Arc::new(Domain::new(self.shard_count)));
        Ok(())
    }

    /// Lists domain names.
    pub fn list_domains(&self) -> Vec<String> {
        let domains = self.inner.domains.read();
        let names: Vec<String> = domains.keys().cloned().collect();
        let bytes: u64 = names.iter().map(|n| n.len() as u64).sum();
        self.world.record_op(Op::SdbListDomains, 0, bytes);
        names
    }

    /// Inserts or updates attributes of an item. Idempotent: re-running
    /// the same call converges to the same state (§2.2). Touches exactly
    /// one shard.
    ///
    /// # Errors
    ///
    /// Limit violations ([`SdbError::TooManyAttributesInCall`],
    /// [`SdbError::TooManyAttributesOnItem`], name/value/item length) and
    /// [`SdbError::NoSuchDomain`].
    pub fn put_attributes(
        &self,
        domain: &str,
        item_name: &str,
        attrs: &[ReplaceableAttribute],
    ) -> Result<()> {
        if attrs.is_empty() {
            return Err(SdbError::EmptyAttributeList);
        }
        if attrs.len() > MAX_ATTRS_PER_CALL {
            return Err(SdbError::TooManyAttributesInCall {
                submitted: attrs.len(),
            });
        }
        if item_name.len() > ITEM_NAME_LIMIT {
            return Err(SdbError::ItemNameTooLong {
                length: item_name.len(),
            });
        }
        for a in attrs {
            a.check_limits()?;
        }
        let dom = self.domain(domain)?;
        let shard = dom.shard_of(item_name);
        let bytes_in: u64 = attrs
            .iter()
            .map(|a| (a.name.len() + a.value.len()) as u64)
            .sum::<u64>()
            + item_name.len() as u64;
        if !self.admit(domain, &[shard]) {
            self.world.record_throttled(Op::SdbPutAttributes, bytes_in);
            self.world
                .record_shard_touch(Service::SimpleDb, shard as u32);
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let mut map = dom.shards[shard].lock();

        let current = map.read_latest(&item_name.to_string());
        let before_bytes = current.as_ref().map(byte_size).unwrap_or(0);
        let item = apply_put(item_name, current, attrs)?;
        let after_bytes = byte_size(&item);
        self.world.record_op(Op::SdbPutAttributes, bytes_in, 0);
        self.world
            .record_shard_touch(Service::SimpleDb, shard as u32);
        self.world
            .adjust_stored(Service::SimpleDb, after_bytes as i64 - before_bytes as i64);
        map.write(&self.world, item_name.to_string(), Some(item));
        Ok(())
    }

    /// Reads an item's attributes, optionally filtered to a set of names.
    /// Served from a sampled replica; a freshly written item may be
    /// missing or stale. Absent items return an empty list, as in the
    /// real service. Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`].
    pub fn get_attributes(
        &self,
        domain: &str,
        item_name: &str,
        names: Option<&[&str]>,
    ) -> Result<Vec<Attribute>> {
        let dom = self.domain(domain)?;
        let shard = dom.shard_of(item_name);
        let item = {
            let map = dom.shards[shard].lock();
            map.read(&self.world, &item_name.to_string())
                .unwrap_or_default()
        };
        let mut attrs = to_attributes(&item);
        if let Some(filter) = names {
            attrs.retain(|a| filter.contains(&a.name.as_str()));
        }
        let bytes: u64 = attrs
            .iter()
            .map(|a| (a.name.len() + a.value.len()) as u64)
            .sum();
        self.world
            .record_op(Op::SdbGetAttributes, item_name.len() as u64, bytes);
        self.world
            .record_shard_touch(Service::SimpleDb, shard as u32);
        Ok(attrs)
    }

    /// Deletes attributes (or, with `attrs = None`, the entire item).
    /// Idempotent: deleting absent attributes or items succeeds (§2.2).
    /// Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`].
    pub fn delete_attributes(
        &self,
        domain: &str,
        item_name: &str,
        attrs: Option<&[DeletableAttribute]>,
    ) -> Result<()> {
        let dom = self.domain(domain)?;
        let shard = dom.shard_of(item_name);
        if !self.admit(domain, &[shard]) {
            self.world
                .record_throttled(Op::SdbDeleteAttributes, item_name.len() as u64);
            self.world
                .record_shard_touch(Service::SimpleDb, shard as u32);
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let mut map = dom.shards[shard].lock();
        self.world
            .record_op(Op::SdbDeleteAttributes, item_name.len() as u64, 0);
        self.world
            .record_shard_touch(Service::SimpleDb, shard as u32);
        let Some(item) = map.read_latest(&item_name.to_string()) else {
            return Ok(());
        };
        let before_bytes = byte_size(&item);
        let new_state = apply_delete(item, attrs);
        let after_bytes = new_state.as_ref().map(byte_size).unwrap_or(0);
        self.world
            .adjust_stored(Service::SimpleDb, after_bytes as i64 - before_bytes as i64);
        map.write(&self.world, item_name.to_string(), new_state);
        map.gc(self.world.now());
        Ok(())
    }

    /// `BatchPutAttributes`: writes up to [`MAX_BATCH_ITEMS`] items (and
    /// [`MAX_PAIRS_PER_BATCH`] attributes summed across them) in **one
    /// billable request**. Items are grouped by hash shard and every
    /// touched shard's lock is taken exactly once per batch — then held
    /// together while the batch applies, so the batch lands atomically
    /// with respect to concurrent readers of those shards. The latency
    /// model charges one round trip plus the busiest shard's share of
    /// the per-item marginal cost, mirroring the fan-out scan pricing.
    ///
    /// # Errors
    ///
    /// Every error leaves the store untouched — **no entry of a
    /// rejected batch applies** (the PR 3 invariant, extended):
    /// [`SdbError::EmptyBatch`], [`SdbError::TooManyItemsInBatch`],
    /// [`SdbError::DuplicateItemInBatch`],
    /// [`SdbError::TooManyAttributesInBatch`], per-item limit errors as
    /// [`SimpleDb::put_attributes`] (including
    /// [`SdbError::TooManyAttributesOnItem`] for an entry that would
    /// push an item past 256 pairs), and [`SdbError::NoSuchDomain`].
    pub fn batch_put_attributes(
        &self,
        domain: &str,
        items: &[(String, Vec<ReplaceableAttribute>)],
    ) -> Result<()> {
        check_batch_shape(items)?;
        let submitted: usize = items.iter().map(|(_, attrs)| attrs.len()).sum();
        if submitted > MAX_PAIRS_PER_BATCH {
            return Err(SdbError::TooManyAttributesInBatch { submitted });
        }
        for (item_name, attrs) in items {
            if attrs.is_empty() {
                return Err(SdbError::EmptyAttributeList);
            }
            if item_name.len() > ITEM_NAME_LIMIT {
                return Err(SdbError::ItemNameTooLong {
                    length: item_name.len(),
                });
            }
            for a in attrs {
                a.check_limits()?;
            }
        }
        let dom = self.domain(domain)?;

        // Take each touched shard's lock once, in ascending shard order
        // (a deterministic order keeps concurrent batches deadlock-free).
        let shards: Vec<usize> = items.iter().map(|(n, _)| dom.shard_of(n)).collect();
        let bytes_in: u64 = items
            .iter()
            .map(|(name, attrs)| {
                name.len() as u64
                    + attrs
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        if !self.admit(domain, &shards) {
            self.world
                .record_throttled(Op::SdbBatchPutAttributes, bytes_in);
            for &shard in &BTreeSet::from_iter(shards.iter().copied()) {
                self.world
                    .record_shard_touch(Service::SimpleDb, shard as u32);
            }
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let mut guards = lock_shards(&dom, &shards);

        // Stage phase: compute every item's new state against the locked
        // shards. Any failure returns here — nothing has been written.
        let mut staged: Vec<(usize, &str, ItemState)> = Vec::with_capacity(items.len());
        let mut stored_delta = 0i64;
        let mut per_shard = BTreeMap::<usize, u64>::new();
        for ((item_name, attrs), &shard) in items.iter().zip(&shards) {
            let map = guards.get(&shard).expect("locked above");
            let current = map.read_latest(&item_name.to_string());
            let before_bytes = current.as_ref().map(byte_size).unwrap_or(0);
            let item = apply_put(item_name, current, attrs)?;
            stored_delta += byte_size(&item) as i64 - before_bytes as i64;
            staged.push((shard, item_name, item));
            *per_shard.entry(shard).or_insert(0) += 1;
        }

        // Apply phase: meter one request, then write every entry.
        let gating = per_shard.values().copied().max().unwrap_or(0);
        self.world.record_batch(
            Op::SdbBatchPutAttributes,
            items.len() as u64,
            bytes_in,
            0,
            gating,
        );
        for &shard in per_shard.keys() {
            self.world
                .record_shard_touch(Service::SimpleDb, shard as u32);
        }
        self.world.adjust_stored(Service::SimpleDb, stored_delta);
        for (shard, item_name, item) in staged {
            guards.get_mut(&shard).expect("locked above").write(
                &self.world,
                item_name.to_string(),
                Some(item),
            );
        }
        Ok(())
    }

    /// `BatchDeleteAttributes`: deletes attributes (or, with `None`
    /// specs, whole items) from up to [`MAX_BATCH_ITEMS`] items in one
    /// billable request, with the same single-acquisition shard locking
    /// as [`SimpleDb::batch_put_attributes`]. Idempotent per entry, like
    /// [`SimpleDb::delete_attributes`].
    ///
    /// # Errors
    ///
    /// Batch-shape errors mutate nothing: [`SdbError::EmptyBatch`],
    /// [`SdbError::TooManyItemsInBatch`],
    /// [`SdbError::DuplicateItemInBatch`], [`SdbError::NoSuchDomain`].
    pub fn batch_delete_attributes(
        &self,
        domain: &str,
        items: &[(String, Option<Vec<DeletableAttribute>>)],
    ) -> Result<()> {
        check_batch_shape(items)?;
        let dom = self.domain(domain)?;
        let shards: Vec<usize> = items.iter().map(|(n, _)| dom.shard_of(n)).collect();
        let bytes_in: u64 = items.iter().map(|(name, _)| name.len() as u64).sum();
        if !self.admit(domain, &shards) {
            self.world
                .record_throttled(Op::SdbBatchDeleteAttributes, bytes_in);
            for &shard in &BTreeSet::from_iter(shards.iter().copied()) {
                self.world
                    .record_shard_touch(Service::SimpleDb, shard as u32);
            }
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let mut guards = lock_shards(&dom, &shards);
        let mut per_shard = BTreeMap::<usize, u64>::new();
        for &shard in &shards {
            *per_shard.entry(shard).or_insert(0) += 1;
        }
        let gating = per_shard.values().copied().max().unwrap_or(0);
        self.world.record_batch(
            Op::SdbBatchDeleteAttributes,
            items.len() as u64,
            bytes_in,
            0,
            gating,
        );
        for &shard in per_shard.keys() {
            self.world
                .record_shard_touch(Service::SimpleDb, shard as u32);
        }
        let mut stored_delta = 0i64;
        let now = self.world.now();
        for ((item_name, specs), &shard) in items.iter().zip(&shards) {
            let map = guards.get_mut(&shard).expect("locked above");
            let Some(item) = map.read_latest(&item_name.to_string()) else {
                continue;
            };
            let before_bytes = byte_size(&item);
            let new_state = apply_delete(item, specs.as_deref());
            stored_delta +=
                new_state.as_ref().map(byte_size).unwrap_or(0) as i64 - before_bytes as i64;
            map.write(&self.world, item_name.to_string(), new_state);
            map.gc(now);
        }
        self.world.adjust_stored(Service::SimpleDb, stored_delta);
        Ok(())
    }

    /// `Query`: returns matching item names. `expression = None` matches
    /// every item. Fans out across shards; each page of one paginated
    /// scan reads the replica view pinned in its token.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`], [`SdbError::InvalidQuery`],
    /// [`SdbError::InvalidNextToken`].
    pub fn query(
        &self,
        domain: &str,
        expression: Option<&str>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<QueryResult> {
        let (rows, next, scanned) = self.run_query(domain, expression, max_items, next_token)?;
        let item_names: Vec<String> = rows.into_iter().map(|(n, _)| n).collect();
        let bytes: u64 = item_names
            .iter()
            .map(|n| n.len() as u64 + ITEM_ENTRY_OVERHEAD)
            .sum();
        self.world.record_scan(
            Op::SdbQuery,
            expression.map(|e| e.len() as u64).unwrap_or(0),
            bytes,
            scanned,
        );
        Ok(QueryResult {
            item_names,
            next_token: next,
        })
    }

    /// `QueryWithAttributes`: matching items together with (optionally a
    /// subset of) their attributes.
    ///
    /// # Errors
    ///
    /// As [`SimpleDb::query`].
    pub fn query_with_attributes(
        &self,
        domain: &str,
        expression: Option<&str>,
        attribute_filter: Option<&[String]>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<QueryWithAttributesResult> {
        let (rows, next, scanned) = self.run_query(domain, expression, max_items, next_token)?;
        let items: Vec<ResultItem> = rows
            .into_iter()
            .map(|(name, state)| {
                let mut attributes = to_attributes(&state);
                if let Some(filter) = attribute_filter {
                    attributes.retain(|a| filter.contains(&a.name));
                }
                ResultItem { name, attributes }
            })
            .collect();
        let bytes: u64 = items
            .iter()
            .map(|i| {
                i.name.len() as u64
                    + ITEM_ENTRY_OVERHEAD
                    + i.attributes
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        self.world.record_scan(
            Op::SdbQueryWithAttributes,
            expression.map(|e| e.len() as u64).unwrap_or(0),
            bytes,
            scanned,
        );
        Ok(QueryWithAttributesResult {
            items,
            next_token: next,
        })
    }

    /// `Select`: the SQL-form interface. Fans out across shards like
    /// [`SimpleDb::query`], with the same shard-aware tokens.
    ///
    /// # Errors
    ///
    /// As [`SimpleDb::query`]; the domain named in the statement must
    /// exist.
    pub fn select(&self, sql: &str, next_token: Option<&str>) -> Result<SelectResult> {
        let stmt = SelectStatement::parse(sql)?;
        let dom = self.domain(&stmt.domain)?;
        // Validate any client token up front — `count(*)` is unpaginated
        // and ignores the cursor, but a malformed or foreign-layout
        // token must fail on every API the same way.
        let token = decode_token(next_token, &dom, &self.world)?;

        if stmt.output == Output::Count {
            // count(*) is unpaginated: one fan-out over freshly sampled
            // replica views, counting matches without materialising a
            // single item.
            let replicas = self.sample_replicas(dom.shard_count());
            let now = self.world.now();
            self.world
                .record_shard_fanout(Service::SimpleDb, dom.shard_count() as u32);
            let mut matched = 0u64;
            let mut scanned = 0u64;
            for (i, shard) in dom.shards.iter().enumerate() {
                let map = shard.lock();
                let (m, examined) = map
                    .visible_count_on(replicas[i], now, |name, item| stmt.selects_row(name, item));
                matched += m;
                scanned = scanned.max(examined);
            }
            let count = matched.min(stmt.limit as u64);
            self.world
                .record_scan(Op::SdbSelect, sql.len() as u64, 16, scanned);
            return Ok(SelectResult {
                items: Vec::new(),
                count: Some(count),
                next_token: None,
            });
        }

        let (page, next, scanned) = if stmt.order_by.is_some() {
            // Sorted output: global order can interleave shards
            // arbitrarily, so paginate by offset over the pinned views.
            let (replicas, offset) = match token {
                Some(PageToken {
                    replicas,
                    cursor: Cursor::Offset(o),
                }) => (replicas, o),
                Some(_) => return Err(SdbError::InvalidNextToken),
                None => (self.sample_replicas(dom.shard_count()), 0),
            };
            let (rows, scanned) = self.collect_entries(&dom, &replicas, |_, _| true);
            let matched = stmt.apply(rows);
            let page: Vec<(String, ItemState)> = matched
                .iter()
                .skip(offset)
                .take(stmt.limit)
                .cloned()
                .collect();
            let consumed = offset + page.len();
            let next = (consumed < matched.len()).then(|| {
                PageToken {
                    replicas,
                    cursor: Cursor::Offset(consumed),
                }
                .encode()
            });
            (page, next, scanned)
        } else {
            // Name-ordered output: cursor-based merge across shards.
            let condition = stmt.condition.clone();
            self.merged_page(&dom, token, stmt.limit, |name, item| {
                condition
                    .as_ref()
                    .map(|c| c.matches(name, item))
                    .unwrap_or(true)
            })?
        };

        let items: Vec<ResultItem> = page
            .into_iter()
            .map(|(name, state)| {
                let attributes = match &stmt.output {
                    Output::ItemName => Vec::new(),
                    Output::All => to_attributes(&state),
                    Output::Attrs(list) => to_attributes(&state)
                        .into_iter()
                        .filter(|a| list.contains(&a.name))
                        .collect(),
                    Output::Count => unreachable!("count handled above"),
                };
                ResultItem { name, attributes }
            })
            .collect();
        let bytes: u64 = items
            .iter()
            .map(|i| {
                i.name.len() as u64
                    + ITEM_ENTRY_OVERHEAD
                    + i.attributes
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        self.world
            .record_scan(Op::SdbSelect, sql.len() as u64, bytes, scanned);
        Ok(SelectResult {
            items,
            count: None,
            next_token: next,
        })
    }

    // --- authoritative (non-billed) views for invariant checks ---

    /// The newest committed attributes of an item, ignoring replication
    /// lag and without billing. For tests and property validators only.
    pub fn latest_item(&self, domain: &str, item_name: &str) -> Option<Vec<Attribute>> {
        let dom = self.domain(domain).ok()?;
        let map = dom.shards[dom.shard_of(item_name)].lock();
        map.read_latest(&item_name.to_string())
            .map(|s| to_attributes(&s))
    }

    /// Authoritative list of live item names, unbilled. For tests and
    /// property validators only.
    pub fn latest_item_names(&self, domain: &str) -> Vec<String> {
        let Ok(dom) = self.domain(domain) else {
            return Vec::new();
        };
        let mut names: Vec<String> = Vec::new();
        for shard in &dom.shards {
            let map = shard.lock();
            names.extend(map.iter_latest().map(|(k, _)| k.clone()));
        }
        names.sort_unstable();
        names
    }

    /// Looks a domain up, cloning its handle out so the domains map lock
    /// is held only for the lookup.
    fn domain(&self, domain: &str) -> Result<Arc<Domain>> {
        self.inner
            .domains
            .read()
            .get(domain)
            .cloned()
            .ok_or_else(|| SdbError::NoSuchDomain {
                domain: domain.to_string(),
            })
    }

    /// One freshly sampled read replica per shard.
    fn sample_replicas(&self, shard_count: usize) -> Vec<usize> {
        self.world.sample_read_replicas(shard_count)
    }

    /// Fans out over every shard, collecting the entries visible on each
    /// shard's pinned replica that `pred` accepts, merged in item-name
    /// order. Records one shard touch per shard.
    fn collect_entries<F>(
        &self,
        dom: &Domain,
        replicas: &[usize],
        mut pred: F,
    ) -> (Vec<(String, ItemState)>, u64)
    where
        F: FnMut(&str, &ItemState) -> bool,
    {
        let now = self.world.now();
        self.world
            .record_shard_fanout(Service::SimpleDb, dom.shard_count() as u32);
        let mut rows: Vec<(String, ItemState)> = Vec::new();
        let mut scanned = 0u64;
        for (i, shard) in dom.shards.iter().enumerate() {
            let map = shard.lock();
            // Shards scan in parallel: the largest one gates the call.
            scanned = scanned.max(map.cell_count() as u64);
            rows.extend(
                map.visible_entries_on(replicas[i], now)
                    .into_iter()
                    .filter(|(k, v)| pred(k, v)),
            );
        }
        // Shards hold disjoint key ranges only in hash space; restore
        // global item-name order.
        rows.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        (rows, scanned)
    }

    /// One page of a name-ordered scan: each shard contributes its next
    /// visible matches after the cursor under the shared adaptive-quota
    /// merge ([`simworld::merged_shard_page`] — the same machinery the
    /// sharded S3 LIST runs on), and the page is the first `page_size`
    /// of the merge. The returned token resumes strictly after the last
    /// name served, on the same pinned replica per shard.
    fn merged_page<F>(
        &self,
        dom: &Arc<Domain>,
        token: Option<PageToken>,
        page_size: usize,
        mut pred: F,
    ) -> Result<(Vec<(String, ItemState)>, Option<String>, u64)>
    where
        F: FnMut(&str, &ItemState) -> bool,
    {
        let (replicas, after) = match token {
            Some(PageToken {
                replicas,
                cursor: Cursor::After(name),
            }) => (replicas, Some(name)),
            Some(_) => return Err(SdbError::InvalidNextToken),
            None => (self.sample_replicas(dom.shard_count()), None),
        };
        let now = self.world.now();
        self.world
            .record_shard_fanout(Service::SimpleDb, dom.shard_count() as u32);
        let (candidates, more, scanned) =
            simworld::merged_shard_page(dom.shard_count(), after, page_size, |i, cursor, quota| {
                let map = dom.shards[i].lock();
                map.visible_page_on(replicas[i], now, cursor, quota, |k, v| pred(k, v))
            });
        let next = if more {
            let last = candidates
                .last()
                .map(|(n, _)| n.clone())
                .expect("page_size >= 1, so a truncated page is non-empty");
            Some(
                PageToken {
                    replicas,
                    cursor: Cursor::After(last),
                }
                .encode(),
            )
        } else {
            None
        };
        Ok((candidates, next, scanned))
    }

    /// Shared implementation of `Query`/`QueryWithAttributes`.
    fn run_query(
        &self,
        domain: &str,
        expression: Option<&str>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<(Vec<(String, ItemState)>, Option<String>, u64)> {
        let parsed = expression.map(QueryExpr::parse).transpose()?;
        let page_size = max_items
            .unwrap_or(QUERY_DEFAULT_PAGE)
            .clamp(1, QUERY_MAX_PAGE);
        let dom = self.domain(domain)?;
        let token = decode_token(next_token, &dom, &self.world)?;

        if parsed.as_ref().and_then(|q| q.sort()).is_some() {
            // Sorted output: offset cursor over the pinned views.
            let q = parsed.expect("sort implies a parsed expression");
            let (replicas, offset) = match token {
                Some(PageToken {
                    replicas,
                    cursor: Cursor::Offset(o),
                }) => (replicas, o),
                Some(_) => return Err(SdbError::InvalidNextToken),
                None => (self.sample_replicas(dom.shard_count()), 0),
            };
            let (rows, scanned) = self.collect_entries(&dom, &replicas, |_, item| q.matches(item));
            let rows = q.apply_sort(rows);
            let page: Vec<(String, ItemState)> =
                rows.iter().skip(offset).take(page_size).cloned().collect();
            let consumed = offset + page.len();
            let next = (consumed < rows.len()).then(|| {
                PageToken {
                    replicas,
                    cursor: Cursor::Offset(consumed),
                }
                .encode()
            });
            return Ok((page, next, scanned));
        }

        self.merged_page(&dom, token, page_size, |_, item| {
            parsed.as_ref().map(|q| q.matches(item)).unwrap_or(true)
        })
    }
}

/// Applies one `PutAttributes` attribute list to an item's current
/// state: the replace-once rule (existing values of a `replace`d name
/// drop once per call, before any of this call's values land), then the
/// 256-pair item cap.
fn apply_put(
    item_name: &str,
    current: Option<ItemState>,
    attrs: &[ReplaceableAttribute],
) -> Result<ItemState> {
    let mut item = current.unwrap_or_default();
    let mut replaced: Vec<&str> = Vec::new();
    for a in attrs {
        if a.replace && !replaced.contains(&a.name.as_str()) {
            item.remove(&a.name);
            replaced.push(&a.name);
        }
    }
    for a in attrs {
        item.entry(a.name.clone())
            .or_default()
            .insert(a.value.clone());
    }
    let pairs = pair_count(&item);
    if pairs > MAX_PAIRS_PER_ITEM {
        return Err(SdbError::TooManyAttributesOnItem {
            item: item_name.to_string(),
            pairs,
        });
    }
    Ok(item)
}

/// Applies `DeleteAttributes` specs to an item's current state; `None`
/// specs (or an emptied item) erase the item entirely.
fn apply_delete(mut item: ItemState, specs: Option<&[DeletableAttribute]>) -> Option<ItemState> {
    let specs = specs?;
    for spec in specs {
        match &spec.value {
            None => {
                item.remove(&spec.name);
            }
            Some(v) => {
                if let Some(values) = item.get_mut(&spec.name) {
                    values.remove(v);
                    if values.is_empty() {
                        item.remove(&spec.name);
                    }
                }
            }
        }
    }
    // An item with no attributes ceases to exist.
    if item.is_empty() {
        None
    } else {
        Some(item)
    }
}

/// Locks every distinct shard in `shards` exactly once, in ascending
/// shard order — concurrent batches that overlap therefore acquire in
/// the same order and cannot deadlock.
fn lock_shards<'a>(
    dom: &'a Domain,
    shards: &[usize],
) -> BTreeMap<usize, parking_lot::MutexGuard<'a, EcMap<String, ItemState>>> {
    let distinct: std::collections::BTreeSet<usize> = shards.iter().copied().collect();
    distinct
        .into_iter()
        .map(|s| (s, dom.shards[s].lock()))
        .collect()
}

/// Shared batch-shape validation: item count, duplicate names.
fn check_batch_shape<T>(items: &[(String, T)]) -> Result<()> {
    if items.is_empty() {
        return Err(SdbError::EmptyBatch);
    }
    if items.len() > MAX_BATCH_ITEMS {
        return Err(SdbError::TooManyItemsInBatch {
            submitted: items.len(),
        });
    }
    let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (name, _) in items {
        if !seen.insert(name) {
            return Err(SdbError::DuplicateItemInBatch { item: name.clone() });
        }
    }
    Ok(())
}

// --- shard-aware pagination tokens ---

/// Cursor half of a [`PageToken`].
#[derive(Clone, PartialEq, Eq, Debug)]
enum Cursor {
    /// Resume strictly after this item name (name-ordered scans).
    After(String),
    /// Global offset into the sorted row set (sorted scans).
    Offset(usize),
}

/// A decoded `next_token`: the pinned replica per shard plus a cursor.
#[derive(Clone, PartialEq, Eq, Debug)]
struct PageToken {
    /// `replicas[i]` is the replica shard `i` serves this scan from.
    replicas: Vec<usize>,
    cursor: Cursor,
}

impl PageToken {
    /// Wire format: `s<shards>;r<r0.r1...>;a<hex(name)>` for
    /// resume-after-name cursors, `s<shards>;r<...>;o<offset>` for offset
    /// cursors. The item name is hex-encoded so the token survives any
    /// byte the 1 KB item-name budget allows.
    fn encode(&self) -> String {
        let rs = self
            .replicas
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(".");
        match &self.cursor {
            Cursor::After(name) => {
                format!("s{};r{};a{}", self.replicas.len(), rs, hex_encode(name))
            }
            Cursor::Offset(o) => format!("s{};r{};o{}", self.replicas.len(), rs, o),
        }
    }

    fn decode(token: &str) -> Option<PageToken> {
        let rest = token.strip_prefix('s')?;
        let (shards, rest) = rest.split_once(';')?;
        let shards: usize = shards.parse().ok()?;
        let rest = rest.strip_prefix('r')?;
        let (rs, cursor) = rest.split_once(';')?;
        let replicas: Vec<usize> = if rs.is_empty() {
            Vec::new()
        } else {
            rs.split('.')
                .map(|r| r.parse::<usize>().ok())
                .collect::<Option<Vec<_>>>()?
        };
        if replicas.len() != shards {
            return None;
        }
        let cursor = if let Some(hex) = cursor.strip_prefix('a') {
            Cursor::After(hex_decode(hex)?)
        } else if let Some(o) = cursor.strip_prefix('o') {
            Cursor::Offset(o.parse().ok()?)
        } else {
            return None;
        };
        Some(PageToken { replicas, cursor })
    }
}

/// Decodes and validates a client token against the domain's shard
/// layout and the world's replica count.
fn decode_token(token: Option<&str>, dom: &Domain, world: &SimWorld) -> Result<Option<PageToken>> {
    let Some(token) = token else {
        return Ok(None);
    };
    let parsed = PageToken::decode(token).ok_or(SdbError::InvalidNextToken)?;
    let replica_bound = world.replicas().max(1);
    if parsed.replicas.len() != dom.shard_count()
        || parsed.replicas.iter().any(|r| *r >= replica_bound)
    {
        return Err(SdbError::InvalidNextToken);
    }
    Ok(Some(parsed))
}

fn hex_encode(s: &str) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(s.len() * 2);
    for b in s.as_bytes() {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

fn hex_decode(hex: &str) -> Option<String> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let raw = hex.as_bytes();
    for pair in raw.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        bytes.push((hi * 16 + lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

//! The SimpleDB service simulator.
//!
//! # Sharded storage layout
//!
//! Each domain is a [`simworld::ShardMap`]: a **range-routed** set of
//! shards, each owning a contiguous span of the 64-bit key-hash ring and
//! sitting behind its own lock (default [`DEFAULT_SHARDS`] shards,
//! configurable via [`SimpleDb::with_shards`] /
//! [`SimpleDb::with_shard_plan`]). Point operations
//! (`PutAttributes`/`GetAttributes`/`DeleteAttributes`) contend only for
//! one shard while `Query`/`Select` fan out across all shards and merge
//! the per-shard results in item-name order. With a
//! [`simworld::SplitPolicy`] armed, a hot shard splits its range in two
//! in the background — placement changes, but converged state is
//! byte-identical with splitting on or off.
//!
//! Shard-count requests are validated by the one shared rule
//! ([`simworld::clamp_shards`], identical in S3): `with_shards(0)` is
//! promoted to 1 shard and oversized requests are silently capped at
//! [`MAX_SHARDS`].
//!
//! # Shard-aware pagination tokens
//!
//! A `next_token` encodes one **pinned replica per shard, keyed by
//! stable shard id**, and a cursor. Pinning replicas means every page of
//! one logical scan reads the same replica view per shard (the
//! `visible_entries` single-replica contract, stretched across pages);
//! keying by stable id — rather than by shard index, as before range
//! routing — means the pin survives shards splitting mid-scan: a shard
//! born after the token was minted resolves to its nearest pinned
//! ancestor. Unsorted scans use a *resume-after-name* cursor, so a
//! paginated scan neither skips nor duplicates an item no matter what is
//! inserted, deleted, or split between pages; sorted scans (whose global
//! order can shift under writes) fall back to an offset cursor over the
//! pinned views.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simworld::{
    MapView, Op, ReplicaPin, Service, ShardMap, ShardPlan, SimWorld, SplitEvent, ThrottleConfig,
};

use crate::error::{Result, SdbError};
use crate::model::{
    byte_size, pair_count, to_attributes, Attribute, ItemState, ReplaceableAttribute,
    ITEM_NAME_LIMIT, MAX_ATTRS_PER_CALL, MAX_DOMAINS, MAX_PAIRS_PER_ITEM,
};
use crate::query::QueryExpr;
use crate::select::{Output, SelectStatement};

/// Default page size for `Query`/`QueryWithAttributes`.
pub const QUERY_DEFAULT_PAGE: usize = 100;

/// Maximum page size for `Query`/`QueryWithAttributes`.
pub const QUERY_MAX_PAGE: usize = 250;

/// Maximum items per `BatchPutAttributes`/`BatchDeleteAttributes` call.
pub const MAX_BATCH_ITEMS: usize = 25;

/// Maximum attribute name-value pairs summed across one batch call's
/// items (the real service's `NumberSubmittedAttributesExceeded` bound).
pub const MAX_PAIRS_PER_BATCH: usize = 256;

/// Default number of hash shards per domain.
pub const DEFAULT_SHARDS: usize = 16;

/// Upper bound on shards per domain — the workspace-wide
/// [`simworld::MAX_SHARDS`], shared with S3 so the clamping rule cannot
/// drift between services.
pub const MAX_SHARDS: usize = simworld::MAX_SHARDS;

/// Approximate fixed response overhead per returned item name.
const ITEM_ENTRY_OVERHEAD: u64 = 32;

/// One attribute to remove in a `DeleteAttributes` call.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DeletableAttribute {
    /// Attribute name.
    pub name: String,
    /// `Some(v)`: delete only the pair `(name, v)`;
    /// `None`: delete every value of `name`.
    pub value: Option<String>,
}

impl DeletableAttribute {
    /// Deletes every value of `name`.
    pub fn all_of(name: impl Into<String>) -> DeletableAttribute {
        DeletableAttribute {
            name: name.into(),
            value: None,
        }
    }

    /// Deletes one `(name, value)` pair.
    pub fn pair(name: impl Into<String>, value: impl Into<String>) -> DeletableAttribute {
        DeletableAttribute {
            name: name.into(),
            value: Some(value.into()),
        }
    }
}

/// Result of `Query`: item names only.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QueryResult {
    /// Matching item names, in item-name order unless the expression
    /// carried a `sort`.
    pub item_names: Vec<String>,
    /// Present when more results remain; feed back in to continue.
    pub next_token: Option<String>,
}

/// One item of a `QueryWithAttributes`/`Select` response.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResultItem {
    /// Item name.
    pub name: String,
    /// The item's attributes (possibly filtered/projected).
    pub attributes: Vec<Attribute>,
}

/// Result of `QueryWithAttributes`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QueryWithAttributesResult {
    /// Matching items with their attributes.
    pub items: Vec<ResultItem>,
    /// Present when more results remain.
    pub next_token: Option<String>,
}

/// Result of `Select`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SelectResult {
    /// Matching items (empty for `count(*)`).
    pub items: Vec<ResultItem>,
    /// Populated for `select count(*)`.
    pub count: Option<u64>,
    /// Present when more results remain.
    pub next_token: Option<String>,
}

type Domain = ShardMap<ItemState>;

struct Inner {
    domains: RwLock<BTreeMap<String, Arc<Domain>>>,
    /// One optional throttle config for the endpoint; the per-shard
    /// token buckets live inside each domain's [`ShardMap`], keyed by
    /// stable shard id so they survive (and are re-keyed across) splits.
    throttle: Mutex<Option<ThrottleConfig>>,
}

/// The simulated SimpleDB service.
///
/// Clones share one backing store. Every call is metered and advances the
/// virtual clock; reads and queries observe a sampled replica and may be
/// stale under eventual consistency — exactly the §2.2 behaviour ("an
/// item inserted might not be returned in a query that is run immediately
/// after the insert").
///
/// # Examples
///
/// ```
/// use sim_simpledb::{ReplaceableAttribute, SimpleDb};
/// use simworld::SimWorld;
///
/// let world = SimWorld::counting();
/// let db = SimpleDb::new(&world);
/// db.create_domain("prov")?;
/// db.put_attributes("prov", "foo_2", &[
///     ReplaceableAttribute::add("input", "bar:2"),
///     ReplaceableAttribute::add("type", "file"),
/// ])?;
/// let names = db.query("prov", Some("['type' = 'file']"), None, None)?;
/// assert_eq!(names.item_names, vec!["foo_2"]);
/// # Ok::<(), sim_simpledb::SdbError>(())
/// ```
#[derive(Clone)]
pub struct SimpleDb {
    world: SimWorld,
    plan: ShardPlan,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SimpleDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let domains = self.inner.domains.read();
        f.debug_struct("SimpleDb")
            .field("domains", &domains.len())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl SimpleDb {
    /// Connects a new simulated SimpleDB endpoint to `world` with
    /// [`DEFAULT_SHARDS`] shards per domain.
    pub fn new(world: &SimWorld) -> SimpleDb {
        SimpleDb::with_shards(world, DEFAULT_SHARDS)
    }

    /// Connects an endpoint whose domains are split into `shards` hash
    /// shards, validated by the shared rule ([`simworld::clamp_shards`]:
    /// zero becomes 1, oversized caps at [`MAX_SHARDS`]). More shards
    /// mean less lock contention between concurrent point operations and
    /// more fan-out parallelism for `Query`/`Select`. The layout is
    /// static — no splitting.
    pub fn with_shards(world: &SimWorld, shards: usize) -> SimpleDb {
        SimpleDb::with_shard_plan(world, ShardPlan::fixed(shards))
    }

    /// Connects an endpoint provisioning each domain per `plan`: the
    /// initial shard count plus, optionally, a hot-shard
    /// [`simworld::SplitPolicy`].
    pub fn with_shard_plan(world: &SimWorld, plan: ShardPlan) -> SimpleDb {
        SimpleDb {
            world: world.clone(),
            plan,
            inner: Arc::new(Inner {
                domains: RwLock::new(BTreeMap::new()),
                throttle: Mutex::new(None),
            }),
        }
    }

    /// Initial (post-clamp) hash shards per domain on this endpoint.
    /// Splitting can grow an individual domain past this — see
    /// [`SimpleDb::domain_shard_count`].
    pub fn shard_count(&self) -> usize {
        simworld::clamp_shards(self.plan.shards)
    }

    /// The shard plan domains are provisioned with.
    pub fn shard_plan(&self) -> ShardPlan {
        self.plan
    }

    /// Shards `domain` currently holds (grows as hot shards split), or
    /// `None` for an unknown domain. Unbilled.
    pub fn domain_shard_count(&self, domain: &str) -> Option<usize> {
        Some(self.domain(domain).ok()?.shard_count())
    }

    /// Splits performed on `domain` so far, or `None` for an unknown
    /// domain. Unbilled.
    pub fn domain_split_count(&self, domain: &str) -> Option<u64> {
        Some(self.domain(domain).ok()?.split_count())
    }

    /// Stable ids of `domain`'s current shards in hash-range order, or
    /// `None` for an unknown domain. Unbilled.
    pub fn domain_shard_ids(&self, domain: &str) -> Option<Vec<u32>> {
        Some(self.domain(domain).ok()?.shard_ids())
    }

    /// Test/bench hook: force-splits the shard of `domain` currently
    /// holding the most cells, policy or not. Returns the split record,
    /// or `None` when the domain is unknown or nothing can split.
    pub fn split_hottest(&self, domain: &str) -> Option<SplitEvent> {
        self.domain(domain).ok()?.force_split()
    }

    /// Installs (or, with `None`, removes) a per-shard write-rate limit.
    /// Above the limit, write-path calls return
    /// [`SdbError::ServiceUnavailable`] without applying — the rejection
    /// is still a billable, metered request. Read paths are not
    /// throttled. Replaces any prior limit and resets bucket state.
    pub fn set_throttle(&self, config: Option<ThrottleConfig>) {
        *self.inner.throttle.lock() = config;
        for dom in self.inner.domains.read().values() {
            dom.reset_throttle();
        }
    }

    /// The active per-shard write-rate limit, if any.
    pub fn throttle(&self) -> Option<ThrottleConfig> {
        *self.inner.throttle.lock()
    }

    /// All-or-nothing admission for a request landing on `shards` of
    /// `dom`: every touched shard's bucket must hold a token, or the
    /// whole request is rejected and no bucket is drained (a rejected
    /// batch must not consume the budget of the shards it missed).
    fn admit(&self, dom: &Domain, shards: &[u32]) -> bool {
        let config = *self.inner.throttle.lock();
        dom.admit(self.world.now(), config, shards)
    }

    /// Creates a domain. Idempotent, as in the real service.
    ///
    /// # Errors
    ///
    /// [`SdbError::TooManyDomains`] past the account limit.
    pub fn create_domain(&self, domain: impl Into<String>) -> Result<()> {
        let domain = domain.into();
        let mut domains = self.inner.domains.write();
        self.world
            .record_op(Op::SdbCreateDomain, domain.len() as u64, 0);
        if domains.contains_key(&domain) {
            return Ok(());
        }
        if domains.len() >= MAX_DOMAINS {
            return Err(SdbError::TooManyDomains { limit: MAX_DOMAINS });
        }
        domains.insert(domain, Arc::new(ShardMap::new(self.plan)));
        Ok(())
    }

    /// Lists domain names.
    pub fn list_domains(&self) -> Vec<String> {
        let domains = self.inner.domains.read();
        let names: Vec<String> = domains.keys().cloned().collect();
        let bytes: u64 = names.iter().map(|n| n.len() as u64).sum();
        self.world.record_op(Op::SdbListDomains, 0, bytes);
        names
    }

    /// Inserts or updates attributes of an item. Idempotent: re-running
    /// the same call converges to the same state (§2.2). Touches exactly
    /// one shard.
    ///
    /// # Errors
    ///
    /// Limit violations ([`SdbError::TooManyAttributesInCall`],
    /// [`SdbError::TooManyAttributesOnItem`], name/value/item length) and
    /// [`SdbError::NoSuchDomain`].
    pub fn put_attributes(
        &self,
        domain: &str,
        item_name: &str,
        attrs: &[ReplaceableAttribute],
    ) -> Result<()> {
        if attrs.is_empty() {
            return Err(SdbError::EmptyAttributeList);
        }
        if attrs.len() > MAX_ATTRS_PER_CALL {
            return Err(SdbError::TooManyAttributesInCall {
                submitted: attrs.len(),
            });
        }
        if item_name.len() > ITEM_NAME_LIMIT {
            return Err(SdbError::ItemNameTooLong {
                length: item_name.len(),
            });
        }
        for a in attrs {
            a.check_limits()?;
        }
        let dom = self.domain(domain)?;
        let shard = dom.route(item_name);
        let bytes_in: u64 = attrs
            .iter()
            .map(|a| (a.name.len() + a.value.len()) as u64)
            .sum::<u64>()
            + item_name.len() as u64;
        if !self.admit(&dom, &[shard]) {
            self.world.record_throttled(Op::SdbPutAttributes, bytes_in);
            self.world.record_shard_touch(Service::SimpleDb, shard);
            dom.maybe_split();
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let shard = dom.with_cells(item_name, |shard, map| -> Result<u32> {
            let current = map.read_latest(&item_name.to_string());
            let before_bytes = current.as_ref().map(byte_size).unwrap_or(0);
            let item = apply_put(item_name, current, attrs)?;
            let after_bytes = byte_size(&item);
            self.world.record_op(Op::SdbPutAttributes, bytes_in, 0);
            self.world.record_shard_touch(Service::SimpleDb, shard);
            self.world
                .adjust_stored(Service::SimpleDb, after_bytes as i64 - before_bytes as i64);
            map.write(&self.world, item_name.to_string(), Some(item));
            Ok(shard)
        })?;
        dom.note_ops(&[shard]);
        Ok(())
    }

    /// Reads an item's attributes, optionally filtered to a set of names.
    /// Served from a sampled replica; a freshly written item may be
    /// missing or stale. Absent items return an empty list, as in the
    /// real service. Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`].
    pub fn get_attributes(
        &self,
        domain: &str,
        item_name: &str,
        names: Option<&[&str]>,
    ) -> Result<Vec<Attribute>> {
        let dom = self.domain(domain)?;
        let (shard, item) = dom.with_cells(item_name, |shard, map| {
            (
                shard,
                map.read(&self.world, &item_name.to_string())
                    .unwrap_or_default(),
            )
        });
        let mut attrs = to_attributes(&item);
        if let Some(filter) = names {
            attrs.retain(|a| filter.contains(&a.name.as_str()));
        }
        let bytes: u64 = attrs
            .iter()
            .map(|a| (a.name.len() + a.value.len()) as u64)
            .sum();
        self.world
            .record_op(Op::SdbGetAttributes, item_name.len() as u64, bytes);
        self.world.record_shard_touch(Service::SimpleDb, shard);
        dom.note_ops(&[shard]);
        Ok(attrs)
    }

    /// Deletes attributes (or, with `attrs = None`, the entire item).
    /// Idempotent: deleting absent attributes or items succeeds (§2.2).
    /// Touches exactly one shard.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`].
    pub fn delete_attributes(
        &self,
        domain: &str,
        item_name: &str,
        attrs: Option<&[DeletableAttribute]>,
    ) -> Result<()> {
        let dom = self.domain(domain)?;
        let shard = dom.route(item_name);
        if !self.admit(&dom, &[shard]) {
            self.world
                .record_throttled(Op::SdbDeleteAttributes, item_name.len() as u64);
            self.world.record_shard_touch(Service::SimpleDb, shard);
            dom.maybe_split();
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let shard = dom.with_cells(item_name, |shard, map| {
            self.world
                .record_op(Op::SdbDeleteAttributes, item_name.len() as u64, 0);
            self.world.record_shard_touch(Service::SimpleDb, shard);
            let Some(item) = map.read_latest(&item_name.to_string()) else {
                return shard;
            };
            let before_bytes = byte_size(&item);
            let new_state = apply_delete(item, attrs);
            let after_bytes = new_state.as_ref().map(byte_size).unwrap_or(0);
            self.world
                .adjust_stored(Service::SimpleDb, after_bytes as i64 - before_bytes as i64);
            map.write(&self.world, item_name.to_string(), new_state);
            map.gc(self.world.now());
            shard
        });
        dom.note_ops(&[shard]);
        Ok(())
    }

    /// `BatchPutAttributes`: writes up to [`MAX_BATCH_ITEMS`] items (and
    /// [`MAX_PAIRS_PER_BATCH`] attributes summed across them) in **one
    /// billable request**. Items are grouped by shard and every touched
    /// shard's lock is taken exactly once per batch — then held together
    /// while the batch applies, so the batch lands atomically with
    /// respect to concurrent readers of those shards. The latency model
    /// charges one round trip plus the busiest shard's share of the
    /// per-item marginal cost, mirroring the fan-out scan pricing.
    ///
    /// # Errors
    ///
    /// Every error leaves the store untouched — **no entry of a
    /// rejected batch applies** (the PR 3 invariant, extended):
    /// [`SdbError::EmptyBatch`], [`SdbError::TooManyItemsInBatch`],
    /// [`SdbError::DuplicateItemInBatch`],
    /// [`SdbError::TooManyAttributesInBatch`], per-item limit errors as
    /// [`SimpleDb::put_attributes`] (including
    /// [`SdbError::TooManyAttributesOnItem`] for an entry that would
    /// push an item past 256 pairs), and [`SdbError::NoSuchDomain`].
    pub fn batch_put_attributes(
        &self,
        domain: &str,
        items: &[(String, Vec<ReplaceableAttribute>)],
    ) -> Result<()> {
        check_batch_shape(items)?;
        let submitted: usize = items.iter().map(|(_, attrs)| attrs.len()).sum();
        if submitted > MAX_PAIRS_PER_BATCH {
            return Err(SdbError::TooManyAttributesInBatch { submitted });
        }
        for (item_name, attrs) in items {
            if attrs.is_empty() {
                return Err(SdbError::EmptyAttributeList);
            }
            if item_name.len() > ITEM_NAME_LIMIT {
                return Err(SdbError::ItemNameTooLong {
                    length: item_name.len(),
                });
            }
            for a in attrs {
                a.check_limits()?;
            }
        }
        let dom = self.domain(domain)?;

        let shards: Vec<u32> = dom.route_all(items.iter().map(|(n, _)| n.as_str()));
        let bytes_in: u64 = items
            .iter()
            .map(|(name, attrs)| {
                name.len() as u64
                    + attrs
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        if !self.admit(&dom, &shards) {
            self.world
                .record_throttled(Op::SdbBatchPutAttributes, bytes_in);
            for &shard in &BTreeSet::from_iter(shards.iter().copied()) {
                self.world.record_shard_touch(Service::SimpleDb, shard);
            }
            dom.maybe_split();
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }

        // Every touched shard's lock is taken exactly once, in ascending
        // id order (a deterministic order keeps concurrent batches
        // deadlock-free).
        let touched = dom.with_cells_multi(&shards, |guards| -> Result<Vec<u32>> {
            // Stage phase: compute every item's new state against the
            // locked shards. Any failure returns here — nothing has been
            // written.
            let mut staged: Vec<(u32, &str, ItemState)> = Vec::with_capacity(items.len());
            let mut stored_delta = 0i64;
            let mut per_shard = BTreeMap::<u32, u64>::new();
            for ((item_name, attrs), &shard) in items.iter().zip(&shards) {
                let map = guards.get_mut(shard);
                let current = map.read_latest(&item_name.to_string());
                let before_bytes = current.as_ref().map(byte_size).unwrap_or(0);
                let item = apply_put(item_name, current, attrs)?;
                stored_delta += byte_size(&item) as i64 - before_bytes as i64;
                staged.push((shard, item_name, item));
                *per_shard.entry(shard).or_insert(0) += 1;
            }

            // Apply phase: meter one request, then write every entry.
            let gating = per_shard.values().copied().max().unwrap_or(0);
            self.world.record_batch(
                Op::SdbBatchPutAttributes,
                items.len() as u64,
                bytes_in,
                0,
                gating,
            );
            for &shard in per_shard.keys() {
                self.world.record_shard_touch(Service::SimpleDb, shard);
            }
            self.world.adjust_stored(Service::SimpleDb, stored_delta);
            for (shard, item_name, item) in staged {
                guards
                    .get_mut(shard)
                    .write(&self.world, item_name.to_string(), Some(item));
            }
            Ok(per_shard.keys().copied().collect())
        })?;
        dom.note_ops(&touched);
        Ok(())
    }

    /// `BatchDeleteAttributes`: deletes attributes (or, with `None`
    /// specs, whole items) from up to [`MAX_BATCH_ITEMS`] items in one
    /// billable request, with the same single-acquisition shard locking
    /// as [`SimpleDb::batch_put_attributes`]. Idempotent per entry, like
    /// [`SimpleDb::delete_attributes`].
    ///
    /// # Errors
    ///
    /// Batch-shape errors mutate nothing: [`SdbError::EmptyBatch`],
    /// [`SdbError::TooManyItemsInBatch`],
    /// [`SdbError::DuplicateItemInBatch`], [`SdbError::NoSuchDomain`].
    pub fn batch_delete_attributes(
        &self,
        domain: &str,
        items: &[(String, Option<Vec<DeletableAttribute>>)],
    ) -> Result<()> {
        check_batch_shape(items)?;
        let dom = self.domain(domain)?;
        let shards: Vec<u32> = dom.route_all(items.iter().map(|(n, _)| n.as_str()));
        let bytes_in: u64 = items.iter().map(|(name, _)| name.len() as u64).sum();
        if !self.admit(&dom, &shards) {
            self.world
                .record_throttled(Op::SdbBatchDeleteAttributes, bytes_in);
            for &shard in &BTreeSet::from_iter(shards.iter().copied()) {
                self.world.record_shard_touch(Service::SimpleDb, shard);
            }
            dom.maybe_split();
            return Err(SdbError::ServiceUnavailable {
                domain: domain.to_string(),
            });
        }
        let touched = dom.with_cells_multi(&shards, |guards| {
            let mut per_shard = BTreeMap::<u32, u64>::new();
            for &shard in &shards {
                *per_shard.entry(shard).or_insert(0) += 1;
            }
            let gating = per_shard.values().copied().max().unwrap_or(0);
            self.world.record_batch(
                Op::SdbBatchDeleteAttributes,
                items.len() as u64,
                bytes_in,
                0,
                gating,
            );
            for &shard in per_shard.keys() {
                self.world.record_shard_touch(Service::SimpleDb, shard);
            }
            let mut stored_delta = 0i64;
            let now = self.world.now();
            for ((item_name, specs), &shard) in items.iter().zip(&shards) {
                let map = guards.get_mut(shard);
                let Some(item) = map.read_latest(&item_name.to_string()) else {
                    continue;
                };
                let before_bytes = byte_size(&item);
                let new_state = apply_delete(item, specs.as_deref());
                stored_delta +=
                    new_state.as_ref().map(byte_size).unwrap_or(0) as i64 - before_bytes as i64;
                map.write(&self.world, item_name.to_string(), new_state);
                map.gc(now);
            }
            self.world.adjust_stored(Service::SimpleDb, stored_delta);
            per_shard.keys().copied().collect::<Vec<u32>>()
        });
        dom.note_ops(&touched);
        Ok(())
    }

    /// `Query`: returns matching item names. `expression = None` matches
    /// every item. Fans out across shards; each page of one paginated
    /// scan reads the replica view pinned in its token.
    ///
    /// # Errors
    ///
    /// [`SdbError::NoSuchDomain`], [`SdbError::InvalidQuery`],
    /// [`SdbError::InvalidNextToken`].
    pub fn query(
        &self,
        domain: &str,
        expression: Option<&str>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<QueryResult> {
        let (rows, next, scanned) = self.run_query(domain, expression, max_items, next_token)?;
        let item_names: Vec<String> = rows.into_iter().map(|(n, _)| n).collect();
        let bytes: u64 = item_names
            .iter()
            .map(|n| n.len() as u64 + ITEM_ENTRY_OVERHEAD)
            .sum();
        self.world.record_scan(
            Op::SdbQuery,
            expression.map(|e| e.len() as u64).unwrap_or(0),
            bytes,
            scanned,
        );
        Ok(QueryResult {
            item_names,
            next_token: next,
        })
    }

    /// `QueryWithAttributes`: matching items together with (optionally a
    /// subset of) their attributes.
    ///
    /// # Errors
    ///
    /// As [`SimpleDb::query`].
    pub fn query_with_attributes(
        &self,
        domain: &str,
        expression: Option<&str>,
        attribute_filter: Option<&[String]>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<QueryWithAttributesResult> {
        let (rows, next, scanned) = self.run_query(domain, expression, max_items, next_token)?;
        let items: Vec<ResultItem> = rows
            .into_iter()
            .map(|(name, state)| {
                let mut attributes = to_attributes(&state);
                if let Some(filter) = attribute_filter {
                    attributes.retain(|a| filter.contains(&a.name));
                }
                ResultItem { name, attributes }
            })
            .collect();
        let bytes: u64 = items
            .iter()
            .map(|i| {
                i.name.len() as u64
                    + ITEM_ENTRY_OVERHEAD
                    + i.attributes
                        .iter()
                        .map(|a| (a.name.len() + a.value.len()) as u64)
                        .sum::<u64>()
            })
            .sum();
        self.world.record_scan(
            Op::SdbQueryWithAttributes,
            expression.map(|e| e.len() as u64).unwrap_or(0),
            bytes,
            scanned,
        );
        Ok(QueryWithAttributesResult {
            items,
            next_token: next,
        })
    }

    /// `Select`: the SQL-form interface. Fans out across shards like
    /// [`SimpleDb::query`], with the same shard-aware tokens.
    ///
    /// # Errors
    ///
    /// As [`SimpleDb::query`]; the domain named in the statement must
    /// exist.
    pub fn select(&self, sql: &str, next_token: Option<&str>) -> Result<SelectResult> {
        let stmt = SelectStatement::parse(sql)?;
        let dom = self.domain(&stmt.domain)?;
        let (result, touched) = dom.read_view(|view| -> Result<(SelectResult, Vec<u32>)> {
            // Validate any client token up front — `count(*)` is
            // unpaginated and ignores the cursor, but a malformed or
            // foreign-layout token must fail on every API the same way.
            let token = decode_token(next_token, view, &self.world)?;
            let touched = view.sorted_ids();

            if stmt.output == Output::Count {
                // count(*) is unpaginated: one fan-out over freshly
                // sampled replica views, counting matches without
                // materialising a single item.
                let pin = view.pin_replicas(&self.world);
                let now = self.world.now();
                self.world.record_shard_touches(Service::SimpleDb, &touched);
                let mut matched = 0u64;
                let mut scanned = 0u64;
                for pos in 0..view.shard_count() {
                    let replica = view
                        .resolve_pin(&pin, pos)
                        .expect("a fresh pin covers every shard");
                    view.with_cells_at(pos, |map| {
                        let (m, examined) = map.visible_count_on(replica, now, |name, item| {
                            stmt.selects_row(name, item)
                        });
                        matched += m;
                        scanned = scanned.max(examined);
                    });
                }
                let count = matched.min(stmt.limit as u64);
                self.world
                    .record_scan(Op::SdbSelect, sql.len() as u64, 16, scanned);
                return Ok((
                    SelectResult {
                        items: Vec::new(),
                        count: Some(count),
                        next_token: None,
                    },
                    touched,
                ));
            }

            let (page, next, scanned) = if stmt.order_by.is_some() {
                // Sorted output: global order can interleave shards
                // arbitrarily, so paginate by offset over the pinned views.
                let (pin, offset) = match token {
                    Some(PageToken {
                        pin,
                        cursor: Cursor::Offset(o),
                    }) => (pin, o),
                    Some(_) => return Err(SdbError::InvalidNextToken),
                    None => (view.pin_replicas(&self.world), 0),
                };
                let (rows, scanned) = self.collect_entries(view, &pin, |_, _| true)?;
                let matched = stmt.apply(rows);
                let page: Vec<(String, ItemState)> = matched
                    .iter()
                    .skip(offset)
                    .take(stmt.limit)
                    .cloned()
                    .collect();
                let consumed = offset + page.len();
                let next = (consumed < matched.len()).then(|| {
                    PageToken {
                        pin,
                        cursor: Cursor::Offset(consumed),
                    }
                    .encode()
                });
                (page, next, scanned)
            } else {
                // Name-ordered output: cursor-based merge across shards.
                let condition = stmt.condition.clone();
                self.merged_page(view, token, stmt.limit, |name, item| {
                    condition
                        .as_ref()
                        .map(|c| c.matches(name, item))
                        .unwrap_or(true)
                })?
            };

            let items: Vec<ResultItem> = page
                .into_iter()
                .map(|(name, state)| {
                    let attributes = match &stmt.output {
                        Output::ItemName => Vec::new(),
                        Output::All => to_attributes(&state),
                        Output::Attrs(list) => to_attributes(&state)
                            .into_iter()
                            .filter(|a| list.contains(&a.name))
                            .collect(),
                        Output::Count => unreachable!("count handled above"),
                    };
                    ResultItem { name, attributes }
                })
                .collect();
            let bytes: u64 = items
                .iter()
                .map(|i| {
                    i.name.len() as u64
                        + ITEM_ENTRY_OVERHEAD
                        + i.attributes
                            .iter()
                            .map(|a| (a.name.len() + a.value.len()) as u64)
                            .sum::<u64>()
                })
                .sum();
            self.world
                .record_scan(Op::SdbSelect, sql.len() as u64, bytes, scanned);
            Ok((
                SelectResult {
                    items,
                    count: None,
                    next_token: next,
                },
                touched,
            ))
        })?;
        dom.note_ops(&touched);
        Ok(result)
    }

    // --- authoritative (non-billed) views for invariant checks ---

    /// The newest committed attributes of an item, ignoring replication
    /// lag and without billing. For tests and property validators only.
    pub fn latest_item(&self, domain: &str, item_name: &str) -> Option<Vec<Attribute>> {
        let dom = self.domain(domain).ok()?;
        dom.with_cells(item_name, |_, map| {
            map.read_latest(&item_name.to_string())
                .map(|s| to_attributes(&s))
        })
    }

    /// Authoritative list of live item names, unbilled. For tests and
    /// property validators only.
    pub fn latest_item_names(&self, domain: &str) -> Vec<String> {
        let Ok(dom) = self.domain(domain) else {
            return Vec::new();
        };
        let mut names: Vec<String> = dom.read_view(|view| {
            let mut names = Vec::new();
            for pos in 0..view.shard_count() {
                view.with_cells_at(pos, |map| {
                    names.extend(map.iter_latest().map(|(k, _)| k.clone()));
                });
            }
            names
        });
        names.sort_unstable();
        names
    }

    /// Looks a domain up, cloning its handle out so the domains map lock
    /// is held only for the lookup.
    fn domain(&self, domain: &str) -> Result<Arc<Domain>> {
        self.inner
            .domains
            .read()
            .get(domain)
            .cloned()
            .ok_or_else(|| SdbError::NoSuchDomain {
                domain: domain.to_string(),
            })
    }

    /// Fans out over every shard, collecting the entries visible on each
    /// shard's pinned replica that `pred` accepts, merged in item-name
    /// order. Records one shard touch per shard.
    fn collect_entries<F>(
        &self,
        view: &MapView<'_, ItemState>,
        pin: &ReplicaPin,
        mut pred: F,
    ) -> Result<(Vec<(String, ItemState)>, u64)>
    where
        F: FnMut(&str, &ItemState) -> bool,
    {
        let now = self.world.now();
        self.world
            .record_shard_touches(Service::SimpleDb, &view.sorted_ids());
        let mut rows: Vec<(String, ItemState)> = Vec::new();
        let mut scanned = 0u64;
        for pos in 0..view.shard_count() {
            let replica = view
                .resolve_pin(pin, pos)
                .ok_or(SdbError::InvalidNextToken)?;
            view.with_cells_at(pos, |map| {
                // Shards scan in parallel: the largest one gates the call.
                scanned = scanned.max(map.cell_count() as u64);
                rows.extend(
                    map.visible_entries_on(replica, now)
                        .into_iter()
                        .filter(|(k, v)| pred(k, v)),
                );
            });
        }
        // Shards hold disjoint key ranges only in hash space; restore
        // global item-name order.
        rows.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        Ok((rows, scanned))
    }

    /// One page of a name-ordered scan: each shard contributes its next
    /// visible matches after the cursor under the shared adaptive-quota
    /// merge ([`simworld::merged_shard_page`] — the same machinery the
    /// sharded S3 LIST runs on), and the page is the first `page_size`
    /// of the merge. The returned token resumes strictly after the last
    /// name served, carrying the same replica pin — so a shard that
    /// splits between pages keeps serving the walk from its parent's
    /// pinned replica.
    fn merged_page<F>(
        &self,
        view: &MapView<'_, ItemState>,
        token: Option<PageToken>,
        page_size: usize,
        mut pred: F,
    ) -> Result<(Vec<(String, ItemState)>, Option<String>, u64)>
    where
        F: FnMut(&str, &ItemState) -> bool,
    {
        let (pin, after) = match token {
            Some(PageToken {
                pin,
                cursor: Cursor::After(name),
            }) => (pin, Some(name)),
            Some(_) => return Err(SdbError::InvalidNextToken),
            None => (view.pin_replicas(&self.world), None),
        };
        let now = self.world.now();
        self.world
            .record_shard_touches(Service::SimpleDb, &view.sorted_ids());
        let replicas: Vec<usize> = (0..view.shard_count())
            .map(|pos| {
                view.resolve_pin(&pin, pos)
                    .ok_or(SdbError::InvalidNextToken)
            })
            .collect::<Result<_>>()?;
        let (candidates, more, scanned) = simworld::merged_shard_page(
            view.shard_count(),
            after,
            page_size,
            |i, cursor, quota| {
                view.with_cells_at(i, |map| {
                    map.visible_page_on(replicas[i], now, cursor, quota, |k, v| pred(k, v))
                })
            },
        );
        let next = if more {
            let last = candidates
                .last()
                .map(|(n, _)| n.clone())
                .expect("page_size >= 1, so a truncated page is non-empty");
            Some(
                PageToken {
                    pin,
                    cursor: Cursor::After(last),
                }
                .encode(),
            )
        } else {
            None
        };
        Ok((candidates, next, scanned))
    }

    /// Shared implementation of `Query`/`QueryWithAttributes`.
    fn run_query(
        &self,
        domain: &str,
        expression: Option<&str>,
        max_items: Option<usize>,
        next_token: Option<&str>,
    ) -> Result<(Vec<(String, ItemState)>, Option<String>, u64)> {
        let parsed = expression.map(QueryExpr::parse).transpose()?;
        let page_size = max_items
            .unwrap_or(QUERY_DEFAULT_PAGE)
            .clamp(1, QUERY_MAX_PAGE);
        let dom = self.domain(domain)?;
        type Page = (Vec<(String, ItemState)>, Option<String>, u64);
        let (out, touched) = dom.read_view(|view| -> Result<(Page, Vec<u32>)> {
            let token = decode_token(next_token, view, &self.world)?;
            let touched = view.sorted_ids();

            if parsed.as_ref().and_then(|q| q.sort()).is_some() {
                // Sorted output: offset cursor over the pinned views.
                let q = parsed.as_ref().expect("sort implies a parsed expression");
                let (pin, offset) = match token {
                    Some(PageToken {
                        pin,
                        cursor: Cursor::Offset(o),
                    }) => (pin, o),
                    Some(_) => return Err(SdbError::InvalidNextToken),
                    None => (view.pin_replicas(&self.world), 0),
                };
                let (rows, scanned) =
                    self.collect_entries(view, &pin, |_, item| q.matches(item))?;
                let rows = q.apply_sort(rows);
                let page: Vec<(String, ItemState)> =
                    rows.iter().skip(offset).take(page_size).cloned().collect();
                let consumed = offset + page.len();
                let next = (consumed < rows.len()).then(|| {
                    PageToken {
                        pin,
                        cursor: Cursor::Offset(consumed),
                    }
                    .encode()
                });
                return Ok(((page, next, scanned), touched));
            }

            let page = self.merged_page(view, token, page_size, |_, item| {
                parsed.as_ref().map(|q| q.matches(item)).unwrap_or(true)
            })?;
            Ok((page, touched))
        })?;
        dom.note_ops(&touched);
        Ok(out)
    }
}

/// Applies one `PutAttributes` attribute list to an item's current
/// state: the replace-once rule (existing values of a `replace`d name
/// drop once per call, before any of this call's values land), then the
/// 256-pair item cap.
fn apply_put(
    item_name: &str,
    current: Option<ItemState>,
    attrs: &[ReplaceableAttribute],
) -> Result<ItemState> {
    let mut item = current.unwrap_or_default();
    let mut replaced: Vec<&str> = Vec::new();
    for a in attrs {
        if a.replace && !replaced.contains(&a.name.as_str()) {
            item.remove(&a.name);
            replaced.push(&a.name);
        }
    }
    for a in attrs {
        item.entry(a.name.clone())
            .or_default()
            .insert(a.value.clone());
    }
    let pairs = pair_count(&item);
    if pairs > MAX_PAIRS_PER_ITEM {
        return Err(SdbError::TooManyAttributesOnItem {
            item: item_name.to_string(),
            pairs,
        });
    }
    Ok(item)
}

/// Applies `DeleteAttributes` specs to an item's current state; `None`
/// specs (or an emptied item) erase the item entirely.
fn apply_delete(mut item: ItemState, specs: Option<&[DeletableAttribute]>) -> Option<ItemState> {
    let specs = specs?;
    for spec in specs {
        match &spec.value {
            None => {
                item.remove(&spec.name);
            }
            Some(v) => {
                if let Some(values) = item.get_mut(&spec.name) {
                    values.remove(v);
                    if values.is_empty() {
                        item.remove(&spec.name);
                    }
                }
            }
        }
    }
    // An item with no attributes ceases to exist.
    if item.is_empty() {
        None
    } else {
        Some(item)
    }
}

/// Shared batch-shape validation: item count, duplicate names.
fn check_batch_shape<T>(items: &[(String, T)]) -> Result<()> {
    if items.is_empty() {
        return Err(SdbError::EmptyBatch);
    }
    if items.len() > MAX_BATCH_ITEMS {
        return Err(SdbError::TooManyItemsInBatch {
            submitted: items.len(),
        });
    }
    let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (name, _) in items {
        if !seen.insert(name) {
            return Err(SdbError::DuplicateItemInBatch { item: name.clone() });
        }
    }
    Ok(())
}

// --- shard-aware pagination tokens ---

/// Cursor half of a [`PageToken`].
#[derive(Clone, PartialEq, Eq, Debug)]
enum Cursor {
    /// Resume strictly after this item name (name-ordered scans).
    After(String),
    /// Global offset into the sorted row set (sorted scans).
    Offset(usize),
}

/// A decoded `next_token`: one pinned replica per stable shard id plus
/// a cursor.
#[derive(Clone, PartialEq, Eq, Debug)]
struct PageToken {
    /// Replica pinned per shard id at the scan's first page.
    pin: ReplicaPin,
    cursor: Cursor,
}

impl PageToken {
    /// Wire format: `s<pins>;p<id:r.id:r...>;a<hex(name)>` for
    /// resume-after-name cursors, `s<pins>;p<...>;o<offset>` for offset
    /// cursors. Pins are keyed by stable shard id (ascending), which is
    /// what lets a token minted before a split keep working after it.
    /// The item name is hex-encoded so the token survives any byte the
    /// 1 KB item-name budget allows.
    fn encode(&self) -> String {
        let pins = self
            .pin
            .iter()
            .map(|(id, r)| format!("{id}:{r}"))
            .collect::<Vec<_>>()
            .join(".");
        match &self.cursor {
            Cursor::After(name) => {
                format!("s{};p{};a{}", self.pin.len(), pins, hex_encode(name))
            }
            Cursor::Offset(o) => format!("s{};p{};o{}", self.pin.len(), pins, o),
        }
    }

    fn decode(token: &str) -> Option<PageToken> {
        let rest = token.strip_prefix('s')?;
        let (count, rest) = rest.split_once(';')?;
        let count: usize = count.parse().ok()?;
        let rest = rest.strip_prefix('p')?;
        let (pins, cursor) = rest.split_once(';')?;
        let mut pin = ReplicaPin::new();
        if !pins.is_empty() {
            for entry in pins.split('.') {
                let (id, r) = entry.split_once(':')?;
                let id: u32 = id.parse().ok()?;
                if pin.get(id).is_some() {
                    return None; // duplicate shard id
                }
                pin.insert(id, r.parse::<usize>().ok()?);
            }
        }
        if pin.len() != count {
            return None;
        }
        let cursor = if let Some(hex) = cursor.strip_prefix('a') {
            Cursor::After(hex_decode(hex)?)
        } else if let Some(o) = cursor.strip_prefix('o') {
            Cursor::Offset(o.parse().ok()?)
        } else {
            return None;
        };
        Some(PageToken { pin, cursor })
    }
}

/// Decodes and validates a client token against the domain's current
/// shard layout and the world's replica count: every pinned id must
/// name a live shard (ids never disappear — shards split, never merge)
/// and every current shard must resolve to a pinned ancestor.
fn decode_token(
    token: Option<&str>,
    view: &MapView<'_, ItemState>,
    world: &SimWorld,
) -> Result<Option<PageToken>> {
    let Some(token) = token else {
        return Ok(None);
    };
    let parsed = PageToken::decode(token).ok_or(SdbError::InvalidNextToken)?;
    let replica_bound = world.replicas().max(1);
    if parsed.pin.iter().any(|(_, r)| r >= replica_bound) || !view.pin_ids_known(&parsed.pin) {
        return Err(SdbError::InvalidNextToken);
    }
    for pos in 0..view.shard_count() {
        if view.resolve_pin(&parsed.pin, pos).is_none() {
            return Err(SdbError::InvalidNextToken);
        }
    }
    Ok(Some(parsed))
}

fn hex_encode(s: &str) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(s.len() * 2);
    for b in s.as_bytes() {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

fn hex_decode(hex: &str) -> Option<String> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let raw = hex.as_bytes();
    for pair in raw.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        bytes.push((hi * 16 + lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

//! Unit tests for the SimpleDB service simulator.

use simworld::{Consistency, LatencyModel, Op, Service, SimConfig, SimDuration, SimWorld};

use crate::{
    Attribute, DeletableAttribute, ReplaceableAttribute, SdbError, SimpleDb, DEFAULT_SHARDS,
    MAX_DOMAINS, QUERY_MAX_PAGE,
};

fn counting() -> (SimWorld, SimpleDb) {
    let world = SimWorld::counting();
    let db = SimpleDb::new(&world);
    db.create_domain("d").unwrap();
    (world, db)
}

fn eventual(seed: u64) -> (SimWorld, SimpleDb) {
    let world = SimWorld::with_config(SimConfig {
        seed,
        consistency: Consistency::eventual(SimDuration::from_secs(30)),
        latency: LatencyModel::zero(),
        replicas: 3,
    });
    let db = SimpleDb::new(&world);
    db.create_domain("d").unwrap();
    (world, db)
}

fn add(name: impl Into<String>, value: impl Into<String>) -> ReplaceableAttribute {
    ReplaceableAttribute::add(name, value)
}

#[test]
fn put_and_get_round_trip() {
    let (_, db) = counting();
    db.put_attributes("d", "item", &[add("a", "1"), add("b", "2")])
        .unwrap();
    let attrs = db.get_attributes("d", "item", None).unwrap();
    assert_eq!(
        attrs,
        vec![Attribute::new("a", "1"), Attribute::new("b", "2")]
    );
}

#[test]
fn get_with_name_filter() {
    let (_, db) = counting();
    db.put_attributes("d", "item", &[add("a", "1"), add("b", "2")])
        .unwrap();
    let attrs = db.get_attributes("d", "item", Some(&["b"])).unwrap();
    assert_eq!(attrs, vec![Attribute::new("b", "2")]);
}

#[test]
fn get_absent_item_returns_empty() {
    let (_, db) = counting();
    assert!(db.get_attributes("d", "ghost", None).unwrap().is_empty());
}

#[test]
fn multivalued_attributes_accumulate() {
    let (_, db) = counting();
    db.put_attributes("d", "i", &[add("phone", "111")]).unwrap();
    db.put_attributes("d", "i", &[add("phone", "222")]).unwrap();
    let attrs = db.get_attributes("d", "i", None).unwrap();
    assert_eq!(attrs.len(), 2);
}

#[test]
fn replace_drops_previous_values() {
    let (_, db) = counting();
    db.put_attributes("d", "i", &[add("phone", "111"), add("phone", "222")])
        .unwrap();
    db.put_attributes("d", "i", &[ReplaceableAttribute::replace("phone", "333")])
        .unwrap();
    let attrs = db.get_attributes("d", "i", None).unwrap();
    assert_eq!(attrs, vec![Attribute::new("phone", "333")]);
}

#[test]
fn replace_within_one_call_keeps_all_new_values() {
    let (_, db) = counting();
    db.put_attributes("d", "i", &[add("t", "old")]).unwrap();
    db.put_attributes(
        "d",
        "i",
        &[
            ReplaceableAttribute::replace("t", "new1"),
            ReplaceableAttribute::replace("t", "new2"),
        ],
    )
    .unwrap();
    let attrs = db.get_attributes("d", "i", None).unwrap();
    assert_eq!(
        attrs.len(),
        2,
        "both new values survive; only pre-call values dropped"
    );
}

#[test]
fn put_is_idempotent() {
    let (_, db) = counting();
    let attrs = [add("a", "1"), add("b", "2")];
    db.put_attributes("d", "i", &attrs).unwrap();
    let first = db.get_attributes("d", "i", None).unwrap();
    db.put_attributes("d", "i", &attrs).unwrap();
    db.put_attributes("d", "i", &attrs).unwrap();
    assert_eq!(db.get_attributes("d", "i", None).unwrap(), first);
}

#[test]
fn limits_enforced() {
    let (_, db) = counting();
    // Empty list
    assert!(matches!(
        db.put_attributes("d", "i", &[]),
        Err(SdbError::EmptyAttributeList)
    ));
    // >100 attributes per call
    let many: Vec<_> = (0..101).map(|i| add("a", format!("{i}"))).collect();
    assert!(matches!(
        db.put_attributes("d", "i", &many),
        Err(SdbError::TooManyAttributesInCall { submitted: 101 })
    ));
    // 256 pairs per item: three calls of 100/100/57 unique values
    let batch = |lo: usize, n: usize| -> Vec<ReplaceableAttribute> {
        (lo..lo + n).map(|i| add("v", format!("{i:04}"))).collect()
    };
    db.put_attributes("d", "big", &batch(0, 100)).unwrap();
    db.put_attributes("d", "big", &batch(100, 100)).unwrap();
    assert!(matches!(
        db.put_attributes("d", "big", &batch(200, 57)),
        Err(SdbError::TooManyAttributesOnItem { .. })
    ));
    // exactly 256 is fine
    db.put_attributes("d", "big", &batch(200, 56)).unwrap();
    // 1KB name/value limits
    let long = "x".repeat(1025);
    assert!(db
        .put_attributes("d", "i", &[add(long.clone(), "v")])
        .is_err());
    assert!(db
        .put_attributes("d", "i", &[add("n", long.clone())])
        .is_err());
    assert!(db.put_attributes("d", &long, &[add("n", "v")]).is_err());
}

#[test]
fn missing_domain_errors() {
    let (_, db) = counting();
    assert!(matches!(
        db.put_attributes("zzz", "i", &[add("a", "1")]),
        Err(SdbError::NoSuchDomain { .. })
    ));
    assert!(matches!(
        db.query("zzz", None, None, None),
        Err(SdbError::NoSuchDomain { .. })
    ));
    assert!(matches!(
        db.select("select * from zzz", None),
        Err(SdbError::NoSuchDomain { .. })
    ));
}

#[test]
fn create_domain_is_idempotent_but_limited() {
    let (_, db) = counting();
    db.create_domain("d").unwrap(); // second create: fine
    for i in 0..(MAX_DOMAINS - 1) {
        db.create_domain(format!("extra{i}")).unwrap();
    }
    assert!(matches!(
        db.create_domain("one-too-many"),
        Err(SdbError::TooManyDomains { .. })
    ));
    assert_eq!(db.list_domains().len(), MAX_DOMAINS);
}

#[test]
fn delete_attribute_variants() {
    let (_, db) = counting();
    db.put_attributes("d", "i", &[add("a", "1"), add("a", "2"), add("b", "3")])
        .unwrap();
    // delete one pair
    db.delete_attributes("d", "i", Some(&[DeletableAttribute::pair("a", "1")]))
        .unwrap();
    assert_eq!(
        db.get_attributes("d", "i", None).unwrap(),
        vec![Attribute::new("a", "2"), Attribute::new("b", "3")]
    );
    // delete all values of a name
    db.delete_attributes("d", "i", Some(&[DeletableAttribute::all_of("a")]))
        .unwrap();
    assert_eq!(
        db.get_attributes("d", "i", None).unwrap(),
        vec![Attribute::new("b", "3")]
    );
    // delete the whole item
    db.delete_attributes("d", "i", None).unwrap();
    assert!(db.get_attributes("d", "i", None).unwrap().is_empty());
    assert!(db.latest_item_names("d").is_empty());
}

#[test]
fn delete_is_idempotent() {
    let (_, db) = counting();
    db.delete_attributes("d", "never-existed", None).unwrap();
    db.put_attributes("d", "i", &[add("a", "1")]).unwrap();
    db.delete_attributes("d", "i", None).unwrap();
    db.delete_attributes("d", "i", None).unwrap();
    db.delete_attributes("d", "i", Some(&[DeletableAttribute::all_of("a")]))
        .unwrap();
}

#[test]
fn deleting_last_attribute_removes_item() {
    let (_, db) = counting();
    db.put_attributes("d", "i", &[add("a", "1")]).unwrap();
    db.delete_attributes("d", "i", Some(&[DeletableAttribute::pair("a", "1")]))
        .unwrap();
    assert!(db.latest_item_names("d").is_empty());
}

#[test]
fn query_filters_and_returns_names() {
    let (_, db) = counting();
    db.put_attributes("d", "f1", &[add("type", "file")])
        .unwrap();
    db.put_attributes("d", "p1", &[add("type", "process")])
        .unwrap();
    db.put_attributes("d", "f2", &[add("type", "file")])
        .unwrap();
    let r = db
        .query("d", Some("['type' = 'file']"), None, None)
        .unwrap();
    assert_eq!(r.item_names, vec!["f1", "f2"]);
    assert!(r.next_token.is_none());
}

#[test]
fn query_none_matches_all() {
    let (_, db) = counting();
    db.put_attributes("d", "a", &[add("x", "1")]).unwrap();
    db.put_attributes("d", "b", &[add("y", "2")]).unwrap();
    assert_eq!(db.query("d", None, None, None).unwrap().item_names.len(), 2);
}

#[test]
fn query_pagination_round_trip() {
    let (_, db) = counting();
    for i in 0..25 {
        db.put_attributes("d", &format!("i{i:02}"), &[add("t", "x")])
            .unwrap();
    }
    let mut names = Vec::new();
    let mut token: Option<String> = None;
    let mut pages = 0;
    loop {
        let r = db
            .query("d", Some("['t' = 'x']"), Some(10), token.as_deref())
            .unwrap();
        names.extend(r.item_names);
        pages += 1;
        match r.next_token {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    assert_eq!(pages, 3);
    assert_eq!(names.len(), 25);
    assert!(
        names.windows(2).all(|w| w[0] < w[1]),
        "name-ordered across pages"
    );
}

#[test]
fn query_page_size_clamped() {
    let (_, db) = counting();
    for i in 0..(QUERY_MAX_PAGE + 50) {
        db.put_attributes("d", &format!("i{i:04}"), &[add("t", "x")])
            .unwrap();
    }
    let r = db.query("d", None, Some(100_000), None).unwrap();
    assert_eq!(r.item_names.len(), QUERY_MAX_PAGE);
    assert!(r.next_token.is_some());
}

#[test]
fn invalid_next_token_rejected() {
    let (_, db) = counting();
    assert!(matches!(
        db.query("d", None, None, Some("not-a-number")),
        Err(SdbError::InvalidNextToken)
    ));
}

#[test]
fn query_with_attributes_and_filter() {
    let (_, db) = counting();
    db.put_attributes("d", "i", &[add("a", "1"), add("b", "2")])
        .unwrap();
    let r = db
        .query_with_attributes(
            "d",
            Some("['a' = '1']"),
            Some(&["b".to_string()]),
            None,
            None,
        )
        .unwrap();
    assert_eq!(r.items.len(), 1);
    assert_eq!(r.items[0].attributes, vec![Attribute::new("b", "2")]);
}

#[test]
fn select_projection_forms() {
    let (_, db) = counting();
    db.put_attributes("d", "i1", &[add("a", "1"), add("b", "2")])
        .unwrap();
    db.put_attributes("d", "i2", &[add("a", "9")]).unwrap();

    let all = db.select("select * from d where a = '1'", None).unwrap();
    assert_eq!(all.items[0].attributes.len(), 2);

    let names = db.select("select itemName() from d", None).unwrap();
    assert!(names.items.iter().all(|i| i.attributes.is_empty()));
    assert_eq!(names.items.len(), 2);

    let proj = db.select("select b from d where a = '1'", None).unwrap();
    assert_eq!(proj.items[0].attributes, vec![Attribute::new("b", "2")]);

    let count = db.select("select count(*) from d", None).unwrap();
    assert_eq!(count.count, Some(2));
    assert!(count.items.is_empty());
}

#[test]
fn count_rejects_malformed_tokens_like_every_other_path() {
    let (_, db) = counting();
    db.put_attributes("d", "i1", &[add("a", "1")]).unwrap();
    assert!(matches!(
        db.select("select count(*) from d", Some("garbage")),
        Err(SdbError::InvalidNextToken)
    ));
}

#[test]
fn select_pagination() {
    let (_, db) = counting();
    for i in 0..12 {
        db.put_attributes("d", &format!("i{i:02}"), &[add("t", "x")])
            .unwrap();
    }
    let p1 = db.select("select itemName() from d limit 5", None).unwrap();
    assert_eq!(p1.items.len(), 5);
    let p2 = db
        .select("select itemName() from d limit 5", p1.next_token.as_deref())
        .unwrap();
    assert_eq!(p2.items.len(), 5);
    let p3 = db
        .select("select itemName() from d limit 5", p2.next_token.as_deref())
        .unwrap();
    assert_eq!(p3.items.len(), 2);
    assert!(p3.next_token.is_none());
}

#[test]
fn eventual_consistency_hides_fresh_inserts_sometimes() {
    let (world, db) = eventual(3);
    db.put_attributes("d", "fresh", &[add("t", "x")]).unwrap();
    let mut missed = false;
    for _ in 0..64 {
        if db
            .query("d", Some("['t' = 'x']"), None, None)
            .unwrap()
            .item_names
            .is_empty()
        {
            missed = true;
            break;
        }
    }
    assert!(
        missed,
        "a query right after insert should sometimes miss it (§2.2)"
    );
    world.settle();
    assert_eq!(
        db.query("d", Some("['t' = 'x']"), None, None)
            .unwrap()
            .item_names
            .len(),
        1
    );
}

#[test]
fn billing_records_ops_and_bytes() {
    let (world, db) = counting();
    let before = world.meters();
    db.put_attributes("d", "i", &[add("abc", "defg")]).unwrap();
    let delta = world.meters() - before;
    assert_eq!(delta.op_count(Op::SdbPutAttributes), 1);
    assert_eq!(
        delta.bytes_in(),
        ("abc".len() + "defg".len() + "i".len()) as u64
    );

    let before = world.meters();
    let _ = db.query("d", Some("['abc' = 'defg']"), None, None).unwrap();
    let delta = world.meters() - before;
    assert_eq!(delta.op_count(Op::SdbQuery), 1);
    assert!(delta.bytes_out() > 0);
}

#[test]
fn stored_bytes_gauge_tracks_item_size() {
    let (world, db) = counting();
    db.put_attributes("d", "i", &[add("aa", "bb")]).unwrap();
    assert_eq!(world.meters().stored_bytes(Service::SimpleDb), 4);
    db.delete_attributes("d", "i", None).unwrap();
    assert_eq!(world.meters().stored_bytes(Service::SimpleDb), 0);
}

#[test]
fn select_on_missing_domain_errors_before_billing_items() {
    let (_, db) = counting();
    let err = db.select("select * from nowhere", None).unwrap_err();
    assert!(matches!(err, SdbError::NoSuchDomain { .. }));
}

#[test]
fn query_sort_via_expression() {
    let (_, db) = counting();
    db.put_attributes("d", "low", &[add("t", "x"), add("rank", "1")])
        .unwrap();
    db.put_attributes("d", "high", &[add("t", "x"), add("rank", "9")])
        .unwrap();
    let r = db
        .query("d", Some("['t' = 'x'] sort 'rank' desc"), None, None)
        .unwrap();
    assert_eq!(r.item_names, vec!["high", "low"]);
}

#[test]
fn clones_share_state() {
    let (_, db) = counting();
    let db2 = db.clone();
    db.put_attributes("d", "i", &[add("a", "1")]).unwrap();
    assert_eq!(db2.get_attributes("d", "i", None).unwrap().len(), 1);
}

// --- sharding ---

fn eventual_sharded(seed: u64, shards: usize) -> (SimWorld, SimpleDb) {
    let world = SimWorld::with_config(SimConfig {
        seed,
        consistency: Consistency::eventual(SimDuration::from_secs(30)),
        latency: LatencyModel::zero(),
        replicas: 3,
    });
    let db = SimpleDb::with_shards(&world, shards);
    db.create_domain("d").unwrap();
    (world, db)
}

#[test]
fn shard_count_defaults_and_clamps() {
    let world = SimWorld::counting();
    assert_eq!(SimpleDb::new(&world).shard_count(), DEFAULT_SHARDS);
    assert_eq!(SimpleDb::with_shards(&world, 0).shard_count(), 1);
    assert_eq!(SimpleDb::with_shards(&world, 7).shard_count(), 7);
    assert_eq!(
        SimpleDb::with_shards(&world, 100_000).shard_count(),
        crate::MAX_SHARDS
    );
}

#[test]
fn point_ops_touch_one_shard_queries_touch_all() {
    let world = SimWorld::counting();
    let db = SimpleDb::with_shards(&world, 4);
    db.create_domain("d").unwrap();
    let before = world.meters();
    db.put_attributes("d", "item", &[add("a", "1")]).unwrap();
    let delta = world.meters() - before;
    let touched: u64 = (0..4)
        .map(|s| delta.shard_op_count(Service::SimpleDb, s))
        .sum();
    assert_eq!(touched, 1, "a put lands on exactly one shard");

    let before = world.meters();
    let _ = db.query("d", None, None, None).unwrap();
    let delta = world.meters() - before;
    for shard in 0..4 {
        assert_eq!(
            delta.shard_op_count(Service::SimpleDb, shard),
            1,
            "a query fans out to shard {shard}"
        );
    }
}

#[test]
fn items_spread_across_shards_and_merge_in_name_order() {
    let (_, db) = counting(); // default 16 shards
    for i in (0..40).rev() {
        db.put_attributes("d", &format!("i{i:02}"), &[add("t", "x")])
            .unwrap();
    }
    let r = db.query("d", None, None, None).unwrap();
    let want: Vec<String> = (0..40).map(|i| format!("i{i:02}")).collect();
    assert_eq!(r.item_names, want, "merge restores global name order");
}

#[test]
fn token_from_a_different_shard_layout_is_rejected() {
    let world = SimWorld::counting();
    let db2 = SimpleDb::with_shards(&world, 2);
    db2.create_domain("d").unwrap();
    for i in 0..10 {
        db2.put_attributes("d", &format!("i{i}"), &[add("t", "x")])
            .unwrap();
    }
    let token = db2
        .query("d", None, Some(3), None)
        .unwrap()
        .next_token
        .expect("more pages");

    let db4 = SimpleDb::with_shards(&world, 4);
    db4.create_domain("d").unwrap();
    db4.put_attributes("d", "i", &[add("t", "x")]).unwrap();
    assert!(matches!(
        db4.query("d", None, Some(3), Some(&token)),
        Err(SdbError::InvalidNextToken)
    ));
}

/// Runs one full paginated `Query` scan, mutating the domain between
/// pages with the supplied closure. Returns every name served.
fn scan_with_churn(db: &SimpleDb, page: usize, mut churn: impl FnMut(u32)) -> Vec<String> {
    let mut names = Vec::new();
    let mut token: Option<String> = None;
    let mut round = 0u32;
    loop {
        let r = db
            .query("d", Some("['t' = 'x']"), Some(page), token.as_deref())
            .unwrap();
        names.extend(r.item_names);
        churn(round);
        round += 1;
        match r.next_token {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    names
}

#[test]
fn paginated_query_never_skips_or_duplicates_under_concurrent_writes() {
    // The acceptance bar of the sharding issue: with shards > 1, a full
    // paginated scan must neither duplicate an item name nor miss an
    // item that was visible in the scanned replica view for the whole
    // scan — no matter what is inserted or deleted between pages.
    for seed in [1u64, 7, 23] {
        let (world, db) = eventual_sharded(seed, 8);
        let stable: Vec<String> = (0..40).map(|i| format!("stable{i:02}")).collect();
        for name in &stable {
            db.put_attributes("d", name, &[add("t", "x")]).unwrap();
        }
        // Fully propagated: visible on every replica for the whole scan.
        world.settle();

        let names = scan_with_churn(&db, 7, |round| {
            // Churn both sides of the key space mid-scan, with the same
            // matching attribute so the filter cannot hide mistakes.
            db.put_attributes("d", &format!("aa-churn{round:02}"), &[add("t", "x")])
                .unwrap();
            db.put_attributes("d", &format!("zz-churn{round:02}"), &[add("t", "x")])
                .unwrap();
            db.put_attributes("d", &format!("stable-churn{round:02}"), &[add("t", "x")])
                .unwrap();
            if round > 0 {
                db.delete_attributes("d", &format!("aa-churn{:02}", round - 1), None)
                    .unwrap();
            }
        });

        let mut seen = std::collections::BTreeSet::new();
        for name in &names {
            assert!(seen.insert(name.clone()), "seed {seed}: duplicate {name}");
        }
        for name in &stable {
            assert!(
                seen.contains(name),
                "seed {seed}: stable item {name} skipped"
            );
        }
    }
}

#[test]
fn paginated_select_never_skips_or_duplicates_under_concurrent_writes() {
    for seed in [3u64, 11] {
        let (world, db) = eventual_sharded(seed, 8);
        let stable: Vec<String> = (0..30).map(|i| format!("stable{i:02}")).collect();
        for name in &stable {
            db.put_attributes("d", name, &[add("t", "x")]).unwrap();
        }
        world.settle();

        let mut names = Vec::new();
        let mut token: Option<String> = None;
        let mut round = 0u32;
        loop {
            let r = db
                .select(
                    "select itemName() from d where t = 'x' limit 7",
                    token.as_deref(),
                )
                .unwrap();
            names.extend(r.items.into_iter().map(|i| i.name));
            db.put_attributes("d", &format!("mid-churn{round:02}"), &[add("t", "x")])
                .unwrap();
            if round > 0 {
                db.delete_attributes("d", &format!("mid-churn{:02}", round - 1), None)
                    .unwrap();
            }
            round += 1;
            match r.next_token {
                Some(t) => token = Some(t),
                None => break,
            }
        }

        let mut seen = std::collections::BTreeSet::new();
        for name in &names {
            assert!(seen.insert(name.clone()), "seed {seed}: duplicate {name}");
        }
        for name in &stable {
            assert!(
                seen.contains(name),
                "seed {seed}: stable item {name} skipped"
            );
        }
    }
}

#[test]
fn pinned_replicas_keep_one_scan_on_one_view_per_shard() {
    // A token pins a replica per shard; a scan started after settling
    // must therefore see exactly the settled state even if fresh writes
    // land mid-scan (they may appear, but the settled items cannot
    // flicker out page-to-page under replica resampling).
    let (world, db) = eventual_sharded(5, 4);
    for i in 0..20 {
        db.put_attributes("d", &format!("i{i:02}"), &[add("t", "x")])
            .unwrap();
    }
    world.settle();
    for trial in 0..16 {
        let names = scan_with_churn(&db, 3, |_| {});
        assert_eq!(names.len(), 20, "trial {trial}: settled scan is complete");
    }
}

// --- batch operations ---

mod batch {
    use super::*;
    use crate::{MAX_BATCH_ITEMS, MAX_PAIRS_PER_BATCH};

    fn put_entry(name: &str, n: usize) -> (String, Vec<ReplaceableAttribute>) {
        (
            name.to_string(),
            (0..n)
                .map(|i| ReplaceableAttribute::add(format!("a{i}"), format!("v{i}")))
                .collect(),
        )
    }

    #[test]
    fn batch_put_writes_all_items_in_one_request() {
        let (world, db) = counting();
        let items: Vec<_> = (0..10)
            .map(|i| put_entry(&format!("item{i:02}"), 3))
            .collect();
        let before = world.meters();
        db.batch_put_attributes("d", &items).unwrap();
        let delta = world.meters() - before;
        assert_eq!(delta.op_count(Op::SdbBatchPutAttributes), 1);
        assert_eq!(delta.batch_entry_count(Op::SdbBatchPutAttributes), 10);
        assert_eq!(delta.op_count(Op::SdbPutAttributes), 0);
        for i in 0..10 {
            let attrs = db
                .get_attributes("d", &format!("item{i:02}"), None)
                .unwrap();
            assert_eq!(attrs.len(), 3, "item{i:02}");
        }
    }

    #[test]
    fn batch_put_equals_point_puts_in_final_state() {
        // Same entries through the point API and the batch API must
        // converge to identical store state.
        let (_, point_db) = counting();
        let (_, batch_db) = counting();
        let items: Vec<_> = (0..8).map(|i| put_entry(&format!("f/{i}"), 4)).collect();
        for (name, attrs) in &items {
            point_db.put_attributes("d", name, attrs).unwrap();
        }
        batch_db.batch_put_attributes("d", &items).unwrap();
        assert_eq!(
            point_db.latest_item_names("d"),
            batch_db.latest_item_names("d")
        );
        for (name, _) in &items {
            assert_eq!(
                point_db.latest_item("d", name),
                batch_db.latest_item("d", name),
                "{name}"
            );
        }
    }

    #[test]
    fn batch_put_respects_replace_semantics() {
        let (_, db) = counting();
        db.put_attributes("d", "x", &[ReplaceableAttribute::add("k", "old")])
            .unwrap();
        db.batch_put_attributes(
            "d",
            &[(
                "x".to_string(),
                vec![
                    ReplaceableAttribute::replace("k", "new1"),
                    ReplaceableAttribute::add("k", "new2"),
                ],
            )],
        )
        .unwrap();
        let got = db.latest_item("d", "x").unwrap();
        assert_eq!(
            got,
            vec![Attribute::new("k", "new1"), Attribute::new("k", "new2")]
        );
    }

    #[test]
    fn batch_shape_violations_mutate_nothing() {
        let (world, db) = counting();
        let before = world.meters();
        assert_eq!(db.batch_put_attributes("d", &[]), Err(SdbError::EmptyBatch));
        let too_many: Vec<_> = (0..MAX_BATCH_ITEMS + 1)
            .map(|i| put_entry(&format!("i{i}"), 1))
            .collect();
        assert_eq!(
            db.batch_put_attributes("d", &too_many),
            Err(SdbError::TooManyItemsInBatch {
                submitted: MAX_BATCH_ITEMS + 1
            })
        );
        let dup = vec![put_entry("same", 1), put_entry("same", 2)];
        assert_eq!(
            db.batch_put_attributes("d", &dup),
            Err(SdbError::DuplicateItemInBatch {
                item: "same".to_string()
            })
        );
        // Two items x 130 attrs = 260 > 256 total.
        let heavy = vec![put_entry("a", 130), put_entry("b", 130)];
        assert_eq!(
            db.batch_put_attributes("d", &heavy),
            Err(SdbError::TooManyAttributesInBatch { submitted: 260 })
        );
        assert_eq!(
            db.batch_put_attributes("nope", &[put_entry("a", 1)]),
            Err(SdbError::NoSuchDomain {
                domain: "nope".to_string()
            })
        );
        let delta = world.meters() - before;
        assert_eq!(delta.total_ops(), 0, "rejected batches leave no trace");
        assert!(db.latest_item_names("d").is_empty());
        assert_eq!(world.meters().stored_bytes(Service::SimpleDb), 0);
    }

    #[test]
    fn rejected_batch_applies_no_entries() {
        // The satellite regression: one entry would push an item past
        // the 256-pair limit — the *whole* batch must be a no-op,
        // including the entries that were individually fine.
        let (world, db) = counting();
        // Pre-fill "full" with 250 pairs through the point API.
        let mut pre: Vec<ReplaceableAttribute> = (0..250)
            .map(|i| ReplaceableAttribute::add(format!("p{i:03}"), "v"))
            .collect();
        for chunk in pre.chunks(100) {
            db.put_attributes("d", "full", chunk).unwrap();
        }
        let stored_before = world.meters().stored_bytes(Service::SimpleDb);
        let ops_before = world.meters();
        // "fresh" is fine on its own; "full" + 10 more pairs is not.
        let batch = vec![
            put_entry("fresh", 2),
            (
                "full".to_string(),
                (0..10)
                    .map(|i| ReplaceableAttribute::add(format!("q{i}"), "w"))
                    .collect(),
            ),
        ];
        let err = db.batch_put_attributes("d", &batch).unwrap_err();
        assert!(
            matches!(err, SdbError::TooManyAttributesOnItem { ref item, pairs } if item == "full" && pairs == 260),
            "{err:?}"
        );
        assert!(
            db.latest_item("d", "fresh").is_none(),
            "no entry of a rejected batch may apply"
        );
        assert_eq!(db.latest_item("d", "full").unwrap().len(), 250);
        assert_eq!(
            world.meters().stored_bytes(Service::SimpleDb),
            stored_before
        );
        let delta = world.meters() - ops_before;
        assert_eq!(delta.total_ops(), 0);
        pre.truncate(0);
    }

    #[test]
    fn batch_delete_removes_items_and_attributes() {
        let (world, db) = counting();
        let items: Vec<_> = (0..6).map(|i| put_entry(&format!("g{i}"), 2)).collect();
        db.batch_put_attributes("d", &items).unwrap();
        let before = world.meters();
        db.batch_delete_attributes(
            "d",
            &[
                ("g0".to_string(), None), // whole item
                (
                    "g1".to_string(),
                    Some(vec![DeletableAttribute::all_of("a0")]), // one name
                ),
                ("absent".to_string(), None), // idempotent
            ],
        )
        .unwrap();
        let delta = world.meters() - before;
        assert_eq!(delta.op_count(Op::SdbBatchDeleteAttributes), 1);
        assert_eq!(delta.batch_entry_count(Op::SdbBatchDeleteAttributes), 3);
        assert!(db.latest_item("d", "g0").is_none());
        assert_eq!(db.latest_item("d", "g1").unwrap().len(), 1);
        assert_eq!(db.latest_item("d", "g2").unwrap().len(), 2);
    }

    #[test]
    fn batch_delete_settles_stored_bytes_exactly() {
        let (world, db) = counting();
        let items: Vec<_> = (0..4).map(|i| put_entry(&format!("h{i}"), 3)).collect();
        db.batch_put_attributes("d", &items).unwrap();
        let entries: Vec<(String, Option<Vec<DeletableAttribute>>)> =
            (0..4).map(|i| (format!("h{i}"), None)).collect();
        db.batch_delete_attributes("d", &entries).unwrap();
        assert_eq!(world.meters().stored_bytes(Service::SimpleDb), 0);
        assert!(db.latest_item_names("d").is_empty());
    }

    #[test]
    fn batch_pairs_cap_admits_a_full_single_item() {
        // A single 256-pair item is exactly one legal batch.
        let (_, db) = counting();
        let entry = put_entry("big", MAX_PAIRS_PER_BATCH);
        db.batch_put_attributes("d", std::slice::from_ref(&entry))
            .unwrap();
        assert_eq!(db.latest_item("d", "big").unwrap().len(), 256);
    }

    #[test]
    fn batch_put_is_cheaper_than_point_puts_in_virtual_time() {
        let elapsed = |batched: bool| {
            let world = SimWorld::new(77);
            let db = SimpleDb::new(&world);
            db.create_domain("d").unwrap();
            let items: Vec<_> = (0..20).map(|i| put_entry(&format!("t{i:02}"), 3)).collect();
            let t0 = world.now();
            if batched {
                for chunk in items.chunks(MAX_BATCH_ITEMS) {
                    db.batch_put_attributes("d", chunk).unwrap();
                }
            } else {
                for (name, attrs) in &items {
                    db.put_attributes("d", name, attrs).unwrap();
                }
            }
            (world.now() - t0).as_micros()
        };
        let point = elapsed(false);
        let batch = elapsed(true);
        assert!(
            batch * 2 < point,
            "batch {batch}µs must undercut point puts {point}µs by >2x"
        );
    }
}

// --- provider-side throttling ---

mod throttle {
    use super::*;
    use simworld::ThrottleConfig;

    /// A throttled endpoint: 1 req/s per shard, burst 1, on a world
    /// whose clock only moves when the test advances it.
    fn throttled() -> (SimWorld, SimpleDb) {
        let (world, db) = counting();
        db.set_throttle(Some(ThrottleConfig::per_shard(1.0)));
        (world, db)
    }

    #[test]
    fn second_write_to_a_hot_shard_is_rejected_billed_and_unapplied() {
        let (world, db) = throttled();
        db.put_attributes("d", "item", &[add("a", "1")]).unwrap();
        let before = world.meters();
        let err = db
            .put_attributes("d", "item", &[add("a", "2")])
            .unwrap_err();
        assert!(err.is_throttle(), "got {err}");
        assert!(matches!(err, SdbError::ServiceUnavailable { ref domain } if domain == "d"));
        // The rejection is billed as a request…
        let phase = world.meters() - before;
        assert_eq!(phase.op_count(Op::SdbPutAttributes), 1);
        assert_eq!(phase.throttled(Service::SimpleDb), 1);
        // …but nothing was applied.
        let attrs = db.latest_item("d", "item").unwrap();
        assert_eq!(attrs, vec![Attribute::new("a", "1")]);
    }

    #[test]
    fn tokens_refill_with_virtual_time() {
        let (world, db) = throttled();
        db.put_attributes("d", "item", &[add("a", "1")]).unwrap();
        assert!(db.put_attributes("d", "item", &[add("a", "2")]).is_err());
        world.advance(SimDuration::from_secs(1));
        db.put_attributes("d", "item", &[add("a", "3")]).unwrap();
    }

    #[test]
    fn different_shards_throttle_independently() {
        let (_, db) = throttled();
        // Find two items on different shards.
        let dom_shard = |name: &str| simworld::fnv1a_64(name) % DEFAULT_SHARDS as u64;
        let a = "item-a".to_string();
        let b = (0..100)
            .map(|i| format!("item-{i}"))
            .find(|n| dom_shard(n) != dom_shard(&a))
            .unwrap();
        db.put_attributes("d", &a, &[add("x", "1")]).unwrap();
        // a's shard is out of tokens; b's shard is untouched.
        assert!(db.put_attributes("d", &a, &[add("x", "2")]).is_err());
        db.put_attributes("d", &b, &[add("x", "1")]).unwrap();
    }

    #[test]
    fn rejected_batch_applies_nothing_and_drains_no_bucket() {
        let (_, db) = throttled();
        // Exhaust one shard's token with a point put.
        db.put_attributes("d", "hot", &[add("x", "1")]).unwrap();
        // A batch spanning the hot shard and (very likely) others is
        // rejected whole…
        let items: Vec<_> = (0..10)
            .map(|i| {
                let name = if i == 0 {
                    "hot".to_string()
                } else {
                    format!("cold-{i}")
                };
                (name, vec![add("y", "1")])
            })
            .collect();
        let err = db.batch_put_attributes("d", &items).unwrap_err();
        assert!(err.is_throttle());
        for (name, _) in &items[1..] {
            assert!(db.latest_item("d", name).is_none(), "{name} leaked");
        }
        // …and the cold shards' tokens survive: each cold item still
        // writes individually.
        for (name, attrs) in &items[1..] {
            db.put_attributes("d", name, attrs).unwrap();
        }
    }

    #[test]
    fn reads_are_never_throttled() {
        let (_, db) = throttled();
        db.put_attributes("d", "item", &[add("a", "1")]).unwrap();
        assert!(db.put_attributes("d", "item", &[add("a", "2")]).is_err());
        // Reads and queries sail through an exhausted bucket.
        db.get_attributes("d", "item", None).unwrap();
        db.query("d", None, None, None).unwrap();
    }

    #[test]
    fn clearing_the_throttle_restores_unlimited_admission() {
        let (_, db) = throttled();
        db.put_attributes("d", "item", &[add("a", "1")]).unwrap();
        assert!(db.put_attributes("d", "item", &[add("a", "2")]).is_err());
        assert!(db.throttle().is_some());
        db.set_throttle(None);
        assert!(db.throttle().is_none());
        for i in 0..10 {
            db.put_attributes("d", "item", &[add("a", format!("{i}"))])
                .unwrap();
        }
    }

    #[test]
    fn throttle_off_runs_draw_identical_rng_streams() {
        // The admission check must not perturb the RNG when disabled —
        // pinned by comparing a plain run with a set_throttle(None) run.
        let run = |configure: bool| {
            let world = SimWorld::new(1234);
            let db = SimpleDb::new(&world);
            if configure {
                db.set_throttle(None);
            }
            db.create_domain("d").unwrap();
            for i in 0..10 {
                db.put_attributes("d", &format!("i{i}"), &[add("a", "1")])
                    .unwrap();
            }
            (world.now(), world.rand_u64())
        };
        assert_eq!(run(false), run(true));
    }
}

#[test]
fn query_pagination_spans_a_split() {
    // A marker walk started before a split must neither skip nor
    // duplicate items: the token pins replicas by stable shard id and
    // fresh children resolve through their parent's pin.
    let world = SimWorld::counting();
    let db = SimpleDb::with_shards(&world, 4);
    db.create_domain("d").unwrap();
    for i in 0..40 {
        db.put_attributes("d", &format!("i{i:02}"), &[add("t", "x")])
            .unwrap();
    }
    let mut names = Vec::new();
    let mut token: Option<String> = None;
    loop {
        let r = db
            .query("d", Some("['t' = 'x']"), Some(7), token.as_deref())
            .unwrap();
        names.extend(r.item_names);
        // Re-shape the domain between every page.
        db.split_hottest("d")
            .expect("a populated shard can always split");
        match r.next_token {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    assert!(db.domain_shard_count("d").unwrap() > 4, "splits happened");
    assert_eq!(names.len(), 40, "no skips, no duplicates");
    assert!(names.windows(2).all(|w| w[0] < w[1]), "still name-ordered");
}

#[test]
fn select_pagination_spans_a_split() {
    let world = SimWorld::counting();
    let db = SimpleDb::with_shards(&world, 4);
    db.create_domain("d").unwrap();
    for i in 0..23 {
        db.put_attributes("d", &format!("i{i:02}"), &[add("t", "x")])
            .unwrap();
    }
    let mut names = Vec::new();
    let mut token: Option<String> = None;
    loop {
        let r = db
            .select("select itemName() from d limit 5", token.as_deref())
            .unwrap();
        names.extend(r.items.into_iter().map(|i| i.name));
        db.split_hottest("d")
            .expect("a populated shard can always split");
        match r.next_token {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    assert!(db.domain_shard_count("d").unwrap() > 4, "splits happened");
    assert_eq!(names.len(), 23, "no skips, no duplicates");
    assert!(names.windows(2).all(|w| w[0] < w[1]), "still name-ordered");
}

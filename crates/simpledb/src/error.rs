//! Error type for the simulated SimpleDB service.

use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::SimpleDb`] operations, mirroring the
/// service's error codes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SdbError {
    /// The referenced domain does not exist (`NoSuchDomain`).
    NoSuchDomain {
        /// Domain name as given.
        domain: String,
    },
    /// Domain creation would exceed the account limit
    /// (`NumberDomainsExceeded`).
    TooManyDomains {
        /// The enforced limit.
        limit: usize,
    },
    /// An attribute name exceeded 1024 bytes (`InvalidParameterValue`).
    AttributeNameTooLong {
        /// Offending length.
        length: usize,
    },
    /// An attribute value exceeded 1024 bytes (`InvalidParameterValue`).
    AttributeValueTooLong {
        /// Offending length.
        length: usize,
    },
    /// An item name exceeded 1024 bytes (`InvalidParameterValue`).
    ItemNameTooLong {
        /// Offending length.
        length: usize,
    },
    /// More than 100 attributes in one `PutAttributes`
    /// (`NumberSubmittedAttributesExceeded`).
    TooManyAttributesInCall {
        /// Number submitted.
        submitted: usize,
    },
    /// The item would exceed 256 attribute name-value pairs
    /// (`NumberItemAttributesExceeded`).
    TooManyAttributesOnItem {
        /// Item name.
        item: String,
        /// Resulting pair count.
        pairs: usize,
    },
    /// An empty attribute list was submitted (`MissingParameter`).
    EmptyAttributeList,
    /// A batch call carried no items (`MissingParameter`).
    EmptyBatch,
    /// More than 25 items in one batch call
    /// (`NumberSubmittedItemsExceeded`).
    TooManyItemsInBatch {
        /// Items submitted.
        submitted: usize,
    },
    /// One item name appeared more than once in a batch call
    /// (`DuplicateItemName`).
    DuplicateItemInBatch {
        /// The repeated item name.
        item: String,
    },
    /// The summed attribute count of a batch call exceeded 256
    /// (`NumberSubmittedAttributesExceeded`).
    TooManyAttributesInBatch {
        /// Total attributes submitted across the batch's items.
        submitted: usize,
    },
    /// The query/select expression failed to parse
    /// (`InvalidQueryExpression`).
    InvalidQuery {
        /// Human-readable parse error.
        message: String,
    },
    /// A pagination token was not produced by this domain
    /// (`InvalidNextToken`).
    InvalidNextToken,
    /// The request rate on one of the domain's partitions exceeded the
    /// provisioned limit and the request was rejected without applying
    /// (`ServiceUnavailable`, HTTP 503). Retry with backoff.
    ServiceUnavailable {
        /// Domain whose partition throttled the request.
        domain: String,
    },
}

impl SdbError {
    /// `true` for the retriable 503 rejection.
    pub fn is_throttle(&self) -> bool {
        matches!(self, SdbError::ServiceUnavailable { .. })
    }
}

impl fmt::Display for SdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdbError::NoSuchDomain { domain } => write!(f, "no such domain: {domain}"),
            SdbError::TooManyDomains { limit } => {
                write!(f, "account domain limit of {limit} reached")
            }
            SdbError::AttributeNameTooLong { length } => {
                write!(
                    f,
                    "attribute name of {length} bytes exceeds the 1024-byte limit"
                )
            }
            SdbError::AttributeValueTooLong { length } => {
                write!(
                    f,
                    "attribute value of {length} bytes exceeds the 1024-byte limit"
                )
            }
            SdbError::ItemNameTooLong { length } => {
                write!(f, "item name of {length} bytes exceeds the 1024-byte limit")
            }
            SdbError::TooManyAttributesInCall { submitted } => {
                write!(
                    f,
                    "{submitted} attributes submitted; PutAttributes accepts at most 100"
                )
            }
            SdbError::TooManyAttributesOnItem { item, pairs } => {
                write!(
                    f,
                    "item {item:?} would hold {pairs} pairs; the limit is 256"
                )
            }
            SdbError::EmptyAttributeList => f.write_str("attribute list must not be empty"),
            SdbError::EmptyBatch => f.write_str("batch must carry at least one item"),
            SdbError::TooManyItemsInBatch { submitted } => {
                write!(f, "{submitted} items submitted; a batch carries at most 25")
            }
            SdbError::DuplicateItemInBatch { item } => {
                write!(f, "item {item:?} appears more than once in the batch")
            }
            SdbError::TooManyAttributesInBatch { submitted } => {
                write!(
                    f,
                    "{submitted} attributes submitted across the batch; the limit is 256"
                )
            }
            SdbError::InvalidQuery { message } => write!(f, "invalid query expression: {message}"),
            SdbError::InvalidNextToken => f.write_str("invalid pagination token"),
            SdbError::ServiceUnavailable { domain } => {
                write!(
                    f,
                    "503 ServiceUnavailable: request rate exceeded on domain {domain:?}; retry with backoff"
                )
            }
        }
    }
}

impl Error for SdbError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SdbError>;

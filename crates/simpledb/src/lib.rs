//! # sim-simpledb — a simulated Amazon SimpleDB (January 2009)
//!
//! An in-process attribute store reproducing the SimpleDB semantics the
//! paper *Making a Cloud Provenance-Aware* (TaPP '09) depends on:
//!
//! * **items** described by multi-valued **attribute** pairs, grouped in
//!   **domains**; automatic indexing on insert;
//! * the 2009 limits that shape the paper's protocols: 1 KB attribute
//!   names and values (provenance larger than this spills to S3), 256
//!   pairs per item, **100 attributes per `PutAttributes`** (so storing a
//!   big provenance record may take several calls — §4.2 step 3);
//! * `Query` (bracket syntax), `QueryWithAttributes` and SQL-form
//!   `Select`, all paginated;
//! * **idempotent** `PutAttributes`/`DeleteAttributes` (§2.2) — the
//!   property Architecture 3's replaying commit daemon relies on;
//! * **eventual consistency**: an insert may not appear in an immediately
//!   following query;
//! * per-operation billing meters feeding the [`simworld`] ledger.
//!
//! # Examples
//!
//! ```
//! use sim_simpledb::{ReplaceableAttribute, SimpleDb};
//! use simworld::SimWorld;
//!
//! let world = SimWorld::counting();
//! let db = SimpleDb::new(&world);
//! db.create_domain("provenance")?;
//!
//! // The paper's running example: version 2 of object `foo` has
//! // provenance records (input, bar:2) and (type, file).
//! db.put_attributes("provenance", "foo_2", &[
//!     ReplaceableAttribute::add("input", "bar:2"),
//!     ReplaceableAttribute::add("type", "file"),
//! ])?;
//!
//! let hits = db.select(
//!     "select itemName() from provenance where input = 'bar:2'", None)?;
//! assert_eq!(hits.items[0].name, "foo_2");
//! # Ok::<(), sim_simpledb::SdbError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod model;
mod query;
mod select;
mod service;

pub use error::{Result, SdbError};
pub use model::{
    byte_size, pair_count, to_attributes, Attribute, ItemState, ReplaceableAttribute, ATTR_LIMIT,
    ITEM_NAME_LIMIT, MAX_ATTRS_PER_CALL, MAX_DOMAINS, MAX_PAIRS_PER_ITEM,
};
pub use query::{CmpOp, Predicate, QueryExpr};
pub use select::{Cond, Operand, Output, SelectStatement, DEFAULT_LIMIT, MAX_LIMIT};
pub use service::{
    DeletableAttribute, QueryResult, QueryWithAttributesResult, ResultItem, SelectResult, SimpleDb,
    DEFAULT_SHARDS, MAX_BATCH_ITEMS, MAX_PAIRS_PER_BATCH, MAX_SHARDS, QUERY_DEFAULT_PAGE,
    QUERY_MAX_PAGE,
};

#[cfg(test)]
mod tests;

//! The SimpleDB `Select` statement — the SQL-form query interface added
//! in 2008 and described in §2.2 of the paper.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! select <output> from <domain> [where <expr>] [order by <operand> [asc|desc]] [limit N]
//!
//! output  := * | itemName() | count(*) | attr [, attr ...]
//! expr    := disjunction of conjunctions of [not] primaries
//! primary := '(' expr ')'
//!          | operand (= | != | > | >= | < | <=) 'value'
//!          | operand like 'pattern%'          -- %-wildcards at either end
//!          | operand between 'a' and 'b'
//!          | operand in ('a', 'b', ...)
//!          | operand is [not] null
//!          | every(attr) <op> 'value'
//! operand := attr | `quoted attr` | itemName()
//! ```
//!
//! Multi-valued semantics as in the real service: a plain comparison is
//! satisfied when *any* value of the attribute matches; `every()` demands
//! all values match; `is null` means the attribute is absent.

use std::fmt;

use crate::error::{Result, SdbError};
use crate::model::ItemState;
use crate::query::CmpOp;

/// Default page size when no `limit` clause is given.
pub const DEFAULT_LIMIT: usize = 100;

/// Hard cap on `limit`.
pub const MAX_LIMIT: usize = 2500;

/// What the statement projects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Output {
    /// `select *`
    All,
    /// `select itemName()`
    ItemName,
    /// `select count(*)`
    Count,
    /// `select a, b, c`
    Attrs(Vec<String>),
}

/// What a comparison's left side refers to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A named attribute (any value may satisfy).
    Attr(String),
    /// The item name.
    ItemName,
    /// `every(attr)` — all values must satisfy.
    Every(String),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::ItemName => f.write_str("itemName()"),
            Operand::Every(a) => write!(f, "every({a})"),
        }
    }
}

/// A boolean condition over one item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Binary comparison.
    Cmp(Operand, CmpOp, String),
    /// `like 'pattern'` with `%` wildcards at either end.
    Like(Operand, String),
    /// `between 'a' and 'b'` (inclusive).
    Between(Operand, String, String),
    /// `in ('a', 'b', ...)`.
    In(Operand, Vec<String>),
    /// `is null` (attribute absent).
    IsNull(String),
    /// `is not null` (attribute present).
    IsNotNull(String),
    /// Negation.
    Not(Box<Cond>),
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
}

impl Cond {
    /// Evaluates against one `(name, item)` pair.
    pub fn matches(&self, name: &str, item: &ItemState) -> bool {
        match self {
            Cond::Cmp(operand, op, value) => {
                eval_operand(operand, name, item, |v| cmp_eval(*op, v, value))
            }
            Cond::Like(operand, pattern) => {
                eval_operand(operand, name, item, |v| like_match(v, pattern))
            }
            Cond::Between(operand, lo, hi) => eval_operand(operand, name, item, |v| {
                v >= lo.as_str() && v <= hi.as_str()
            }),
            Cond::In(operand, values) => {
                eval_operand(operand, name, item, |v| values.iter().any(|x| x == v))
            }
            Cond::IsNull(attr) => !item.contains_key(attr),
            Cond::IsNotNull(attr) => item.contains_key(attr),
            Cond::Not(inner) => !inner.matches(name, item),
            Cond::And(parts) => parts.iter().all(|c| c.matches(name, item)),
            Cond::Or(parts) => parts.iter().any(|c| c.matches(name, item)),
        }
    }
}

fn cmp_eval(op: CmpOp, candidate: &str, operand: &str) -> bool {
    match op {
        CmpOp::Eq => candidate == operand,
        CmpOp::Ne => candidate != operand,
        CmpOp::Lt => candidate < operand,
        CmpOp::Gt => candidate > operand,
        CmpOp::Le => candidate <= operand,
        CmpOp::Ge => candidate >= operand,
        CmpOp::StartsWith => candidate.starts_with(operand),
    }
}

fn eval_operand(
    operand: &Operand,
    name: &str,
    item: &ItemState,
    pred: impl Fn(&str) -> bool,
) -> bool {
    match operand {
        Operand::ItemName => pred(name),
        Operand::Attr(attr) => item
            .get(attr)
            .map(|vs| vs.iter().any(|v| pred(v)))
            .unwrap_or(false),
        Operand::Every(attr) => item
            .get(attr)
            .map(|vs| !vs.is_empty() && vs.iter().all(|v| pred(v)))
            .unwrap_or(false),
    }
}

/// `%` wildcard match: `%` allowed at the start and/or end of the
/// pattern (the forms the 2009 service accepted).
fn like_match(value: &str, pattern: &str) -> bool {
    let starts = pattern.starts_with('%');
    let ends = pattern.ends_with('%') && pattern.len() > 1;
    let core = &pattern[(starts as usize)..pattern.len() - (ends as usize)];
    match (starts, ends) {
        (false, false) => value == core,
        (false, true) => value.starts_with(core),
        (true, false) => value.ends_with(core),
        (true, true) => value.contains(core),
    }
}

/// A parsed `select` statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SelectStatement {
    /// Projection.
    pub output: Output,
    /// Target domain name.
    pub domain: String,
    /// `where` clause, if any.
    pub condition: Option<Cond>,
    /// `order by` clause: operand and ascending flag.
    pub order_by: Option<(Operand, bool)>,
    /// `limit` clause (defaults to [`DEFAULT_LIMIT`], capped at
    /// [`MAX_LIMIT`]).
    pub limit: usize,
}

impl SelectStatement {
    /// Parses a `select` statement.
    ///
    /// # Errors
    ///
    /// [`SdbError::InvalidQuery`] describing the first syntax problem.
    pub fn parse(sql: &str) -> Result<SelectStatement> {
        Parser::new(sql)?.parse_select()
    }

    /// `true` when this statement's result set includes the row: the
    /// `where` clause matches and, when ordering by an attribute, the
    /// item carries it (the real service requires the sort attribute to
    /// be constrained; dropping attribute-less items is the equivalent
    /// observable behaviour). The single source of truth for both
    /// [`SelectStatement::apply`] and the `count(*)` fast path.
    pub fn selects_row(&self, name: &str, item: &ItemState) -> bool {
        if !self
            .condition
            .as_ref()
            .map(|c| c.matches(name, item))
            .unwrap_or(true)
        {
            return false;
        }
        match &self.order_by {
            Some((Operand::Attr(attr) | Operand::Every(attr), _)) => item.contains_key(attr),
            _ => true,
        }
    }

    /// Filters, orders and projects `(name, item)` rows. Returns the rows
    /// this statement selects, before pagination.
    pub fn apply(&self, rows: Vec<(String, ItemState)>) -> Vec<(String, ItemState)> {
        let mut out: Vec<(String, ItemState)> = rows
            .into_iter()
            .filter(|(n, i)| self.selects_row(n, i))
            .collect();
        if let Some((operand, asc)) = &self.order_by {
            match operand {
                Operand::ItemName => out.sort_by(|(a, _), (b, _)| a.cmp(b)),
                Operand::Attr(attr) | Operand::Every(attr) => {
                    out.sort_by(|(an, a), (bn, b)| {
                        let av = a.get(attr).and_then(|s| s.iter().next());
                        let bv = b.get(attr).and_then(|s| s.iter().next());
                        av.cmp(&bv).then_with(|| an.cmp(bn))
                    });
                }
            }
            if !asc {
                out.reverse();
            }
        }
        out
    }
}

// --- lexer ---

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Word(String),   // keyword/identifier, original case preserved
    Str(String),    // 'quoted'
    Quoted(String), // `backtick quoted attribute`
    Sym(String),    // punctuation / operators
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some(ch) = chars.next() {
                    if ch == '\'' {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                            s.push('\'');
                        } else {
                            closed = true;
                            break;
                        }
                    } else {
                        s.push(ch);
                    }
                }
                if !closed {
                    return Err(SdbError::InvalidQuery {
                        message: "unterminated string literal".into(),
                    });
                }
                toks.push(Tok::Str(s));
            }
            '`' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for ch in chars.by_ref() {
                    if ch == '`' {
                        closed = true;
                        break;
                    }
                    s.push(ch);
                }
                if !closed {
                    return Err(SdbError::InvalidQuery {
                        message: "unterminated quoted attribute".into(),
                    });
                }
                toks.push(Tok::Quoted(s));
            }
            '(' | ')' | ',' | '*' => {
                chars.next();
                toks.push(Tok::Sym(c.to_string()));
            }
            '=' => {
                chars.next();
                toks.push(Tok::Sym("=".into()));
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Sym("!=".into()));
                } else {
                    return Err(SdbError::InvalidQuery {
                        message: "stray '!'".into(),
                    });
                }
            }
            '<' | '>' => {
                chars.next();
                let mut s = c.to_string();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    s.push('=');
                }
                toks.push(Tok::Sym(s));
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let mut w = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' || ch == '-' || ch == '.' || ch == '/' {
                        w.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Word(w));
            }
            other => {
                return Err(SdbError::InvalidQuery {
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

// --- parser ---

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            toks: lex(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(SdbError::InvalidQuery {
            message: message.into(),
        })
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.next();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw:?}, got {:?}", self.peek()))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if let Some(Tok::Sym(s)) = self.peek() {
            if s == sym {
                self.next();
                return true;
            }
        }
        false
    }

    fn parse_select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword("select")?;
        let output = self.parse_output()?;
        self.expect_keyword("from")?;
        let domain = match self.next() {
            Some(Tok::Word(w)) => w,
            Some(Tok::Quoted(w)) => w,
            other => return self.err(format!("expected domain name, got {other:?}")),
        };
        let condition = if self.eat_keyword("where") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            let operand = self.parse_operand()?;
            let asc = if self.eat_keyword("desc") {
                false
            } else {
                self.eat_keyword("asc");
                true
            };
            Some((operand, asc))
        } else {
            None
        };
        let limit = if self.eat_keyword("limit") {
            match self.next() {
                Some(Tok::Word(w)) => match w.parse::<usize>() {
                    Ok(n) if n >= 1 => n.min(MAX_LIMIT),
                    _ => return self.err(format!("invalid limit {w:?}")),
                },
                other => return self.err(format!("expected limit count, got {other:?}")),
            }
        } else {
            DEFAULT_LIMIT
        };
        if let Some(t) = self.peek() {
            return self.err(format!("unexpected trailing token {t:?}"));
        }
        Ok(SelectStatement {
            output,
            domain,
            condition,
            order_by,
            limit,
        })
    }

    fn parse_output(&mut self) -> Result<Output> {
        if self.eat_sym("*") {
            return Ok(Output::All);
        }
        // count(*) / itemName() / attribute list
        if let Some(Tok::Word(w)) = self.peek().cloned() {
            if w.eq_ignore_ascii_case("count") {
                self.next();
                if self.eat_sym("(") && self.eat_sym("*") && self.eat_sym(")") {
                    return Ok(Output::Count);
                }
                return self.err("malformed count(*)");
            }
            if w.eq_ignore_ascii_case("itemname") {
                // itemName() — possibly with the call parens
                self.next();
                if self.eat_sym("(") && !self.eat_sym(")") {
                    return self.err("malformed itemName()");
                }
                return Ok(Output::ItemName);
            }
        }
        let mut attrs = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Word(w)) => attrs.push(w),
                Some(Tok::Quoted(w)) => attrs.push(w),
                other => {
                    return self.err(format!("expected attribute in select list, got {other:?}"))
                }
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Output::Attrs(attrs))
    }

    fn parse_or(&mut self) -> Result<Cond> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_keyword("or") {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Cond::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Cond> {
        let mut parts = vec![self.parse_not()?];
        while self.eat_keyword("and") {
            parts.push(self.parse_not()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Cond::And(parts)
        })
    }

    fn parse_not(&mut self) -> Result<Cond> {
        if self.eat_keyword("not") {
            Ok(Cond::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Cond> {
        if self.eat_sym("(") {
            let inner = self.parse_or()?;
            if !self.eat_sym(")") {
                return self.err("expected ')'");
            }
            return Ok(inner);
        }
        let operand = self.parse_operand()?;
        // is [not] null
        if self.eat_keyword("is") {
            let attr = match &operand {
                Operand::Attr(a) => a.clone(),
                other => return self.err(format!("is null applies to attributes, not {other}")),
            };
            if self.eat_keyword("not") {
                self.expect_keyword("null")?;
                return Ok(Cond::IsNotNull(attr));
            }
            self.expect_keyword("null")?;
            return Ok(Cond::IsNull(attr));
        }
        if self.eat_keyword("like") {
            let pattern = self.parse_value()?;
            return Ok(Cond::Like(operand, pattern));
        }
        if self.eat_keyword("between") {
            let lo = self.parse_value()?;
            self.expect_keyword("and")?;
            let hi = self.parse_value()?;
            return Ok(Cond::Between(operand, lo, hi));
        }
        if self.eat_keyword("in") {
            if !self.eat_sym("(") {
                return self.err("expected '(' after in");
            }
            let mut values = Vec::new();
            loop {
                values.push(self.parse_value()?);
                if self.eat_sym(")") {
                    break;
                }
                if !self.eat_sym(",") {
                    return self.err("expected ',' or ')' in value list");
                }
            }
            return Ok(Cond::In(operand, values));
        }
        let op = match self.next() {
            Some(Tok::Sym(s)) => match s.as_str() {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                ">" => CmpOp::Gt,
                "<=" => CmpOp::Le,
                ">=" => CmpOp::Ge,
                other => return self.err(format!("unknown comparison {other:?}")),
            },
            other => return self.err(format!("expected comparison operator, got {other:?}")),
        };
        let value = self.parse_value()?;
        Ok(Cond::Cmp(operand, op, value))
    }

    fn parse_operand(&mut self) -> Result<Operand> {
        match self.next() {
            Some(Tok::Quoted(attr)) => Ok(Operand::Attr(attr)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("itemname") => {
                if self.eat_sym("(") && !self.eat_sym(")") {
                    return self.err("malformed itemName()");
                }
                Ok(Operand::ItemName)
            }
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("every") => {
                if !self.eat_sym("(") {
                    return self.err("expected '(' after every");
                }
                let attr = match self.next() {
                    Some(Tok::Word(a)) => a,
                    Some(Tok::Quoted(a)) => a,
                    other => {
                        return self.err(format!("expected attribute in every(), got {other:?}"))
                    }
                };
                if !self.eat_sym(")") {
                    return self.err("expected ')' after every(attr");
                }
                Ok(Operand::Every(attr))
            }
            Some(Tok::Word(w)) => Ok(Operand::Attr(w)),
            other => self.err(format!("expected operand, got {other:?}")),
        }
    }

    fn parse_value(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            other => self.err(format!("expected quoted value, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(pairs: &[(&str, &str)]) -> ItemState {
        let mut m = ItemState::new();
        for (k, v) in pairs {
            m.entry((*k).to_string())
                .or_default()
                .insert((*v).to_string());
        }
        m
    }

    fn parses(sql: &str) -> SelectStatement {
        SelectStatement::parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn basic_forms_parse() {
        assert_eq!(parses("select * from d").output, Output::All);
        assert_eq!(parses("SELECT itemName() FROM d").output, Output::ItemName);
        assert_eq!(parses("select count(*) from d").output, Output::Count);
        assert_eq!(
            parses("select a, b from d").output,
            Output::Attrs(vec!["a".into(), "b".into()])
        );
        assert_eq!(parses("select * from d").domain, "d");
    }

    #[test]
    fn where_comparisons_evaluate() {
        let s = parses("select * from d where type = 'file'");
        let cond = s.condition.unwrap();
        assert!(cond.matches("i", &item(&[("type", "file")])));
        assert!(!cond.matches("i", &item(&[("type", "proc")])));
        assert!(!cond.matches("i", &item(&[])));
    }

    #[test]
    fn any_value_semantics_vs_every() {
        let any = parses("select * from d where tag = 'x'").condition.unwrap();
        let every = parses("select * from d where every(tag) = 'x'")
            .condition
            .unwrap();
        let mixed = item(&[("tag", "x"), ("tag", "y")]);
        let uniform = item(&[("tag", "x")]);
        assert!(any.matches("i", &mixed));
        assert!(!every.matches("i", &mixed));
        assert!(every.matches("i", &uniform));
    }

    #[test]
    fn itemname_comparisons() {
        let c = parses("select * from d where itemName() like 'foo%'")
            .condition
            .unwrap();
        assert!(c.matches("foo_2", &item(&[])));
        assert!(!c.matches("bar_2", &item(&[])));
    }

    #[test]
    fn like_wildcards() {
        let both = parses("select * from d where a like '%mid%'")
            .condition
            .unwrap();
        assert!(both.matches("i", &item(&[("a", "a-mid-z")])));
        let suffix = parses("select * from d where a like '%end'")
            .condition
            .unwrap();
        assert!(suffix.matches("i", &item(&[("a", "the-end")])));
        assert!(!suffix.matches("i", &item(&[("a", "end-the")])));
        let exact = parses("select * from d where a like 'x'")
            .condition
            .unwrap();
        assert!(exact.matches("i", &item(&[("a", "x")])));
        assert!(!exact.matches("i", &item(&[("a", "xy")])));
    }

    #[test]
    fn between_in_null() {
        let between = parses("select * from d where v between '3' and '5'")
            .condition
            .unwrap();
        assert!(between.matches("i", &item(&[("v", "4")])));
        assert!(!between.matches("i", &item(&[("v", "6")])));

        let inlist = parses("select * from d where v in ('a', 'b')")
            .condition
            .unwrap();
        assert!(inlist.matches("i", &item(&[("v", "b")])));
        assert!(!inlist.matches("i", &item(&[("v", "c")])));

        let isnull = parses("select * from d where v is null").condition.unwrap();
        assert!(isnull.matches("i", &item(&[("w", "1")])));
        assert!(!isnull.matches("i", &item(&[("v", "1")])));

        let notnull = parses("select * from d where v is not null")
            .condition
            .unwrap();
        assert!(notnull.matches("i", &item(&[("v", "1")])));
    }

    #[test]
    fn boolean_precedence_and_parens() {
        // a='1' or a='2' and b='3'  ==  a='1' or (a='2' and b='3')
        let c = parses("select * from d where a = '1' or a = '2' and b = '3'")
            .condition
            .unwrap();
        assert!(c.matches("i", &item(&[("a", "1")])));
        assert!(c.matches("i", &item(&[("a", "2"), ("b", "3")])));
        assert!(!c.matches("i", &item(&[("a", "2")])));

        let c = parses("select * from d where (a = '1' or a = '2') and b = '3'")
            .condition
            .unwrap();
        assert!(!c.matches("i", &item(&[("a", "1")])));
        assert!(c.matches("i", &item(&[("a", "1"), ("b", "3")])));
    }

    #[test]
    fn not_negates() {
        let c = parses("select * from d where not a = '1'")
            .condition
            .unwrap();
        assert!(c.matches("i", &item(&[("a", "2")])));
        assert!(!c.matches("i", &item(&[("a", "1")])));
    }

    #[test]
    fn backtick_attributes_and_escaped_quotes() {
        let c = parses("select * from d where `weird attr` = 'o''brien'")
            .condition
            .unwrap();
        assert!(c.matches("i", &item(&[("weird attr", "o'brien")])));
    }

    #[test]
    fn order_by_and_limit() {
        let s = parses("select * from d where a is not null order by a desc limit 7");
        assert_eq!(s.limit, 7);
        let rows = vec![
            ("one".to_string(), item(&[("a", "1")])),
            ("three".to_string(), item(&[("a", "3")])),
            ("none".to_string(), item(&[("b", "9")])),
            ("two".to_string(), item(&[("a", "2")])),
        ];
        let out = s.apply(rows);
        let names: Vec<_> = out.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["three", "two", "one"]);
    }

    #[test]
    fn order_by_itemname() {
        let s = parses("select itemName() from d order by itemName()");
        let rows = vec![("b".to_string(), item(&[])), ("a".to_string(), item(&[]))];
        let out = s.apply(rows);
        assert_eq!(out[0].0, "a");
    }

    #[test]
    fn limit_clamped_to_service_max() {
        assert_eq!(parses("select * from d limit 99999").limit, MAX_LIMIT);
        assert_eq!(parses("select * from d").limit, DEFAULT_LIMIT);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "select",
            "select * from",
            "select * from d where",
            "select * from d where a ==",
            "select * from d where a = 'x' garbage",
            "select * from d limit 0",
            "select * from d where a between '1'",
            "select * from d where a in ('1',",
            "select * from d where a = 'unterminated",
        ] {
            assert!(
                matches!(
                    SelectStatement::parse(bad),
                    Err(SdbError::InvalidQuery { .. })
                ),
                "should fail: {bad}"
            );
        }
    }
}

//! Data model: items described by multi-valued attribute pairs.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::error::{Result, SdbError};

/// SimpleDB's limit on attribute name and value length, in bytes.
pub const ATTR_LIMIT: usize = 1024;

/// SimpleDB's limit on item name length, in bytes.
pub const ITEM_NAME_LIMIT: usize = 1024;

/// Maximum attribute name-value pairs per item.
pub const MAX_PAIRS_PER_ITEM: usize = 256;

/// Maximum attributes per `PutAttributes` call.
pub const MAX_ATTRS_PER_CALL: usize = 100;

/// Maximum domains per account (2009 default).
pub const MAX_DOMAINS: usize = 100;

/// One attribute name-value pair as returned by reads.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: String,
}

impl Attribute {
    /// Builds a pair.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// One attribute in a `PutAttributes` call: the `replace` flag decides
/// whether existing values of the name are dropped first.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReplaceableAttribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: String,
    /// `true`: drop all current values of `name` before adding;
    /// `false`: add this value alongside existing ones.
    pub replace: bool,
}

impl ReplaceableAttribute {
    /// An additive attribute (`replace = false`).
    pub fn add(name: impl Into<String>, value: impl Into<String>) -> ReplaceableAttribute {
        ReplaceableAttribute {
            name: name.into(),
            value: value.into(),
            replace: false,
        }
    }

    /// A replacing attribute (`replace = true`).
    pub fn replace(name: impl Into<String>, value: impl Into<String>) -> ReplaceableAttribute {
        ReplaceableAttribute {
            name: name.into(),
            value: value.into(),
            replace: true,
        }
    }

    /// Validates the 1 KB name/value limits.
    ///
    /// # Errors
    ///
    /// [`SdbError::AttributeNameTooLong`] or
    /// [`SdbError::AttributeValueTooLong`].
    pub fn check_limits(&self) -> Result<()> {
        if self.name.len() > ATTR_LIMIT {
            return Err(SdbError::AttributeNameTooLong {
                length: self.name.len(),
            });
        }
        if self.value.len() > ATTR_LIMIT {
            return Err(SdbError::AttributeValueTooLong {
                length: self.value.len(),
            });
        }
        Ok(())
    }
}

/// The stored state of one item: name → set of values.
///
/// SimpleDB attributes are multi-valued; the pair set per name is
/// unordered and duplicate-free, which is what makes `PutAttributes`
/// idempotent (§2.2 of the paper).
pub type ItemState = BTreeMap<String, BTreeSet<String>>;

/// Total name-value pairs in an item.
pub fn pair_count(item: &ItemState) -> usize {
    item.values().map(BTreeSet::len).sum()
}

/// Serialized size of an item in bytes (names + values), used for
/// storage accounting.
pub fn byte_size(item: &ItemState) -> u64 {
    item.iter()
        .map(|(name, values)| {
            values
                .iter()
                .map(|v| (name.len() + v.len()) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Flattens an item into `Attribute` pairs in name order.
pub fn to_attributes(item: &ItemState) -> Vec<Attribute> {
    item.iter()
        .flat_map(|(name, values)| {
            values
                .iter()
                .map(move |v| Attribute::new(name.clone(), v.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaceable_limits_enforced() {
        assert!(ReplaceableAttribute::add("a", "b").check_limits().is_ok());
        let long = "x".repeat(1025);
        assert!(matches!(
            ReplaceableAttribute::add(long.clone(), "v").check_limits(),
            Err(SdbError::AttributeNameTooLong { length: 1025 })
        ));
        assert!(matches!(
            ReplaceableAttribute::add("n", long).check_limits(),
            Err(SdbError::AttributeValueTooLong { length: 1025 })
        ));
    }

    #[test]
    fn exactly_1kb_is_allowed() {
        let edge = "x".repeat(1024);
        assert!(ReplaceableAttribute::add(edge.clone(), edge)
            .check_limits()
            .is_ok());
    }

    #[test]
    fn pair_count_and_size_sum_over_values() {
        let mut item = ItemState::new();
        item.entry("phone".into())
            .or_default()
            .extend(["111".to_string(), "222".to_string()]);
        item.entry("name".into())
            .or_default()
            .insert("bob".to_string());
        assert_eq!(pair_count(&item), 3);
        assert_eq!(byte_size(&item), (5 + 3) + (5 + 3) + (4 + 3));
    }

    #[test]
    fn to_attributes_flattens_in_order() {
        let mut item = ItemState::new();
        item.entry("b".into()).or_default().insert("2".to_string());
        item.entry("a".into()).or_default().insert("1".to_string());
        let attrs = to_attributes(&item);
        assert_eq!(
            attrs,
            vec![Attribute::new("a", "1"), Attribute::new("b", "2")]
        );
    }
}

//! The 2009 SimpleDB *Query* language: bracketed predicates combined with
//! `intersection`, `union` and `not`, plus an optional trailing `sort`.
//!
//! ```text
//! ['type' = 'file'] intersection ['input' starts-with 'blast'] sort 'name' desc
//! ```
//!
//! Semantics faithful to the 2009 service:
//!
//! * attributes are **multi-valued**; a predicate matches an item when
//!   *some single value* of the predicate's attribute satisfies the
//!   comparison combination (so `['x' = '1' and 'x' = '2']` needs one
//!   value equal to both — i.e. never matches — while
//!   `['x' = '1'] intersection ['x' = '2']` matches an item carrying both
//!   values);
//! * every comparison inside one predicate must reference the same
//!   attribute;
//! * `not` negates the following predicate; `intersection`/`union`
//!   associate left with equal precedence;
//! * all values compare lexicographically as strings;
//! * `sort` orders by the attribute's smallest value and drops items
//!   lacking the attribute (the real service requires the sort attribute
//!   to appear in a predicate; dropping is the equivalent observable
//!   behaviour).

use std::fmt;

use crate::error::{Result, SdbError};
use crate::model::ItemState;

/// Comparison operators available in Query predicates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `starts-with`
    StartsWith,
}

impl CmpOp {
    fn eval(self, candidate: &str, operand: &str) -> bool {
        match self {
            CmpOp::Eq => candidate == operand,
            CmpOp::Ne => candidate != operand,
            CmpOp::Lt => candidate < operand,
            CmpOp::Gt => candidate > operand,
            CmpOp::Le => candidate <= operand,
            CmpOp::Ge => candidate >= operand,
            CmpOp::StartsWith => candidate.starts_with(operand),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::StartsWith => "starts-with",
        })
    }
}

/// One `['attr' op 'value' and/or ...]` predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Predicate {
    /// The single attribute every comparison references.
    pub attribute: String,
    /// Comparisons in source order.
    pub comparisons: Vec<(CmpOp, String)>,
    /// Connectives between consecutive comparisons (`true` = and);
    /// length is `comparisons.len() - 1`. `and` binds tighter than `or`.
    pub connectives: Vec<bool>,
}

impl Predicate {
    /// Does any single attribute value satisfy the combination?
    pub fn matches(&self, item: &ItemState) -> bool {
        let Some(values) = item.get(&self.attribute) else {
            return false;
        };
        values.iter().any(|v| self.eval_on_value(v))
    }

    fn eval_on_value(&self, v: &str) -> bool {
        // Evaluate with `and` binding tighter than `or`: split comparison
        // runs at `or` connectives; each run is a conjunction.
        let mut any = false;
        let mut run = true;
        for (i, (op, operand)) in self.comparisons.iter().enumerate() {
            run &= op.eval(v, operand);
            let is_last = i + 1 == self.comparisons.len();
            let or_next = !is_last && !self.connectives[i];
            if is_last || or_next {
                any |= run;
                run = true;
            }
        }
        any
    }
}

/// A parsed Query expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryExpr {
    terms: Vec<(SetOp, bool, Predicate)>, // (combine-with-previous, negated, pred)
    sort: Option<(String, bool)>,         // (attribute, ascending)
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum SetOp {
    First,
    Intersection,
    Union,
}

impl QueryExpr {
    /// Parses the bracketed query syntax.
    ///
    /// # Errors
    ///
    /// [`SdbError::InvalidQuery`] with a description of the first problem.
    pub fn parse(input: &str) -> Result<QueryExpr> {
        Parser::new(input).parse_query()
    }

    /// Evaluates against one item.
    pub fn matches(&self, item: &ItemState) -> bool {
        let mut acc = false;
        for (i, (setop, negated, pred)) in self.terms.iter().enumerate() {
            let hit = pred.matches(item) != *negated;
            acc = match (i, setop) {
                (0, _) => hit,
                (_, SetOp::Intersection) => acc && hit,
                (_, SetOp::Union) => acc || hit,
                (_, SetOp::First) => unreachable!("First only at index 0"),
            };
        }
        acc
    }

    /// The sort clause: `(attribute, ascending)` if present.
    pub fn sort(&self) -> Option<(&str, bool)> {
        self.sort.as_ref().map(|(a, asc)| (a.as_str(), *asc))
    }

    /// Applies the sort clause to `(name, item)` pairs: orders by the
    /// attribute's smallest value (then item name for stability) and
    /// drops items lacking the attribute. Without a sort clause the
    /// input order (item-name order) is preserved.
    pub fn apply_sort(&self, mut rows: Vec<(String, ItemState)>) -> Vec<(String, ItemState)> {
        let Some((attr, asc)) = self.sort() else {
            return rows;
        };
        rows.retain(|(_, item)| item.contains_key(attr));
        rows.sort_by(|(an, a), (bn, b)| {
            let av = a.get(attr).and_then(|s| s.iter().next());
            let bv = b.get(attr).and_then(|s| s.iter().next());
            let ord = av.cmp(&bv).then_with(|| an.cmp(bn));
            if asc {
                ord
            } else {
                ord.reverse()
            }
        });
        rows
    }
}

// --- lexer / parser ---

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    LBracket,
    RBracket,
    Str(String),
    Word(String), // lowercased keyword or operator
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Parser {
        Parser {
            toks: lex(input),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(SdbError::InvalidQuery {
            message: message.into(),
        })
    }

    fn parse_query(&mut self) -> Result<QueryExpr> {
        let mut terms = Vec::new();
        let (negated, pred) = self.parse_term()?;
        terms.push((SetOp::First, negated, pred));
        let mut sort = None;
        loop {
            match self.next() {
                None => break,
                Some(Tok::Word(w)) if w == "intersection" || w == "union" => {
                    let setop = if w == "intersection" {
                        SetOp::Intersection
                    } else {
                        SetOp::Union
                    };
                    let (negated, pred) = self.parse_term()?;
                    terms.push((setop, negated, pred));
                }
                Some(Tok::Word(w)) if w == "sort" => {
                    let attr = match self.next() {
                        Some(Tok::Str(s)) => s,
                        other => {
                            return self
                                .err(format!("sort expects a quoted attribute, got {other:?}"))
                        }
                    };
                    let asc = match self.peek() {
                        Some(Tok::Word(w)) if w == "asc" => {
                            self.next();
                            true
                        }
                        Some(Tok::Word(w)) if w == "desc" => {
                            self.next();
                            false
                        }
                        _ => true,
                    };
                    sort = Some((attr, asc));
                    if let Some(t) = self.peek() {
                        return self.err(format!("unexpected token after sort: {t:?}"));
                    }
                    break;
                }
                Some(t) => return self.err(format!("expected intersection/union/sort, got {t:?}")),
            }
        }
        Ok(QueryExpr { terms, sort })
    }

    fn parse_term(&mut self) -> Result<(bool, Predicate)> {
        let negated = matches!(self.peek(), Some(Tok::Word(w)) if w == "not");
        if negated {
            self.next();
        }
        Ok((negated, self.parse_predicate()?))
    }

    fn parse_predicate(&mut self) -> Result<Predicate> {
        match self.next() {
            Some(Tok::LBracket) => {}
            other => return self.err(format!("expected '[', got {other:?}")),
        }
        let mut attribute: Option<String> = None;
        let mut comparisons = Vec::new();
        let mut connectives = Vec::new();
        loop {
            let attr = match self.next() {
                Some(Tok::Str(s)) => s,
                other => return self.err(format!("expected quoted attribute name, got {other:?}")),
            };
            match &attribute {
                None => attribute = Some(attr.clone()),
                Some(a) if *a == attr => {}
                Some(a) => {
                    return self.err(format!(
                        "all comparisons in a predicate must use the same attribute \
                         (saw {a:?} and {attr:?})"
                    ))
                }
            }
            let op = match self.next() {
                Some(Tok::Word(w)) => match w.as_str() {
                    "=" => CmpOp::Eq,
                    "!=" => CmpOp::Ne,
                    "<" => CmpOp::Lt,
                    ">" => CmpOp::Gt,
                    "<=" => CmpOp::Le,
                    ">=" => CmpOp::Ge,
                    "starts-with" => CmpOp::StartsWith,
                    other => return self.err(format!("unknown operator {other:?}")),
                },
                other => return self.err(format!("expected operator, got {other:?}")),
            };
            let value = match self.next() {
                Some(Tok::Str(s)) => s,
                other => return self.err(format!("expected quoted value, got {other:?}")),
            };
            comparisons.push((op, value));
            match self.next() {
                Some(Tok::RBracket) => break,
                Some(Tok::Word(w)) if w == "and" => connectives.push(true),
                Some(Tok::Word(w)) if w == "or" => connectives.push(false),
                other => return self.err(format!("expected and/or/']', got {other:?}")),
            }
        }
        Ok(Predicate {
            attribute: attribute.expect("at least one comparison parsed"),
            comparisons,
            connectives,
        })
    }
}

fn lex(input: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '[' => {
                chars.next();
                toks.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                toks.push(Tok::RBracket);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // '' escapes a literal quote
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => s.push(ch),
                        None => break, // unterminated; parser will complain downstream
                    }
                }
                toks.push(Tok::Str(s));
            }
            '=' => {
                chars.next();
                toks.push(Tok::Word("=".into()));
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Word("!=".into()));
                } else {
                    toks.push(Tok::Word("!".into()));
                }
            }
            '<' | '>' => {
                chars.next();
                let mut w = c.to_string();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    w.push('=');
                }
                toks.push(Tok::Word(w));
            }
            _ => {
                let mut w = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '-' || ch == '_' {
                        w.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if w.is_empty() {
                    // Unknown character: consume to avoid an infinite loop.
                    chars.next();
                    toks.push(Tok::Word(c.to_string()));
                } else {
                    toks.push(Tok::Word(w.to_lowercase()));
                }
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(pairs: &[(&str, &str)]) -> ItemState {
        let mut m = ItemState::new();
        for (k, v) in pairs {
            m.entry((*k).to_string())
                .or_default()
                .insert((*v).to_string());
        }
        m
    }

    #[test]
    fn simple_equality() {
        let q = QueryExpr::parse("['type' = 'file']").unwrap();
        assert!(q.matches(&item(&[("type", "file")])));
        assert!(!q.matches(&item(&[("type", "process")])));
        assert!(!q.matches(&item(&[("other", "file")])));
    }

    #[test]
    fn multivalued_any_semantics() {
        let q = QueryExpr::parse("['phone' = '222']").unwrap();
        assert!(q.matches(&item(&[("phone", "111"), ("phone", "222")])));
    }

    #[test]
    fn and_within_predicate_is_single_value() {
        // No single value can equal both — the classic SimpleDB gotcha.
        let q = QueryExpr::parse("['x' = '1' and 'x' = '2']").unwrap();
        assert!(!q.matches(&item(&[("x", "1"), ("x", "2")])));
        // Whereas a range on one value works:
        let q = QueryExpr::parse("['x' >= '1' and 'x' <= '3']").unwrap();
        assert!(q.matches(&item(&[("x", "2")])));
        assert!(!q.matches(&item(&[("x", "9")])));
    }

    #[test]
    fn intersection_spans_values() {
        let q = QueryExpr::parse("['x' = '1'] intersection ['x' = '2']").unwrap();
        assert!(q.matches(&item(&[("x", "1"), ("x", "2")])));
        assert!(!q.matches(&item(&[("x", "1")])));
    }

    #[test]
    fn union_and_not() {
        let q = QueryExpr::parse("['t' = 'a'] union ['t' = 'b']").unwrap();
        assert!(q.matches(&item(&[("t", "b")])));
        let q = QueryExpr::parse("not ['t' = 'a']").unwrap();
        assert!(q.matches(&item(&[("t", "b")])));
        assert!(
            q.matches(&item(&[("z", "1")])),
            "missing attribute satisfies not"
        );
        assert!(!q.matches(&item(&[("t", "a")])));
    }

    #[test]
    fn or_within_predicate() {
        let q = QueryExpr::parse("['t' = 'a' or 't' = 'b']").unwrap();
        assert!(q.matches(&item(&[("t", "a")])));
        assert!(q.matches(&item(&[("t", "b")])));
        assert!(!q.matches(&item(&[("t", "c")])));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        // a or (b and c): value 'z' fails b-and-c but passes via 'a'? The
        // comparisons run per single value: v='a' → true or (f and f) = true.
        let q = QueryExpr::parse("['t' = 'a' or 't' >= 'b' and 't' <= 'd']").unwrap();
        assert!(q.matches(&item(&[("t", "a")])));
        assert!(q.matches(&item(&[("t", "c")])));
        assert!(!q.matches(&item(&[("t", "x")])));
    }

    #[test]
    fn starts_with_and_comparisons() {
        let q = QueryExpr::parse("['name' starts-with 'blast']").unwrap();
        assert!(q.matches(&item(&[("name", "blastall")])));
        assert!(!q.matches(&item(&[("name", "makeblast")])));
        let q = QueryExpr::parse("['v' > '5']").unwrap();
        assert!(q.matches(&item(&[("v", "7")])));
        assert!(!q.matches(&item(&[("v", "3")])));
    }

    #[test]
    fn mixed_attributes_in_predicate_rejected() {
        let err = QueryExpr::parse("['a' = '1' and 'b' = '2']").unwrap_err();
        assert!(matches!(err, SdbError::InvalidQuery { .. }));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for bad in [
            "",
            "['a' = ]",
            "['a' ?? 'b']",
            "['a' = 'b'] nonsense ['c' = 'd']",
            "['a' = 'b'] sort",
            "['a' = 'b'] sort 'x' asc trailing",
        ] {
            let err = QueryExpr::parse(bad).unwrap_err();
            assert!(matches!(err, SdbError::InvalidQuery { .. }), "input: {bad}");
        }
    }

    #[test]
    fn quoted_escapes() {
        let q = QueryExpr::parse("['name' = 'o''brien']").unwrap();
        assert!(q.matches(&item(&[("name", "o'brien")])));
    }

    #[test]
    fn sort_orders_and_drops_missing() {
        let q = QueryExpr::parse("['t' starts-with ''] sort 'rank' desc").unwrap();
        let rows = vec![
            ("low".to_string(), item(&[("t", "x"), ("rank", "1")])),
            ("none".to_string(), item(&[("t", "x")])),
            ("high".to_string(), item(&[("t", "x"), ("rank", "9")])),
        ];
        let sorted = q.apply_sort(rows);
        let names: Vec<_> = sorted.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["high", "low"]);
    }

    #[test]
    fn sort_ascending_is_default() {
        let q = QueryExpr::parse("['t' starts-with ''] sort 'rank'").unwrap();
        assert_eq!(q.sort(), Some(("rank", true)));
    }

    #[test]
    fn lexicographic_comparison_warning_case() {
        // "10" < "9" lexicographically — faithful to SimpleDB, which is
        // why callers zero-pad numbers.
        let q = QueryExpr::parse("['v' < '9']").unwrap();
        assert!(q.matches(&item(&[("v", "10")])));
    }
}

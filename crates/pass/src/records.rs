//! Provenance records and their attribute-value serialisation.
//!
//! PASS expresses provenance as key/value records attached to an object
//! version: `(input, bar:2)` — this object was derived from version 2 of
//! `bar`; `(type, file)`; `(argv, ...)`; and so on. All three cloud
//! architectures ultimately serialise records to string pairs (S3
//! metadata or SimpleDB attributes), so the pair form defined here is the
//! lingua franca of the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::ObjectRef;

/// The key of a provenance record.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RecordKey {
    /// Ancestor dependency: the value is an [`ObjectRef`].
    Input,
    /// Object type (`file` / `process`).
    Type,
    /// Human name (path or executable).
    Name,
    /// Process argument vector.
    Argv,
    /// Process environment.
    Env,
    /// The process that forked this process; the value is an
    /// [`ObjectRef`].
    ForkParent,
    /// Anything else (PASS allows application-defined records).
    Custom(String),
}

impl RecordKey {
    /// The attribute name used on the wire.
    pub fn attr_name(&self) -> &str {
        match self {
            RecordKey::Input => "input",
            RecordKey::Type => "type",
            RecordKey::Name => "name",
            RecordKey::Argv => "argv",
            RecordKey::Env => "env",
            RecordKey::ForkParent => "forkparent",
            RecordKey::Custom(s) => s,
        }
    }

    /// Parses an attribute name back into a key.
    pub fn from_attr_name(s: &str) -> RecordKey {
        match s {
            "input" => RecordKey::Input,
            "type" => RecordKey::Type,
            "name" => RecordKey::Name,
            "argv" => RecordKey::Argv,
            "env" => RecordKey::Env,
            "forkparent" => RecordKey::ForkParent,
            other => RecordKey::Custom(other.to_string()),
        }
    }

    /// `true` when values under this key reference ancestor object
    /// versions (and therefore participate in causal-ordering checks and
    /// ancestry queries).
    pub fn is_reference(&self) -> bool {
        matches!(self, RecordKey::Input | RecordKey::ForkParent)
    }
}

impl fmt::Display for RecordKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.attr_name())
    }
}

/// The value of a provenance record.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RecordValue {
    /// A reference to an ancestor object version.
    Ref(ObjectRef),
    /// Free-form text (possibly large: environments routinely exceed the
    /// 1 KB SimpleDB value limit, which is what forces overflow objects).
    Text(String),
}

impl RecordValue {
    /// Renders the wire form.
    pub fn render(&self) -> String {
        match self {
            RecordValue::Ref(r) => r.render(),
            RecordValue::Text(t) => t.clone(),
        }
    }

    /// Size of the wire form in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            RecordValue::Ref(r) => r.render().len(),
            RecordValue::Text(t) => t.len(),
        }
    }
}

impl fmt::Display for RecordValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One provenance record: `(key, value)`.
///
/// # Examples
///
/// ```
/// use pass::{ObjectRef, ProvenanceRecord, RecordKey, RecordValue};
///
/// let dep = ProvenanceRecord::input(ObjectRef::new("bar", 2));
/// assert_eq!(dep.to_pair(), ("input".to_string(), "bar:2".to_string()));
///
/// let parsed = ProvenanceRecord::from_pair("input", "bar:2");
/// assert_eq!(parsed, dep);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Record key.
    pub key: RecordKey,
    /// Record value.
    pub value: RecordValue,
}

impl ProvenanceRecord {
    /// Builds a record.
    pub fn new(key: RecordKey, value: RecordValue) -> ProvenanceRecord {
        ProvenanceRecord { key, value }
    }

    /// An `(input, ancestor)` dependency record.
    pub fn input(ancestor: ObjectRef) -> ProvenanceRecord {
        ProvenanceRecord::new(RecordKey::Input, RecordValue::Ref(ancestor))
    }

    /// A `(type, ...)` record.
    pub fn of_type(type_value: &str) -> ProvenanceRecord {
        ProvenanceRecord::new(RecordKey::Type, RecordValue::Text(type_value.to_string()))
    }

    /// A `(name, ...)` record.
    pub fn named(name: impl Into<String>) -> ProvenanceRecord {
        ProvenanceRecord::new(RecordKey::Name, RecordValue::Text(name.into()))
    }

    /// Serialises to an attribute pair.
    pub fn to_pair(&self) -> (String, String) {
        (self.key.attr_name().to_string(), self.value.render())
    }

    /// Parses a record from an attribute pair. Values under reference
    /// keys that parse as `name:version` become [`RecordValue::Ref`];
    /// everything else is text.
    pub fn from_pair(name: &str, value: &str) -> ProvenanceRecord {
        let key = RecordKey::from_attr_name(name);
        let value = if key.is_reference() {
            match ObjectRef::parse(value) {
                Some(r) => RecordValue::Ref(r),
                None => RecordValue::Text(value.to_string()),
            }
        } else {
            RecordValue::Text(value.to_string())
        };
        ProvenanceRecord { key, value }
    }

    /// The ancestor this record references, if it is a dependency record.
    pub fn reference(&self) -> Option<&ObjectRef> {
        match (&self.key, &self.value) {
            (k, RecordValue::Ref(r)) if k.is_reference() => Some(r),
            _ => None,
        }
    }

    /// Wire size: key bytes + value bytes.
    pub fn byte_len(&self) -> usize {
        self.key.attr_name().len() + self.value.byte_len()
    }
}

impl fmt::Display for ProvenanceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.key, self.value)
    }
}

/// Extracts every ancestor reference from a record set.
pub fn references(records: &[ProvenanceRecord]) -> Vec<&ObjectRef> {
    records
        .iter()
        .filter_map(ProvenanceRecord::reference)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_round_trip_for_all_keys() {
        let records = vec![
            ProvenanceRecord::input(ObjectRef::new("bar", 2)),
            ProvenanceRecord::of_type("file"),
            ProvenanceRecord::named("/out/x"),
            ProvenanceRecord::new(RecordKey::Argv, RecordValue::Text("cc -O2".into())),
            ProvenanceRecord::new(RecordKey::Env, RecordValue::Text("PATH=/bin".into())),
            ProvenanceRecord::new(
                RecordKey::ForkParent,
                RecordValue::Ref(ObjectRef::new("proc:1:make", 1)),
            ),
            ProvenanceRecord::new(
                RecordKey::Custom("kernel".into()),
                RecordValue::Text("2.6".into()),
            ),
        ];
        for r in records {
            let (k, v) = r.to_pair();
            assert_eq!(ProvenanceRecord::from_pair(&k, &v), r, "round trip for {k}");
        }
    }

    #[test]
    fn reference_extraction() {
        let dep = ProvenanceRecord::input(ObjectRef::new("a", 1));
        assert_eq!(dep.reference(), Some(&ObjectRef::new("a", 1)));
        let txt = ProvenanceRecord::of_type("file");
        assert_eq!(txt.reference(), None);
        // A non-reference key holding something colon-shaped stays text.
        let tricky = ProvenanceRecord::from_pair("name", "a:1");
        assert_eq!(tricky.reference(), None);
    }

    #[test]
    fn unparseable_input_value_degrades_to_text() {
        let r = ProvenanceRecord::from_pair("input", "not-a-ref");
        assert_eq!(r.value, RecordValue::Text("not-a-ref".into()));
        assert_eq!(r.reference(), None);
    }

    #[test]
    fn byte_len_counts_key_and_value() {
        let r = ProvenanceRecord::input(ObjectRef::new("bar", 2));
        assert_eq!(r.byte_len(), "input".len() + "bar:2".len());
    }

    #[test]
    fn references_helper_collects_all() {
        let records = vec![
            ProvenanceRecord::input(ObjectRef::new("a", 1)),
            ProvenanceRecord::of_type("file"),
            ProvenanceRecord::input(ObjectRef::new("b", 3)),
        ];
        let refs = references(&records);
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn display_forms() {
        let r = ProvenanceRecord::input(ObjectRef::new("bar", 2));
        assert_eq!(r.to_string(), "(input, bar:2)");
    }
}

//! The timer-driven background flush daemon.
//!
//! [`crate::GroupCommitFlusher`] bounds *how much* can sit in the
//! buffer, but it drains synchronously in the submitting client and has
//! no clock, so a trickle of closes can leave a small group waiting
//! arbitrarily long. [`FlushDaemon`] adds the missing half: it holds a
//! [`simworld::SimWorld`] handle and registers a **timer event** in the
//! world's deterministic scheduler whenever the buffer goes non-empty
//! ([`crate::FlushPolicy::max_age`]); if the deadline passes before a
//! size threshold trips, the pending group drains anyway. Count, bytes
//! *and* latency are now all bounded — the behaviour of the paper's
//! background commit daemon, applied to the client-side flush path.
//!
//! Like the flusher it wraps, the daemon is backend-agnostic: it owns
//! *when to drain*, never a service handle. The cloud layer's pipelined
//! persist path (`provenance_cloud::drive_pipelined`) pumps it and
//! pushes each due group through `ProvenanceStore::persist_batch` while
//! earlier groups are still in flight.

use simworld::{SimWorld, TimerId};

use crate::flush::FileFlush;
use crate::group::{FlushPolicy, GroupCommitFlusher};

/// A group-commit flusher with a deadline: buffers flushes, drains on a
/// count/byte threshold **or** when the oldest pending flush has waited
/// [`FlushPolicy::max_age`] on the world's clock.
///
/// # Examples
///
/// ```
/// use pass::{FileFlush, FlushDaemon, FlushPolicy};
/// use simworld::{Blob, SimDuration, SimWorld};
///
/// let world = SimWorld::counting();
/// let policy = FlushPolicy::new(100, u64::MAX).with_max_age(SimDuration::from_millis(500));
/// let mut daemon = FlushDaemon::new(&world, policy);
///
/// let flush = FileFlush::builder("a").data(Blob::from("1")).build();
/// assert!(daemon.submit(flush).is_empty()); // buffered, timer armed
/// world.advance(SimDuration::from_secs(1));
/// let group = daemon.poll().expect("deadline passed: the group drains");
/// assert_eq!(group.len(), 1);
/// ```
#[derive(Debug)]
pub struct FlushDaemon {
    world: SimWorld,
    flusher: GroupCommitFlusher,
    timer: Option<TimerId>,
    drains: u64,
    timer_drains: u64,
}

impl FlushDaemon {
    /// A daemon with nothing buffered.
    ///
    /// # Panics
    ///
    /// Panics if the policy has a zero threshold (see
    /// [`FlushPolicy::assert_valid`]).
    pub fn new(world: &SimWorld, policy: FlushPolicy) -> FlushDaemon {
        policy.assert_valid();
        FlushDaemon {
            world: world.clone(),
            flusher: GroupCommitFlusher::new(policy),
            timer: None,
            drains: 0,
            timer_drains: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> FlushPolicy {
        self.flusher.policy()
    }

    /// Flushes currently buffered.
    pub fn pending(&self) -> usize {
        self.flusher.pending()
    }

    /// Data + provenance bytes currently buffered.
    pub fn pending_bytes(&self) -> u64 {
        self.flusher.pending_bytes()
    }

    /// Groups drained so far (threshold and timer drains combined; the
    /// explicit [`FlushDaemon::drain`] is not counted).
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Drains forced by the age deadline rather than a size threshold.
    pub fn timer_drains(&self) -> u64 {
        self.timer_drains
    }

    /// The pending deadline, if a timer is armed.
    pub fn deadline(&self) -> Option<simworld::SimInstant> {
        self.timer.and_then(|t| self.world.timer_deadline(t))
    }

    /// Buffers one flush and returns every group that is now due — the
    /// expired-deadline group (if the timer fired while the client was
    /// between closes) and/or the threshold-tripped group. Usually zero
    /// or one group; the caller must persist each in order.
    #[must_use = "returned groups are no longer buffered; they must be persisted"]
    pub fn submit(&mut self, flush: FileFlush) -> Vec<Vec<FileFlush>> {
        let mut due = Vec::new();
        // A deadline that expired while the client was away drains
        // first, preserving submission order across the two groups.
        if let Some(group) = self.poll() {
            due.push(group);
        }
        if let Some(group) = self.flusher.submit(flush) {
            self.disarm();
            self.drains += 1;
            due.push(group);
        } else {
            self.arm();
        }
        due
    }

    /// Checks the age deadline: returns the pending group when the
    /// oldest buffered flush has waited past
    /// [`FlushPolicy::max_age`]. Call between submissions (or from an
    /// idle loop) to bound flush latency.
    #[must_use = "a returned group is no longer buffered; it must be persisted"]
    pub fn poll(&mut self) -> Option<Vec<FileFlush>> {
        let timer = self.timer?;
        if !self.world.timer_due(timer) {
            return None;
        }
        self.disarm();
        let group = self.flusher.drain();
        debug_assert!(!group.is_empty(), "a timer is only armed while buffering");
        self.drains += 1;
        self.timer_drains += 1;
        Some(group)
    }

    /// Hands back everything buffered (possibly empty) and disarms the
    /// timer — the shutdown / sync path, and the tail of every run.
    pub fn drain(&mut self) -> Vec<FileFlush> {
        self.disarm();
        self.flusher.drain()
    }

    /// Arms the deadline timer if the policy has one, the buffer is
    /// non-empty, and no timer is already running (the deadline tracks
    /// the *oldest* pending flush).
    fn arm(&mut self) {
        if self.timer.is_none() && self.flusher.pending() > 0 {
            if let Some(age) = self.policy().max_age {
                self.timer = Some(self.world.schedule_timer(age));
            }
        }
    }

    fn disarm(&mut self) {
        if let Some(timer) = self.timer.take() {
            self.world.cancel_timer(timer);
        }
    }
}

impl Drop for FlushDaemon {
    /// A dropped daemon (client death, crash-path unwinding) releases
    /// its live timer so the world's scheduler holds no orphan entries.
    fn drop(&mut self) {
        self.disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::{Blob, SimDuration};

    fn flush_of(name: &str, bytes: u64) -> FileFlush {
        FileFlush::builder(name)
            .data(Blob::synthetic(1, bytes))
            .build()
    }

    fn policy(max_flushes: usize, age_ms: u64) -> FlushPolicy {
        FlushPolicy::new(max_flushes, u64::MAX).with_max_age(SimDuration::from_millis(age_ms))
    }

    #[test]
    fn count_threshold_still_drains_eagerly() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(&world, policy(2, 1_000));
        assert!(d.submit(flush_of("a", 1)).is_empty());
        let due = d.submit(flush_of("b", 1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].len(), 2);
        assert_eq!(d.pending(), 0);
        assert_eq!(d.drains(), 1);
        assert_eq!(d.timer_drains(), 0);
        assert!(d.deadline().is_none(), "drain disarms the timer");
    }

    #[test]
    fn deadline_drains_a_small_group() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(&world, policy(100, 500));
        assert!(d.submit(flush_of("a", 1)).is_empty());
        assert!(d.poll().is_none(), "deadline not reached yet");
        world.advance(SimDuration::from_millis(501));
        let group = d.poll().expect("deadline passed");
        assert_eq!(group.len(), 1);
        assert_eq!(d.timer_drains(), 1);
        assert!(d.poll().is_none(), "nothing left to drain");
    }

    #[test]
    fn deadline_tracks_the_oldest_pending_flush() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(&world, policy(100, 500));
        let _ = d.submit(flush_of("a", 1));
        let deadline = d.deadline().expect("timer armed on first flush");
        world.advance(SimDuration::from_millis(400));
        let _ = d.submit(flush_of("b", 1));
        assert_eq!(
            d.deadline(),
            Some(deadline),
            "a second flush must not push the first one's deadline out"
        );
        world.advance(SimDuration::from_millis(101));
        assert_eq!(d.poll().map(|g| g.len()), Some(2));
    }

    #[test]
    fn submit_after_expiry_returns_old_group_then_buffers() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(&world, policy(100, 500));
        let _ = d.submit(flush_of("a", 1));
        world.advance(SimDuration::from_secs(1));
        // The deadline fired while the client was away: the stale group
        // drains before the new flush is buffered.
        let due = d.submit(flush_of("b", 1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0][0].object.name, "a");
        assert_eq!(d.pending(), 1, "the new flush is buffered afresh");
        assert!(d.deadline().is_some(), "with a fresh deadline");
    }

    #[test]
    fn explicit_drain_disarms_and_empties() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(&world, policy(100, 500));
        let _ = d.submit(flush_of("a", 1));
        assert_eq!(d.drain().len(), 1);
        assert!(d.deadline().is_none());
        world.advance(SimDuration::from_secs(5));
        assert!(d.poll().is_none(), "no ghost timer after an explicit drain");
    }

    #[test]
    fn byte_threshold_drains_through_daemon() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(
            &world,
            FlushPolicy::new(100, 1000).with_max_age(SimDuration::from_secs(10)),
        );
        assert!(d.submit(flush_of("small", 10)).is_empty());
        let due = d.submit(flush_of("big", 2000));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].len(), 2);
    }

    #[test]
    fn no_max_age_means_no_timer() {
        let world = SimWorld::counting();
        let mut d = FlushDaemon::new(&world, FlushPolicy::every(100));
        let _ = d.submit(flush_of("a", 1));
        assert!(d.deadline().is_none());
        world.advance(SimDuration::from_days(1));
        assert!(d.poll().is_none(), "size thresholds only");
        assert_eq!(d.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "max_bytes must be positive")]
    fn daemon_rejects_invalid_policy() {
        let world = SimWorld::counting();
        FlushDaemon::new(
            &world,
            FlushPolicy {
                max_flushes: 10,
                max_bytes: 0,
                max_age: None,
            },
        );
    }
}

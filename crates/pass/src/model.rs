//! Object identities and versions.
//!
//! PASS names every persistent object (file) and transient object
//! (process, pipe) and versions each one to preserve causality: if
//! version 2 of `foo` was derived from version 2 of `bar`, the provenance
//! record says `(input, bar:2)` — referencing the *version*, not just the
//! name, so later changes to `bar` cannot corrupt `foo`'s history.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A reference to one version of one object — the paper's `bar:2`
/// notation.
///
/// # Examples
///
/// ```
/// use pass::ObjectRef;
///
/// let r = ObjectRef::new("results/out.csv", 2);
/// assert_eq!(r.render(), "results/out.csv:2");
/// assert_eq!(ObjectRef::parse("results/out.csv:2"), Some(r));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ObjectRef {
    /// Object name: a file path, or `proc:<pid>:<exe>` for processes.
    pub name: String,
    /// Version number, starting at 1.
    pub version: u32,
}

impl ObjectRef {
    /// Builds a reference.
    pub fn new(name: impl Into<String>, version: u32) -> ObjectRef {
        ObjectRef {
            name: name.into(),
            version,
        }
    }

    /// Renders as `name:version`.
    pub fn render(&self) -> String {
        format!("{}:{}", self.name, self.version)
    }

    /// Parses `name:version`, splitting at the *last* colon (names may
    /// contain colons, e.g. `proc:42:cc`). Returns `None` when the tail
    /// is not a number.
    pub fn parse(s: &str) -> Option<ObjectRef> {
        let (name, version) = s.rsplit_once(':')?;
        let version = version.parse().ok()?;
        if name.is_empty() {
            return None;
        }
        Some(ObjectRef {
            name: name.to_string(),
            version,
        })
    }

    /// The SimpleDB item name for this object version: the paper
    /// concatenates name and version (its example is `ItemName=foo 2`).
    pub fn item_name(&self) -> String {
        format!("{} {}", self.name, self.version)
    }

    /// Parses an item name back (inverse of [`ObjectRef::item_name`]).
    pub fn parse_item_name(s: &str) -> Option<ObjectRef> {
        let (name, version) = s.rsplit_once(' ')?;
        let version = version.parse().ok()?;
        if name.is_empty() {
            return None;
        }
        Some(ObjectRef {
            name: name.to_string(),
            version,
        })
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.version)
    }
}

/// Whether an object is persistent or transient — PASS records
/// provenance for both (§2.4).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A persistent file.
    File,
    /// A transient process. Its "data" is empty; only provenance is
    /// stored.
    Process,
}

impl ObjectKind {
    /// The value of the `type` provenance record.
    pub fn type_value(self) -> &'static str {
        match self {
            ObjectKind::File => "file",
            ObjectKind::Process => "process",
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_value())
    }
}

/// Canonical object name for a process.
pub fn process_name(pid: u32, exe: &str) -> String {
    format!("proc:{pid}:{exe}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        for name in ["foo", "a/b/c.txt", "proc:42:cc", "name:with:colons"] {
            let r = ObjectRef::new(name, 7);
            assert_eq!(ObjectRef::parse(&r.render()), Some(r));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(ObjectRef::parse("nocolon"), None);
        assert_eq!(ObjectRef::parse("name:notanumber"), None);
        assert_eq!(ObjectRef::parse(":3"), None);
    }

    #[test]
    fn item_name_round_trip() {
        let r = ObjectRef::new("dir/foo bar.txt", 2);
        assert_eq!(ObjectRef::parse_item_name(&r.item_name()), Some(r));
    }

    #[test]
    fn item_name_matches_paper_example() {
        // §4.2: version 2 of object foo is represented as ItemName=foo 2.
        assert_eq!(ObjectRef::new("foo", 2).item_name(), "foo 2");
    }

    #[test]
    fn kind_type_values() {
        assert_eq!(ObjectKind::File.type_value(), "file");
        assert_eq!(ObjectKind::Process.type_value(), "process");
    }

    #[test]
    fn process_names_embed_pid_and_exe() {
        assert_eq!(process_name(42, "cc"), "proc:42:cc");
    }
}

//! The PASS observer: turns a trace of process/file events into
//! causally-ordered, versioned provenance flushes.
//!
//! The real PASS (Muniswamy-Reddy et al., USENIX ATC '06) intercepts
//! system calls in the kernel; this observer consumes the same
//! information as an explicit [`TraceEvent`] stream (produced here by the
//! `workloads` generators). It reproduces the PASS behaviours the cloud
//! paper depends on:
//!
//! * **records on data flow** — a `read` makes the process depend on the
//!   file version read; a `write` makes the file version depend on the
//!   process version writing (§2.4);
//! * **transient objects** — processes carry their own provenance
//!   (`type`, `name`, `argv`, `env`, `forkparent`, `input`s) and are
//!   flushed like files, minus the data;
//! * **versioning for causality / cycle avoidance** — a file version
//!   freezes once read or persisted, so later writes open a new version
//!   that depends on its predecessor; a process gets a new version when
//!   it reads new input after having produced output, so earlier outputs
//!   never appear to depend on later inputs;
//! * **flush on close** — a file ships to the storage backend when
//!   closed, *after* every object version it references (eventual causal
//!   ordering, §3).

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use simworld::Blob;

use crate::flush::FileFlush;
use crate::model::{process_name, ObjectKind, ObjectRef};
use crate::records::{ProvenanceRecord, RecordKey, RecordValue};

/// One entry of the input trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Declares a pre-existing input file (e.g. source code, a public
    /// data set). Flushed immediately as version 1 with no ancestors.
    Source {
        /// File path.
        path: String,
        /// File content.
        data: Blob,
    },
    /// A process starts.
    Exec {
        /// Process id; must be unique within the trace.
        pid: u32,
        /// Executable name (`cc`, `blastall`, ...).
        exe: String,
        /// Argument vector, pre-joined.
        argv: String,
        /// Environment, pre-joined. Often larger than 1 KB — which is
        /// exactly what overflows SimpleDB values in the paper.
        env: String,
        /// Forking process, if traced.
        parent: Option<u32>,
    },
    /// A process reads a file.
    Read {
        /// Reader pid.
        pid: u32,
        /// File path.
        path: String,
    },
    /// A process writes a file (content is captured at close).
    Write {
        /// Writer pid.
        pid: u32,
        /// File path.
        path: String,
    },
    /// A process closes a file; if the file was written, this is the
    /// moment PASS persists data + provenance.
    Close {
        /// Closing pid.
        pid: u32,
        /// File path.
        path: String,
        /// Final content of this version.
        data: Blob,
    },
    /// A process exits; unfinished provenance is flushed.
    Exit {
        /// Exiting pid.
        pid: u32,
    },
}

/// Errors the observer raises on malformed traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObserverError {
    /// An event referenced a pid never `Exec`ed (or already exited).
    UnknownProcess {
        /// The pid.
        pid: u32,
    },
    /// A read/close referenced a file that does not exist yet.
    UnknownFile {
        /// The path.
        path: String,
    },
    /// Two `Exec` events used the same pid.
    DuplicatePid {
        /// The pid.
        pid: u32,
    },
}

impl fmt::Display for ObserverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserverError::UnknownProcess { pid } => write!(f, "unknown process pid {pid}"),
            ObserverError::UnknownFile { path } => write!(f, "unknown file {path:?}"),
            ObserverError::DuplicatePid { pid } => write!(f, "duplicate pid {pid}"),
        }
    }
}

impl Error for ObserverError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ObserverError>;

#[derive(Debug)]
struct FileState {
    version: u32,
    data: Blob,
    records: Vec<ProvenanceRecord>,
    /// Version may not absorb more writes (it was read or persisted).
    frozen: bool,
    /// Unpersisted changes exist for the current version.
    dirty: bool,
    /// Process versions already recorded as inputs of this version.
    writers: HashSet<ObjectRef>,
}

#[derive(Debug)]
struct ProcState {
    exe: String,
    version: u32,
    records: Vec<ProvenanceRecord>,
    /// Wrote output under the current version.
    has_written: bool,
    /// Current version already emitted.
    flushed: bool,
    /// Files already recorded as inputs of the current version.
    inputs: HashSet<ObjectRef>,
    exited: bool,
}

impl ProcState {
    fn object_ref(&self, pid: u32) -> ObjectRef {
        ObjectRef::new(process_name(pid, &self.exe), self.version)
    }
}

/// The PASS observer.
///
/// Feed [`TraceEvent`]s in order; collect the [`FileFlush`]es it emits —
/// they come out in an order that satisfies causal ordering (every
/// referenced ancestor version is emitted before its descendant).
///
/// # Examples
///
/// ```
/// use pass::{Observer, TraceEvent};
/// use simworld::Blob;
///
/// let mut obs = Observer::new();
/// let mut flushes = Vec::new();
/// for ev in [
///     TraceEvent::source("in.txt", Blob::from("hi")),
///     TraceEvent::exec(1, "wc", "wc in.txt", "PATH=/bin", None),
///     TraceEvent::read(1, "in.txt"),
///     TraceEvent::write(1, "out.txt"),
///     TraceEvent::close(1, "out.txt", Blob::from("1 1 3")),
///     TraceEvent::exit(1),
/// ] {
///     flushes.extend(obs.observe(ev)?);
/// }
/// // in.txt, the wc process, and out.txt — in causal order.
/// let names: Vec<_> = flushes.iter().map(|f| f.object.render()).collect();
/// assert_eq!(names, vec!["in.txt:1", "proc:1:wc:1", "out.txt:1"]);
/// # Ok::<(), pass::ObserverError>(())
/// ```
#[derive(Debug, Default)]
pub struct Observer {
    files: HashMap<String, FileState>,
    procs: HashMap<u32, ProcState>,
    flushed: HashSet<ObjectRef>,
    events_seen: u64,
}

impl Observer {
    /// A fresh observer.
    pub fn new() -> Observer {
        Observer::default()
    }

    /// Number of trace events consumed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Number of object versions flushed so far.
    pub fn versions_flushed(&self) -> usize {
        self.flushed.len()
    }

    /// Consumes one event; returns the flushes it triggered, ancestors
    /// first.
    ///
    /// # Errors
    ///
    /// [`ObserverError`] on malformed traces (unknown pid/path, reused
    /// pid).
    pub fn observe(&mut self, event: TraceEvent) -> Result<Vec<FileFlush>> {
        self.events_seen += 1;
        let mut out = Vec::new();
        match event {
            TraceEvent::Source { path, data } => self.on_source(path, data, &mut out),
            TraceEvent::Exec {
                pid,
                exe,
                argv,
                env,
                parent,
            } => self.on_exec(pid, exe, argv, env, parent)?,
            TraceEvent::Read { pid, path } => self.on_read(pid, &path, &mut out)?,
            TraceEvent::Write { pid, path } => self.on_write(pid, &path, &mut out)?,
            TraceEvent::Close { pid, path, data } => self.on_close(pid, &path, data, &mut out)?,
            TraceEvent::Exit { pid } => self.on_exit(pid, &mut out)?,
        }
        Ok(out)
    }

    /// Flushes everything still pending (dirty files, unflushed
    /// processes). Call at end of trace.
    pub fn finish(&mut self) -> Vec<FileFlush> {
        let mut out = Vec::new();
        let dirty_files: Vec<String> = self
            .files
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(p, _)| p.clone())
            .collect();
        for path in dirty_files {
            self.flush_file(&path, &mut out);
        }
        let pids: Vec<u32> = self
            .procs
            .iter()
            .filter(|(_, p)| !p.flushed)
            .map(|(pid, _)| *pid)
            .collect();
        for pid in pids {
            self.flush_process(pid, &mut out);
        }
        out
    }

    fn on_source(&mut self, path: String, data: Blob, out: &mut Vec<FileFlush>) {
        let records = vec![
            ProvenanceRecord::named(path.clone()),
            ProvenanceRecord::of_type(ObjectKind::File.type_value()),
        ];
        let state = FileState {
            version: 1,
            data,
            records,
            frozen: true, // a later write opens version 2
            dirty: false,
            writers: HashSet::new(),
        };
        let flush = FileFlush {
            object: ObjectRef::new(path.clone(), 1),
            kind: ObjectKind::File,
            data: state.data.clone(),
            records: state.records.clone(),
        };
        self.files.insert(path, state);
        self.flushed.insert(flush.object.clone());
        out.push(flush);
    }

    fn on_exec(
        &mut self,
        pid: u32,
        exe: String,
        argv: String,
        env: String,
        parent: Option<u32>,
    ) -> Result<()> {
        if self.procs.contains_key(&pid) {
            return Err(ObserverError::DuplicatePid { pid });
        }
        let mut records = vec![
            ProvenanceRecord::of_type(ObjectKind::Process.type_value()),
            ProvenanceRecord::named(exe.clone()),
            ProvenanceRecord::new(RecordKey::Argv, RecordValue::Text(argv)),
            ProvenanceRecord::new(RecordKey::Env, RecordValue::Text(env)),
        ];
        if let Some(ppid) = parent {
            let parent_state = self.live_proc(ppid)?;
            records.push(ProvenanceRecord::new(
                RecordKey::ForkParent,
                RecordValue::Ref(parent_state.object_ref(ppid)),
            ));
        }
        self.procs.insert(
            pid,
            ProcState {
                exe,
                version: 1,
                records,
                has_written: false,
                flushed: false,
                inputs: HashSet::new(),
                exited: false,
            },
        );
        Ok(())
    }

    fn on_read(&mut self, pid: u32, path: &str, out: &mut Vec<FileFlush>) -> Result<()> {
        if !self.files.contains_key(path) {
            return Err(ObserverError::UnknownFile {
                path: path.to_string(),
            });
        }
        self.live_proc(pid)?;

        // Version the process on read-after-write so outputs produced
        // before this read cannot appear to depend on it (cycle
        // avoidance). The old version must reach the backend first.
        if self.procs[&pid].has_written {
            if !self.procs[&pid].flushed {
                self.flush_process(pid, out);
            }
            let proc = self.procs.get_mut(&pid).expect("checked above");
            let prev = proc.object_ref(pid);
            proc.version += 1;
            proc.has_written = false;
            proc.flushed = false;
            proc.inputs.clear();
            proc.records = vec![
                ProvenanceRecord::of_type(ObjectKind::Process.type_value()),
                ProvenanceRecord::named(proc.exe.clone()),
                ProvenanceRecord::input(prev),
            ];
        }

        let file = self.files.get_mut(path).expect("checked above");
        file.frozen = true;
        let file_ref = ObjectRef::new(path.to_string(), file.version);
        let proc = self.procs.get_mut(&pid).expect("checked above");
        if proc.inputs.insert(file_ref.clone()) {
            proc.records.push(ProvenanceRecord::input(file_ref));
        }
        Ok(())
    }

    fn on_write(&mut self, pid: u32, path: &str, out: &mut Vec<FileFlush>) -> Result<()> {
        let proc_ref = self.live_proc(pid)?.object_ref(pid);

        if !self.files.contains_key(path) {
            self.files.insert(
                path.to_string(),
                FileState {
                    version: 0, // bumped to 1 below
                    data: Blob::empty(),
                    records: Vec::new(),
                    frozen: true,
                    dirty: false,
                    writers: HashSet::new(),
                },
            );
        }
        // Freeze-then-version: writing a frozen version opens a new one
        // that depends on its predecessor.
        let needs_new_version = self.files[path].frozen;
        if needs_new_version {
            // A frozen-but-dirty version was read by someone and never
            // closed; persist it before it becomes unreachable.
            if self.files[path].dirty {
                self.flush_file(path, out);
            }
            let file = self.files.get_mut(path).expect("inserted above");
            let prev_version = file.version;
            file.version += 1;
            file.frozen = false;
            file.writers.clear();
            file.records = vec![
                ProvenanceRecord::named(path.to_string()),
                ProvenanceRecord::of_type(ObjectKind::File.type_value()),
            ];
            if prev_version > 0 {
                file.records.push(ProvenanceRecord::input(ObjectRef::new(
                    path.to_string(),
                    prev_version,
                )));
            }
        }
        let file = self.files.get_mut(path).expect("inserted above");
        file.dirty = true;
        if file.writers.insert(proc_ref.clone()) {
            file.records.push(ProvenanceRecord::input(proc_ref));
        }
        self.procs
            .get_mut(&pid)
            .expect("live_proc checked")
            .has_written = true;
        Ok(())
    }

    fn on_close(
        &mut self,
        pid: u32,
        path: &str,
        data: Blob,
        out: &mut Vec<FileFlush>,
    ) -> Result<()> {
        self.live_proc(pid)?;
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| ObserverError::UnknownFile {
                path: path.to_string(),
            })?;
        if !file.dirty {
            // Close after read-only access: nothing to persist.
            return Ok(());
        }
        file.data = data;
        self.flush_file(path, out);
        Ok(())
    }

    fn on_exit(&mut self, pid: u32, out: &mut Vec<FileFlush>) -> Result<()> {
        self.live_proc(pid)?;
        if !self.procs[&pid].flushed {
            self.flush_process(pid, out);
        }
        self.procs.get_mut(&pid).expect("checked").exited = true;
        Ok(())
    }

    /// Emits the current version of `path` (ancestors first) and freezes
    /// it.
    fn flush_file(&mut self, path: &str, out: &mut Vec<FileFlush>) {
        let (object, ancestors) = {
            let file = &self.files[path];
            let object = ObjectRef::new(path.to_string(), file.version);
            let ancestors: Vec<ObjectRef> = crate::records::references(&file.records)
                .into_iter()
                .cloned()
                .collect();
            (object, ancestors)
        };
        if self.flushed.contains(&object) {
            return;
        }
        self.ensure_ancestors_flushed(&ancestors, out);
        let file = self.files.get_mut(path).expect("caller verified");
        file.frozen = true;
        file.dirty = false;
        let flush = FileFlush {
            object: object.clone(),
            kind: ObjectKind::File,
            data: file.data.clone(),
            records: file.records.clone(),
        };
        self.flushed.insert(object);
        out.push(flush);
    }

    /// Emits the current version of process `pid` (ancestors first).
    fn flush_process(&mut self, pid: u32, out: &mut Vec<FileFlush>) {
        let (object, ancestors, records) = {
            let proc = &self.procs[&pid];
            let object = proc.object_ref(pid);
            let ancestors: Vec<ObjectRef> = crate::records::references(&proc.records)
                .into_iter()
                .cloned()
                .collect();
            (object, ancestors, proc.records.clone())
        };
        if self.flushed.contains(&object) {
            return;
        }
        self.ensure_ancestors_flushed(&ancestors, out);
        self.procs.get_mut(&pid).expect("caller verified").flushed = true;
        self.flushed.insert(object.clone());
        out.push(FileFlush {
            object,
            kind: ObjectKind::Process,
            data: Blob::empty(),
            records,
        });
    }

    /// Recursively emits any unflushed ancestors. An ancestor reference
    /// always points at the referenced object's *current* version (older
    /// versions were flushed when they were frozen), so flushing the
    /// current state suffices.
    fn ensure_ancestors_flushed(&mut self, ancestors: &[ObjectRef], out: &mut Vec<FileFlush>) {
        for ancestor in ancestors {
            if self.flushed.contains(ancestor) {
                continue;
            }
            if let Some(rest) = ancestor.name.strip_prefix("proc:") {
                let pid: Option<u32> = rest.split(':').next().and_then(|p| p.parse().ok());
                if let Some(pid) = pid {
                    if self.procs.contains_key(&pid) {
                        debug_assert_eq!(
                            self.procs[&pid].version, ancestor.version,
                            "only current process versions may be unflushed"
                        );
                        self.flush_process(pid, out);
                        continue;
                    }
                }
            }
            if self.files.contains_key(&ancestor.name) {
                debug_assert_eq!(
                    self.files[&ancestor.name].version, ancestor.version,
                    "only current file versions may be unflushed"
                );
                self.flush_file(&ancestor.name, out);
            }
        }
    }

    fn live_proc(&self, pid: u32) -> Result<&ProcState> {
        match self.procs.get(&pid) {
            Some(p) if !p.exited => Ok(p),
            _ => Err(ObserverError::UnknownProcess { pid }),
        }
    }
}

impl TraceEvent {
    /// A [`TraceEvent::Source`].
    pub fn source(path: impl Into<String>, data: Blob) -> TraceEvent {
        TraceEvent::Source {
            path: path.into(),
            data,
        }
    }

    /// A [`TraceEvent::Exec`].
    pub fn exec(
        pid: u32,
        exe: impl Into<String>,
        argv: impl Into<String>,
        env: impl Into<String>,
        parent: Option<u32>,
    ) -> TraceEvent {
        TraceEvent::Exec {
            pid,
            exe: exe.into(),
            argv: argv.into(),
            env: env.into(),
            parent,
        }
    }

    /// A [`TraceEvent::Read`].
    pub fn read(pid: u32, path: impl Into<String>) -> TraceEvent {
        TraceEvent::Read {
            pid,
            path: path.into(),
        }
    }

    /// A [`TraceEvent::Write`].
    pub fn write(pid: u32, path: impl Into<String>) -> TraceEvent {
        TraceEvent::Write {
            pid,
            path: path.into(),
        }
    }

    /// A [`TraceEvent::Close`].
    pub fn close(pid: u32, path: impl Into<String>, data: Blob) -> TraceEvent {
        TraceEvent::Close {
            pid,
            path: path.into(),
            data,
        }
    }

    /// A [`TraceEvent::Exit`].
    pub fn exit(pid: u32) -> TraceEvent {
        TraceEvent::Exit { pid }
    }
}

//! The client-side cache directory.
//!
//! All three architectures in the paper "mirror the file system in a
//! local cache directory, reducing traffic to S3", with provenance cached
//! "in a file hidden from the user" (§4.1). [`CacheDir`] models that
//! mirror: the storage protocols read the data cache file and the
//! provenance cache file from here (protocol step 1 in §4.1/§4.2/§4.3),
//! and reads served from cache cost no cloud operations.

use std::collections::BTreeMap;

use simworld::Blob;

use crate::flush::FileFlush;
use crate::records::ProvenanceRecord;

/// A cached object: the data file plus the hidden provenance file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Object version held in the cache.
    pub version: u32,
    /// Data cache file.
    pub data: Blob,
    /// Provenance cache file.
    pub records: Vec<ProvenanceRecord>,
}

/// The local cache directory mirroring the cloud-backed file system.
///
/// # Examples
///
/// ```
/// use pass::{CacheDir, FileFlush};
/// use simworld::Blob;
///
/// let mut cache = CacheDir::new();
/// let flush = FileFlush::builder("a.txt").data(Blob::from("hi")).build();
/// cache.store(&flush);
/// assert_eq!(cache.get("a.txt").unwrap().version, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CacheDir {
    entries: BTreeMap<String, CacheEntry>,
}

impl CacheDir {
    /// An empty cache.
    pub fn new() -> CacheDir {
        CacheDir::default()
    }

    /// Mirrors a flushed object version (overwrites older versions).
    pub fn store(&mut self, flush: &FileFlush) {
        self.entries.insert(
            flush.object.name.clone(),
            CacheEntry {
                version: flush.object.version,
                data: flush.data.clone(),
                records: flush.records.clone(),
            },
        );
    }

    /// Looks up the cached entry for an object name.
    pub fn get(&self, name: &str) -> Option<&CacheEntry> {
        self.entries.get(name)
    }

    /// Drops an entry (e.g. on cache pressure), returning it if present.
    pub fn evict(&mut self, name: &str) -> Option<CacheEntry> {
        self.entries.remove(name)
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, entry)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CacheEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total bytes of cached data (not counting provenance).
    pub fn data_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flush(name: &str, version: u32, content: &str) -> FileFlush {
        FileFlush::builder(name)
            .version(version)
            .data(Blob::from(content))
            .build()
    }

    #[test]
    fn store_and_get() {
        let mut cache = CacheDir::new();
        assert!(cache.is_empty());
        cache.store(&flush("a", 1, "one"));
        let e = cache.get("a").unwrap();
        assert_eq!(e.version, 1);
        assert_eq!(&e.data.to_bytes()[..], b"one");
        assert!(!e.records.is_empty(), "provenance cached alongside data");
    }

    #[test]
    fn newer_version_replaces_older() {
        let mut cache = CacheDir::new();
        cache.store(&flush("a", 1, "one"));
        cache.store(&flush("a", 2, "two"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a").unwrap().version, 2);
    }

    #[test]
    fn evict_removes() {
        let mut cache = CacheDir::new();
        cache.store(&flush("a", 1, "x"));
        assert!(cache.evict("a").is_some());
        assert!(cache.get("a").is_none());
        assert!(cache.evict("a").is_none());
    }

    #[test]
    fn accounting() {
        let mut cache = CacheDir::new();
        cache.store(&flush("a", 1, "1234"));
        cache.store(&flush("b", 1, "12"));
        assert_eq!(cache.data_bytes(), 6);
        let names: Vec<&str> = cache.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

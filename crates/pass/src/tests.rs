//! Unit tests for the PASS observer: versioning, causal ordering, cycle
//! avoidance, error paths.

use std::collections::HashSet;

use simworld::Blob;

use crate::{FileFlush, ObjectKind, ObjectRef, Observer, ObserverError, RecordKey, TraceEvent};

/// Runs a trace and returns every flush, also asserting the key invariant
/// the paper calls (eventual) causal ordering: every ancestor reference
/// of a flush points to a version flushed before it.
fn run(events: Vec<TraceEvent>) -> Vec<FileFlush> {
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    for ev in events {
        flushes.extend(obs.observe(ev).expect("trace must be well-formed"));
    }
    flushes.extend(obs.finish());
    assert_causal_order(&flushes);
    flushes
}

fn assert_causal_order(flushes: &[FileFlush]) {
    let mut seen: HashSet<ObjectRef> = HashSet::new();
    for f in flushes {
        for anc in f.ancestors() {
            assert!(
                seen.contains(anc),
                "{} flushed before its ancestor {anc}",
                f.object
            );
        }
        assert!(
            seen.insert(f.object.clone()),
            "duplicate flush of {}",
            f.object
        );
    }
}

fn find<'a>(flushes: &'a [FileFlush], name: &str, version: u32) -> &'a FileFlush {
    flushes
        .iter()
        .find(|f| f.object.name == name && f.object.version == version)
        .unwrap_or_else(|| panic!("no flush for {name}:{version}"))
}

fn simple_pipeline() -> Vec<TraceEvent> {
    vec![
        TraceEvent::source("in.dat", Blob::from("input")),
        TraceEvent::exec(1, "tool", "tool in.dat", "PATH=/bin", None),
        TraceEvent::read(1, "in.dat"),
        TraceEvent::write(1, "out.dat"),
        TraceEvent::close(1, "out.dat", Blob::from("output")),
        TraceEvent::exit(1),
    ]
}

#[test]
fn pipeline_produces_three_objects_in_causal_order() {
    let flushes = run(simple_pipeline());
    let names: Vec<String> = flushes.iter().map(|f| f.object.render()).collect();
    assert_eq!(names, vec!["in.dat:1", "proc:1:tool:1", "out.dat:1"]);
}

#[test]
fn output_depends_on_process_which_depends_on_input() {
    let flushes = run(simple_pipeline());
    let out = find(&flushes, "out.dat", 1);
    assert_eq!(out.ancestors(), vec![&ObjectRef::new("proc:1:tool", 1)]);
    let proc = find(&flushes, "proc:1:tool", 1);
    assert_eq!(proc.ancestors(), vec![&ObjectRef::new("in.dat", 1)]);
    assert_eq!(proc.kind, ObjectKind::Process);
    assert!(proc.data.is_empty(), "transient objects carry no data");
}

#[test]
fn process_records_include_static_provenance() {
    let flushes = run(simple_pipeline());
    let proc = find(&flushes, "proc:1:tool", 1);
    let keys: Vec<&RecordKey> = proc.records.iter().map(|r| &r.key).collect();
    assert!(keys.contains(&&RecordKey::Name));
    assert!(keys.contains(&&RecordKey::Argv));
    assert!(keys.contains(&&RecordKey::Env));
    assert!(keys.contains(&&RecordKey::Type));
}

#[test]
fn fork_parent_recorded() {
    let flushes = run(vec![
        TraceEvent::exec(1, "make", "make all", "E=1", None),
        TraceEvent::exec(2, "cc", "cc -c x.c", "E=1", Some(1)),
        TraceEvent::write(2, "x.o"),
        TraceEvent::close(2, "x.o", Blob::from("obj")),
        TraceEvent::exit(2),
        TraceEvent::exit(1),
    ]);
    let cc = find(&flushes, "proc:2:cc", 1);
    assert!(
        cc.ancestors().iter().any(|r| r.name == "proc:1:make"),
        "child references forking parent"
    );
}

#[test]
fn rewrite_after_read_creates_new_version_with_chain() {
    let flushes = run(vec![
        TraceEvent::exec(1, "w1", "w1", "", None),
        TraceEvent::write(1, "f"),
        TraceEvent::close(1, "f", Blob::from("v1")),
        TraceEvent::exec(2, "r", "r f", "", None),
        TraceEvent::read(2, "f"), // freezes version 1
        TraceEvent::exit(2),
        TraceEvent::exec(3, "w2", "w2", "", None),
        TraceEvent::write(3, "f"), // opens version 2
        TraceEvent::close(3, "f", Blob::from("v2")),
        TraceEvent::exit(3),
        TraceEvent::exit(1),
    ]);
    let v2 = find(&flushes, "f", 2);
    assert!(
        v2.ancestors().contains(&&ObjectRef::new("f", 1)),
        "version 2 depends on version 1 (the PASS version chain)"
    );
    assert_eq!(&v2.data.to_bytes()[..], b"v2");
    assert_eq!(&find(&flushes, "f", 1).data.to_bytes()[..], b"v1");
}

#[test]
fn close_then_rewrite_by_same_process_also_versions() {
    // Closing persists (freezes) the version, so a rewrite opens v2 even
    // with no intervening reader.
    let flushes = run(vec![
        TraceEvent::exec(1, "w", "w", "", None),
        TraceEvent::write(1, "f"),
        TraceEvent::close(1, "f", Blob::from("one")),
        TraceEvent::write(1, "f"),
        TraceEvent::close(1, "f", Blob::from("two")),
        TraceEvent::exit(1),
    ]);
    assert_eq!(
        find(&flushes, "f", 2).data.to_bytes(),
        Blob::from("two").to_bytes()
    );
}

#[test]
fn consecutive_writes_without_freeze_stay_one_version() {
    let flushes = run(vec![
        TraceEvent::exec(1, "w", "w", "", None),
        TraceEvent::write(1, "f"),
        TraceEvent::write(1, "f"),
        TraceEvent::write(1, "f"),
        TraceEvent::close(1, "f", Blob::from("final")),
        TraceEvent::exit(1),
    ]);
    let file_versions: Vec<&FileFlush> = flushes.iter().filter(|f| f.object.name == "f").collect();
    assert_eq!(file_versions.len(), 1);
    // And the process is recorded as input only once (dedup).
    let inputs = file_versions[0].ancestors();
    assert_eq!(inputs.len(), 1);
}

#[test]
fn read_after_write_versions_the_process() {
    // Cycle avoidance: out1 must not depend on in2, which the process
    // read only after writing out1.
    let flushes = run(vec![
        TraceEvent::source("in1", Blob::from("1")),
        TraceEvent::source("in2", Blob::from("2")),
        TraceEvent::exec(1, "tool", "tool", "", None),
        TraceEvent::read(1, "in1"),
        TraceEvent::write(1, "out1"),
        TraceEvent::close(1, "out1", Blob::from("o1")),
        TraceEvent::read(1, "in2"), // read-after-write: proc version 2
        TraceEvent::write(1, "out2"),
        TraceEvent::close(1, "out2", Blob::from("o2")),
        TraceEvent::exit(1),
    ]);
    let out1 = find(&flushes, "out1", 1);
    assert_eq!(out1.ancestors(), vec![&ObjectRef::new("proc:1:tool", 1)]);
    let out2 = find(&flushes, "out2", 1);
    assert_eq!(out2.ancestors(), vec![&ObjectRef::new("proc:1:tool", 2)]);
    // Version 2 of the process chains to version 1 and carries the new
    // input.
    let p2 = find(&flushes, "proc:1:tool", 2);
    let p2_ancestors = p2.ancestors();
    assert!(p2_ancestors.contains(&&ObjectRef::new("proc:1:tool", 1)));
    assert!(p2_ancestors.contains(&&ObjectRef::new("in2", 1)));
    assert!(!p2_ancestors.contains(&&ObjectRef::new("in1", 1)));
    // Version 1 of the process saw only in1.
    let p1 = find(&flushes, "proc:1:tool", 1);
    assert!(p1.ancestors().contains(&&ObjectRef::new("in1", 1)));
    assert!(!p1.ancestors().contains(&&ObjectRef::new("in2", 1)));
}

#[test]
fn repeated_reads_dedupe_input_records() {
    let flushes = run(vec![
        TraceEvent::source("in", Blob::from("x")),
        TraceEvent::exec(1, "t", "t", "", None),
        TraceEvent::read(1, "in"),
        TraceEvent::read(1, "in"),
        TraceEvent::read(1, "in"),
        TraceEvent::exit(1),
    ]);
    let proc = find(&flushes, "proc:1:t", 1);
    assert_eq!(proc.ancestors().len(), 1);
}

#[test]
fn read_only_close_flushes_nothing() {
    let flushes = run(vec![
        TraceEvent::source("in", Blob::from("x")),
        TraceEvent::exec(1, "cat", "cat in", "", None),
        TraceEvent::read(1, "in"),
        TraceEvent::close(1, "in", Blob::from("x")),
        TraceEvent::exit(1),
    ]);
    // Only the source itself and the process (flushed at exit).
    assert_eq!(flushes.iter().filter(|f| f.object.name == "in").count(), 1);
}

#[test]
fn exit_flushes_processes_that_wrote_nothing() {
    let flushes = run(vec![
        TraceEvent::exec(1, "idle", "idle", "", None),
        TraceEvent::exit(1),
    ]);
    assert_eq!(flushes.len(), 1);
    assert_eq!(flushes[0].object.name, "proc:1:idle");
}

#[test]
fn finish_flushes_dirty_files_and_live_processes() {
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    for ev in [
        TraceEvent::exec(1, "w", "w", "", None),
        TraceEvent::write(1, "never-closed"),
    ] {
        flushes.extend(obs.observe(ev).unwrap());
    }
    assert!(flushes.is_empty(), "nothing flushed before close");
    let tail = obs.finish();
    assert_causal_order(&tail);
    assert!(tail.iter().any(|f| f.object.name == "never-closed"));
    assert!(tail.iter().any(|f| f.object.name == "proc:1:w"));
}

#[test]
fn frozen_dirty_file_is_flushed_before_new_version() {
    // Writer leaves f open; reader freezes v1; writer writes again. v1
    // must be persisted (with its data) before v2 exists, else v2's
    // chain dangles.
    let flushes = run(vec![
        TraceEvent::exec(1, "w", "w", "", None),
        TraceEvent::exec(2, "r", "r", "", None),
        TraceEvent::write(1, "f"),
        TraceEvent::read(2, "f"),  // freeze v1 while dirty
        TraceEvent::write(1, "f"), // must flush v1 first, then open v2
        TraceEvent::close(1, "f", Blob::from("v2")),
        TraceEvent::exit(1),
        TraceEvent::exit(2),
    ]);
    let versions: Vec<u32> = flushes
        .iter()
        .filter(|f| f.object.name == "f")
        .map(|f| f.object.version)
        .collect();
    assert_eq!(versions, vec![1, 2]);
}

#[test]
fn error_paths() {
    let mut obs = Observer::new();
    assert_eq!(
        obs.observe(TraceEvent::read(9, "nope")),
        Err(ObserverError::UnknownFile {
            path: "nope".into()
        })
    );
    obs.observe(TraceEvent::source("f", Blob::empty())).unwrap();
    assert_eq!(
        obs.observe(TraceEvent::read(9, "f")),
        Err(ObserverError::UnknownProcess { pid: 9 })
    );
    obs.observe(TraceEvent::exec(9, "t", "", "", None)).unwrap();
    assert_eq!(
        obs.observe(TraceEvent::exec(9, "t2", "", "", None)),
        Err(ObserverError::DuplicatePid { pid: 9 })
    );
    obs.observe(TraceEvent::exit(9)).unwrap();
    assert_eq!(
        obs.observe(TraceEvent::write(9, "g")),
        Err(ObserverError::UnknownProcess { pid: 9 }),
        "exited processes are gone"
    );
}

#[test]
fn stats_track_events_and_flushes() {
    let mut obs = Observer::new();
    for ev in simple_pipeline() {
        let _ = obs.observe(ev).unwrap();
    }
    assert_eq!(obs.events_seen(), 6);
    assert_eq!(obs.versions_flushed(), 3);
}

#[test]
fn diamond_dependency_flushes_each_version_once() {
    // in -> two tools -> two outputs -> combiner -> final
    let flushes = run(vec![
        TraceEvent::source("in", Blob::from("data")),
        TraceEvent::exec(1, "t1", "t1", "", None),
        TraceEvent::exec(2, "t2", "t2", "", None),
        TraceEvent::read(1, "in"),
        TraceEvent::read(2, "in"),
        TraceEvent::write(1, "a"),
        TraceEvent::write(2, "b"),
        TraceEvent::close(1, "a", Blob::from("a")),
        TraceEvent::close(2, "b", Blob::from("b")),
        TraceEvent::exec(3, "join", "join a b", "", None),
        TraceEvent::read(3, "a"),
        TraceEvent::read(3, "b"),
        TraceEvent::write(3, "final"),
        TraceEvent::close(3, "final", Blob::from("ab")),
        TraceEvent::exit(1),
        TraceEvent::exit(2),
        TraceEvent::exit(3),
    ]);
    // "in" appears exactly once even though two tools read it.
    assert_eq!(flushes.iter().filter(|f| f.object.name == "in").count(), 1);
    let join = find(&flushes, "proc:3:join", 1);
    assert_eq!(join.ancestors().len(), 2);
}

//! Group-commit flushing: coalesce pending [`FileFlush`]es and drain
//! them in batches.
//!
//! The paper's cost argument is that provenance must reach the cloud in
//! as few billable round trips as possible. The storage backends expose
//! batch APIs (`BatchPutAttributes`, `SendMessageBatch`, multi-object
//! delete), but PASS produces flushes one `close()` at a time — so the
//! front end needs a place where consecutive closes *coalesce* before
//! they ship. [`GroupCommitFlusher`] is that place: `submit` buffers a
//! flush and hands back a full group the moment a count or byte
//! threshold trips; the caller (the cloud layer's `persist_batch`, or
//! the bench harness) pushes each group through the batch APIs in one
//! round trip per service.
//!
//! The flusher is deliberately backend-agnostic: it owns the
//! *when-to-drain* policy only, never a service handle, so the same
//! buffering drives every architecture — and tests can pin the policy
//! without a cloud in sight.

use serde::{Deserialize, Serialize};
use simworld::SimDuration;

use crate::flush::FileFlush;

/// When a [`GroupCommitFlusher`] drains: whichever threshold trips
/// first. The optional [`FlushPolicy::max_age`] deadline is honoured by
/// the timer-driven [`crate::FlushDaemon`] (the plain flusher has no
/// clock), bounding flush *latency* as well as group size.
///
/// # Examples
///
/// ```
/// use pass::FlushPolicy;
///
/// let policy = FlushPolicy::default();
/// assert_eq!(policy.max_flushes, 25); // one SimpleDB batch per drain
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FlushPolicy {
    /// Drain once this many flushes are pending. The default matches
    /// SimpleDB's 25-item batch limit, so one drain is (at most) one
    /// `BatchPutAttributes` call on Architecture 2. Must be positive.
    pub max_flushes: usize,
    /// Drain once the pending flushes' data + provenance bytes reach
    /// this. Keeps a group of large files from holding many megabytes
    /// in memory waiting for the count threshold. Must be positive.
    pub max_bytes: u64,
    /// Drain once the oldest pending flush has waited this long, even
    /// if neither size threshold tripped — the latency bound a
    /// background [`crate::FlushDaemon`] enforces with a timer event.
    /// `None` disables the deadline (drain on size thresholds only);
    /// when set, it must be positive (a zero age would flush every
    /// submit, defeating coalescing).
    pub max_age: Option<SimDuration>,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            max_flushes: 25,
            max_bytes: 4 * 1024 * 1024,
            max_age: Some(SimDuration::from_millis(500)),
        }
    }
}

impl FlushPolicy {
    /// A validated policy. Prefer this over a struct literal: a zero
    /// count threshold would otherwise drain on every submit (or, with
    /// a careless `>` comparison, never) and a zero byte threshold
    /// likewise — silently. `max_age` starts as the default deadline;
    /// adjust with [`FlushPolicy::with_max_age`] /
    /// [`FlushPolicy::without_max_age`].
    ///
    /// # Panics
    ///
    /// Panics if `max_flushes` or `max_bytes` is zero.
    pub fn new(max_flushes: usize, max_bytes: u64) -> FlushPolicy {
        let policy = FlushPolicy {
            max_flushes,
            max_bytes,
            ..FlushPolicy::default()
        };
        policy.assert_valid();
        policy
    }

    /// A policy that drains after exactly `n` flushes (bytes unbounded,
    /// no age deadline) — the knob the batch-size sweeps turn.
    pub fn every(n: usize) -> FlushPolicy {
        FlushPolicy {
            max_flushes: n.max(1),
            max_bytes: u64::MAX,
            max_age: None,
        }
    }

    /// Replaces the age deadline.
    ///
    /// # Panics
    ///
    /// Panics if `age` is zero (that would flush every submit).
    pub fn with_max_age(mut self, age: SimDuration) -> FlushPolicy {
        self.max_age = Some(age);
        self.assert_valid();
        self
    }

    /// Removes the age deadline (size thresholds only).
    pub fn without_max_age(mut self) -> FlushPolicy {
        self.max_age = None;
        self
    }

    /// Panics when a threshold is degenerate. Called by every consumer
    /// of a policy ([`GroupCommitFlusher::new`],
    /// [`crate::FlushDaemon::new`]), so a zero threshold smuggled in
    /// through a struct literal is rejected at construction instead of
    /// silently flushing every submit or never.
    ///
    /// # Panics
    ///
    /// Panics if `max_flushes`, `max_bytes`, or a present `max_age` is
    /// zero.
    pub fn assert_valid(&self) {
        assert!(
            self.max_flushes > 0,
            "FlushPolicy.max_flushes must be positive (a zero count would flush every submit)"
        );
        assert!(
            self.max_bytes > 0,
            "FlushPolicy.max_bytes must be positive (a zero byte bound would flush every submit)"
        );
        if let Some(age) = self.max_age {
            assert!(
                age > SimDuration::ZERO,
                "FlushPolicy.max_age must be positive when set (a zero age would flush every submit)"
            );
        }
    }
}

/// Coalesces pending flushes into drain-ready groups.
///
/// # Examples
///
/// ```
/// use pass::{FileFlush, FlushPolicy, GroupCommitFlusher};
/// use simworld::Blob;
///
/// let mut flusher = GroupCommitFlusher::new(FlushPolicy::every(2));
/// let a = FileFlush::builder("a").data(Blob::from("1")).build();
/// let b = FileFlush::builder("b").data(Blob::from("2")).build();
/// assert!(flusher.submit(a).is_none()); // buffered
/// let group = flusher.submit(b).expect("second flush trips the policy");
/// assert_eq!(group.len(), 2);
/// assert_eq!(flusher.pending(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct GroupCommitFlusher {
    policy: FlushPolicy,
    pending: Vec<FileFlush>,
    pending_bytes: u64,
}

impl GroupCommitFlusher {
    /// An empty flusher with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy has a zero threshold (see
    /// [`FlushPolicy::assert_valid`]).
    pub fn new(policy: FlushPolicy) -> GroupCommitFlusher {
        policy.assert_valid();
        GroupCommitFlusher {
            policy,
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Flushes currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Data + provenance bytes currently buffered.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Buffers one flush. Returns `Some(group)` — every pending flush,
    /// submission order preserved — the moment a threshold trips; the
    /// caller must persist the group (it is no longer buffered).
    /// Durability therefore lags `close()` by at most one group: a
    /// client crash loses only the un-drained tail, which is the same
    /// window a crash between point persists already had.
    #[must_use = "a returned group is no longer buffered; it must be persisted"]
    pub fn submit(&mut self, flush: FileFlush) -> Option<Vec<FileFlush>> {
        self.pending_bytes += flush.data.len() + flush.provenance_bytes();
        self.pending.push(flush);
        if self.pending.len() >= self.policy.max_flushes
            || self.pending_bytes >= self.policy.max_bytes
        {
            return Some(self.drain());
        }
        None
    }

    /// Hands back everything buffered (possibly empty) — the shutdown /
    /// sync path, and the tail of every experiment.
    pub fn drain(&mut self) -> Vec<FileFlush> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::Blob;

    fn flush_of(name: &str, bytes: u64) -> FileFlush {
        FileFlush::builder(name)
            .data(Blob::synthetic(1, bytes))
            .record("input", "seed:1")
            .build()
    }

    #[test]
    fn count_threshold_trips_in_submission_order() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::every(3));
        assert!(f.submit(flush_of("a", 10)).is_none());
        assert!(f.submit(flush_of("b", 10)).is_none());
        assert_eq!(f.pending(), 2);
        let group = f.submit(flush_of("c", 10)).unwrap();
        let names: Vec<&str> = group.iter().map(|g| g.object.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(f.pending(), 0);
        assert_eq!(f.pending_bytes(), 0);
    }

    #[test]
    fn byte_threshold_trips_before_count() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::new(100, 1000));
        assert!(f.submit(flush_of("small", 10)).is_none());
        let group = f.submit(flush_of("big", 2000)).unwrap();
        assert_eq!(group.len(), 2, "the oversized flush drains immediately");
    }

    #[test]
    fn pending_bytes_counts_data_and_provenance() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::every(10));
        let flush = flush_of("x", 100);
        let expected = flush.data.len() + flush.provenance_bytes();
        assert!(f.submit(flush).is_none());
        assert_eq!(f.pending_bytes(), expected);
    }

    #[test]
    fn drain_empties_and_is_idempotent() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::default());
        assert!(f.submit(flush_of("a", 10)).is_none());
        assert_eq!(f.drain().len(), 1);
        assert!(f.drain().is_empty());
    }

    #[test]
    fn every_clamps_to_one() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::every(0));
        assert_eq!(
            f.submit(flush_of("a", 1)).map(|g| g.len()),
            Some(1),
            "degenerate policy degrades to point flushing, never to stalling"
        );
    }

    #[test]
    #[should_panic(expected = "max_flushes must be positive")]
    fn zero_count_threshold_is_rejected_at_construction() {
        FlushPolicy::new(0, 1024);
    }

    #[test]
    #[should_panic(expected = "max_bytes must be positive")]
    fn zero_byte_threshold_is_rejected_at_construction() {
        FlushPolicy::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "max_age must be positive")]
    fn zero_age_deadline_is_rejected() {
        FlushPolicy::new(10, 1024).with_max_age(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "max_flushes must be positive")]
    fn flusher_rejects_a_smuggled_zero_policy() {
        // A struct literal can bypass FlushPolicy::new; the flusher
        // still refuses it.
        GroupCommitFlusher::new(FlushPolicy {
            max_flushes: 0,
            max_bytes: 1024,
            max_age: None,
        });
    }

    #[test]
    fn max_age_builders_round_trip() {
        let p = FlushPolicy::new(10, 1024);
        assert_eq!(p.max_age, FlushPolicy::default().max_age);
        let aged = p.with_max_age(SimDuration::from_secs(2));
        assert_eq!(aged.max_age, Some(SimDuration::from_secs(2)));
        assert_eq!(aged.without_max_age().max_age, None);
        assert_eq!(FlushPolicy::every(5).max_age, None);
    }
}

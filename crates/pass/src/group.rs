//! Group-commit flushing: coalesce pending [`FileFlush`]es and drain
//! them in batches.
//!
//! The paper's cost argument is that provenance must reach the cloud in
//! as few billable round trips as possible. The storage backends expose
//! batch APIs (`BatchPutAttributes`, `SendMessageBatch`, multi-object
//! delete), but PASS produces flushes one `close()` at a time — so the
//! front end needs a place where consecutive closes *coalesce* before
//! they ship. [`GroupCommitFlusher`] is that place: `submit` buffers a
//! flush and hands back a full group the moment a count or byte
//! threshold trips; the caller (the cloud layer's `persist_batch`, or
//! the bench harness) pushes each group through the batch APIs in one
//! round trip per service.
//!
//! The flusher is deliberately backend-agnostic: it owns the
//! *when-to-drain* policy only, never a service handle, so the same
//! buffering drives every architecture — and tests can pin the policy
//! without a cloud in sight.

use serde::{Deserialize, Serialize};

use crate::flush::FileFlush;

/// When a [`GroupCommitFlusher`] drains: whichever threshold trips
/// first.
///
/// # Examples
///
/// ```
/// use pass::FlushPolicy;
///
/// let policy = FlushPolicy::default();
/// assert_eq!(policy.max_flushes, 25); // one SimpleDB batch per drain
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FlushPolicy {
    /// Drain once this many flushes are pending. The default matches
    /// SimpleDB's 25-item batch limit, so one drain is (at most) one
    /// `BatchPutAttributes` call on Architecture 2.
    pub max_flushes: usize,
    /// Drain once the pending flushes' data + provenance bytes reach
    /// this. Keeps a group of large files from holding many megabytes
    /// in memory waiting for the count threshold.
    pub max_bytes: u64,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            max_flushes: 25,
            max_bytes: 4 * 1024 * 1024,
        }
    }
}

impl FlushPolicy {
    /// A policy that drains after exactly `n` flushes (bytes unbounded)
    /// — the knob the batch-size sweeps turn.
    pub fn every(n: usize) -> FlushPolicy {
        FlushPolicy {
            max_flushes: n.max(1),
            max_bytes: u64::MAX,
        }
    }
}

/// Coalesces pending flushes into drain-ready groups.
///
/// # Examples
///
/// ```
/// use pass::{FileFlush, FlushPolicy, GroupCommitFlusher};
/// use simworld::Blob;
///
/// let mut flusher = GroupCommitFlusher::new(FlushPolicy::every(2));
/// let a = FileFlush::builder("a").data(Blob::from("1")).build();
/// let b = FileFlush::builder("b").data(Blob::from("2")).build();
/// assert!(flusher.submit(a).is_none()); // buffered
/// let group = flusher.submit(b).expect("second flush trips the policy");
/// assert_eq!(group.len(), 2);
/// assert_eq!(flusher.pending(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct GroupCommitFlusher {
    policy: FlushPolicy,
    pending: Vec<FileFlush>,
    pending_bytes: u64,
}

impl GroupCommitFlusher {
    /// An empty flusher with the given policy.
    pub fn new(policy: FlushPolicy) -> GroupCommitFlusher {
        GroupCommitFlusher {
            policy,
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Flushes currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Data + provenance bytes currently buffered.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Buffers one flush. Returns `Some(group)` — every pending flush,
    /// submission order preserved — the moment a threshold trips; the
    /// caller must persist the group (it is no longer buffered).
    /// Durability therefore lags `close()` by at most one group: a
    /// client crash loses only the un-drained tail, which is the same
    /// window a crash between point persists already had.
    #[must_use = "a returned group is no longer buffered; it must be persisted"]
    pub fn submit(&mut self, flush: FileFlush) -> Option<Vec<FileFlush>> {
        self.pending_bytes += flush.data.len() + flush.provenance_bytes();
        self.pending.push(flush);
        if self.pending.len() >= self.policy.max_flushes
            || self.pending_bytes >= self.policy.max_bytes
        {
            return Some(self.drain());
        }
        None
    }

    /// Hands back everything buffered (possibly empty) — the shutdown /
    /// sync path, and the tail of every experiment.
    pub fn drain(&mut self) -> Vec<FileFlush> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::Blob;

    fn flush_of(name: &str, bytes: u64) -> FileFlush {
        FileFlush::builder(name)
            .data(Blob::synthetic(1, bytes))
            .record("input", "seed:1")
            .build()
    }

    #[test]
    fn count_threshold_trips_in_submission_order() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::every(3));
        assert!(f.submit(flush_of("a", 10)).is_none());
        assert!(f.submit(flush_of("b", 10)).is_none());
        assert_eq!(f.pending(), 2);
        let group = f.submit(flush_of("c", 10)).unwrap();
        let names: Vec<&str> = group.iter().map(|g| g.object.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(f.pending(), 0);
        assert_eq!(f.pending_bytes(), 0);
    }

    #[test]
    fn byte_threshold_trips_before_count() {
        let mut f = GroupCommitFlusher::new(FlushPolicy {
            max_flushes: 100,
            max_bytes: 1000,
        });
        assert!(f.submit(flush_of("small", 10)).is_none());
        let group = f.submit(flush_of("big", 2000)).unwrap();
        assert_eq!(group.len(), 2, "the oversized flush drains immediately");
    }

    #[test]
    fn pending_bytes_counts_data_and_provenance() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::every(10));
        let flush = flush_of("x", 100);
        let expected = flush.data.len() + flush.provenance_bytes();
        assert!(f.submit(flush).is_none());
        assert_eq!(f.pending_bytes(), expected);
    }

    #[test]
    fn drain_empties_and_is_idempotent() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::default());
        assert!(f.submit(flush_of("a", 10)).is_none());
        assert_eq!(f.drain().len(), 1);
        assert!(f.drain().is_empty());
    }

    #[test]
    fn every_clamps_to_one() {
        let mut f = GroupCommitFlusher::new(FlushPolicy::every(0));
        assert_eq!(
            f.submit(flush_of("a", 1)).map(|g| g.len()),
            Some(1),
            "degenerate policy degrades to point flushing, never to stalling"
        );
    }
}

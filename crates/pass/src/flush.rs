//! The unit of persistence: one object version plus its provenance.
//!
//! PASS ships an object to the storage backend when the application
//! closes it (§4.1 of the paper: "When the application issues a close on
//! a file, we send both the file and its provenance"). A [`FileFlush`]
//! is exactly that bundle — for files it carries data and records, for
//! transient processes records only.

use serde::{Deserialize, Serialize};
use simworld::Blob;

use crate::model::{ObjectKind, ObjectRef};
use crate::records::{ProvenanceRecord, RecordKey, RecordValue};

/// One object version ready to be persisted, with its provenance.
///
/// # Examples
///
/// ```
/// use pass::FileFlush;
/// use simworld::Blob;
///
/// let flush = FileFlush::builder("results/out.csv")
///     .version(2)
///     .data(Blob::from("a,b\n"))
///     .record("input", "blast:1")
///     .record("type", "file")
///     .build();
/// assert_eq!(flush.object.render(), "results/out.csv:2");
/// assert_eq!(flush.ancestors().len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FileFlush {
    /// Which object version this is.
    pub object: ObjectRef,
    /// Persistent or transient.
    pub kind: ObjectKind,
    /// File content (empty for processes).
    pub data: Blob,
    /// The version's provenance records.
    pub records: Vec<ProvenanceRecord>,
}

impl FileFlush {
    /// Starts building a flush for version 1 of `name`.
    pub fn builder(name: impl Into<String>) -> FileFlushBuilder {
        FileFlushBuilder {
            name: name.into(),
            version: 1,
            kind: ObjectKind::File,
            data: Blob::empty(),
            records: Vec::new(),
        }
    }

    /// All ancestor references in this flush's records.
    pub fn ancestors(&self) -> Vec<&ObjectRef> {
        crate::records::references(&self.records)
    }

    /// Total serialised size of the provenance records, in bytes.
    pub fn provenance_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.byte_len() as u64).sum()
    }
}

/// Builder for [`FileFlush`]; see [`FileFlush::builder`].
#[derive(Clone, Debug)]
pub struct FileFlushBuilder {
    name: String,
    version: u32,
    kind: ObjectKind,
    data: Blob,
    records: Vec<ProvenanceRecord>,
}

impl FileFlushBuilder {
    /// Sets the version (default 1).
    pub fn version(mut self, version: u32) -> FileFlushBuilder {
        self.version = version;
        self
    }

    /// Marks the object transient (a process).
    pub fn process(mut self) -> FileFlushBuilder {
        self.kind = ObjectKind::Process;
        self
    }

    /// Sets the file content.
    pub fn data(mut self, data: Blob) -> FileFlushBuilder {
        self.data = data;
        self
    }

    /// Adds a record from its wire pair; `input`/`forkparent` values that
    /// parse as `name:version` become references.
    pub fn record(mut self, key: &str, value: &str) -> FileFlushBuilder {
        self.records.push(ProvenanceRecord::from_pair(key, value));
        self
    }

    /// Adds an already-built record.
    pub fn push(mut self, record: ProvenanceRecord) -> FileFlushBuilder {
        self.records.push(record);
        self
    }

    /// Finishes the flush. A `type` record is added automatically if none
    /// was provided, as PASS always knows the object type.
    pub fn build(mut self) -> FileFlush {
        if !self.records.iter().any(|r| r.key == RecordKey::Type) {
            self.records.push(ProvenanceRecord::new(
                RecordKey::Type,
                RecordValue::Text(self.kind.type_value().to_string()),
            ));
        }
        FileFlush {
            object: ObjectRef::new(self.name, self.version),
            kind: self.kind,
            data: self.data,
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let f = FileFlush::builder("x").build();
        assert_eq!(f.object, ObjectRef::new("x", 1));
        assert_eq!(f.kind, ObjectKind::File);
        assert!(f.data.is_empty());
        // auto type record
        assert_eq!(f.records.len(), 1);
        assert_eq!(f.records[0].to_pair(), ("type".into(), "file".into()));
    }

    #[test]
    fn builder_process_kind() {
        let f = FileFlush::builder("proc:1:make").process().build();
        assert_eq!(f.kind, ObjectKind::Process);
        assert_eq!(f.records[0].to_pair().1, "process");
    }

    #[test]
    fn explicit_type_record_not_duplicated() {
        let f = FileFlush::builder("x").record("type", "file").build();
        assert_eq!(
            f.records
                .iter()
                .filter(|r| r.key == RecordKey::Type)
                .count(),
            1
        );
    }

    #[test]
    fn ancestors_come_from_reference_records() {
        let f = FileFlush::builder("out")
            .record("input", "in:1")
            .record("forkparent", "proc:1:sh:1")
            .record("name", "out")
            .build();
        let names: Vec<String> = f.ancestors().iter().map(|r| r.render()).collect();
        assert_eq!(names, vec!["in:1", "proc:1:sh:1"]);
    }

    #[test]
    fn provenance_bytes_sums_records() {
        let f = FileFlush::builder("x").record("name", "x").build();
        // (name, x) = 5 bytes; auto (type, file) = 8 bytes.
        assert_eq!(f.provenance_bytes(), 5 + 8);
    }
}

//! # pass — a Provenance-Aware Storage System front end
//!
//! This crate reproduces the PASS layer the paper *Making a Cloud
//! Provenance-Aware* (TaPP '09) builds on (described in its §2.4, and in
//! full in *Provenance-Aware Storage Systems*, USENIX ATC '06):
//!
//! * a **provenance model** — versioned objects ([`ObjectRef`]) described
//!   by key/value records ([`ProvenanceRecord`]): `(input, bar:2)`,
//!   `(type, file)`, `(argv, ...)` — for persistent files *and* transient
//!   processes;
//! * an **observer** ([`Observer`]) that watches a stream of process/file
//!   events (the stand-in for syscall interception) and produces
//!   causally-ordered [`FileFlush`]es with PASS's freeze-then-version
//!   cycle avoidance;
//! * the **local cache directory** ([`CacheDir`]) the cloud protocols
//!   read from.
//!
//! The `provenance-cloud` crate consumes [`FileFlush`]es and persists
//! them with one of the paper's three architectures.
//!
//! # Examples
//!
//! ```
//! use pass::{Observer, TraceEvent};
//! use simworld::Blob;
//!
//! // gcc reads main.c and writes main.o: the .o depends on the process,
//! // the process depends on the .c.
//! let mut obs = Observer::new();
//! let mut flushes = Vec::new();
//! for ev in [
//!     TraceEvent::source("main.c", Blob::from("int main(){}")),
//!     TraceEvent::exec(100, "cc", "cc -c main.c", "PATH=/usr/bin", None),
//!     TraceEvent::read(100, "main.c"),
//!     TraceEvent::write(100, "main.o"),
//!     TraceEvent::close(100, "main.o", Blob::synthetic(1, 900)),
//!     TraceEvent::exit(100),
//! ] {
//!     flushes.extend(obs.observe(ev)?);
//! }
//! let object_names: Vec<_> = flushes.iter().map(|f| f.object.render()).collect();
//! assert_eq!(object_names, vec!["main.c:1", "proc:100:cc:1", "main.o:1"]);
//! # Ok::<(), pass::ObserverError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cache;
mod daemon;
mod flush;
mod group;
mod model;
mod observer;
mod records;

pub use cache::{CacheDir, CacheEntry};
pub use daemon::FlushDaemon;
pub use flush::{FileFlush, FileFlushBuilder};
pub use group::{FlushPolicy, GroupCommitFlusher};
pub use model::{process_name, ObjectKind, ObjectRef};
pub use observer::{Observer, ObserverError, Result, TraceEvent};
pub use records::{references, ProvenanceRecord, RecordKey, RecordValue};

#[cfg(test)]
mod tests;

//! # prov-bench — the harness that regenerates every table of the paper
//!
//! *Making a Cloud Provenance-Aware* evaluates its three architectures
//! with three artifacts, each reproduced by a binary in this crate:
//!
//! | Paper artifact | Binary | Function |
//! |---|---|---|
//! | Table 1 — properties matrix | `table1` | [`table1`] |
//! | Table 2 — storage cost | `table2` | [`table2`] |
//! | Table 3 — query cost | `table3` | [`table3`] |
//! | §5 USD discussion | `costs` | [`costs`] |
//! | design ablations (DESIGN.md) | `ablations` | [`ablations`] |
//!
//! Each function returns a typed result plus a rendered table that
//! prints the measured values next to the paper's reported numbers.
//! Absolute values differ (the paper ran a 2009 PASS kernel against the
//! real AWS); the *shape* — who wins, by what factor, where the
//! crossovers are — is the reproduction target, and the root-level
//! integration tests assert it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod batchbench;
pub mod fleetbench;
pub mod harness;
pub mod loadgen;
pub mod pipebench;
pub mod querybench;
pub mod shardbench;
pub mod tables;

pub use ablations::{ablations, AblationResults};
pub use harness::{parse_scale, persist_dataset, persist_dataset_sharded, PersistedStore, Scale};
pub use loadgen::{
    loadgen_sweep, render_loadgen, run_loadgen, LoadArch, LoadgenParams, LoadgenRow,
};
pub use tables::{costs, table1, table2, table3, CostResults, Table2, Table3};

//! Regeneration of the paper's Tables 1–3 and the §5 USD analysis.

use costmodel::{cost_of, PriceBook};
use provenance_cloud::{ArchKind, PropertyMatrix, ProvQuery, Result};
use serde::{Deserialize, Serialize};
use simworld::MeterSnapshot;
use workloads::Combined;

use crate::harness::{bytes, count, percent, persist_dataset, persist_raw_baseline, ratio};

/// The program Q2/Q3 target — "outputs of blast" in the paper.
pub const QUERY_PROGRAM: &str = "blastall";

// ---------------------------------------------------------------- Table 1

/// Runs the measured property matrix and renders it next to the paper's
/// check marks.
///
/// # Errors
///
/// Service errors from the validators.
pub fn table1(seed: u64) -> Result<(Vec<PropertyMatrix>, String)> {
    let matrix = provenance_cloud::full_property_table(seed)?;
    let mark = |b: bool| if b { "yes" } else { " no" };
    let mut out = String::new();
    out.push_str("Table 1: Properties comparison (measured by fault injection)\n");
    out.push_str("                       Read Correctness        Causal    Efficient\n");
    out.push_str("Architecture           Atomicity  Consistency  Ordering  Query      (paper)\n");
    let paper = ["yes yes yes  no", " no yes yes yes", "yes yes yes yes"];
    for (row, expect) in matrix.iter().zip(paper) {
        out.push_str(&format!(
            "{:<22} {:>9}  {:>11}  {:>8}  {:>5}      [{expect}]\n",
            row.architecture,
            mark(row.atomicity),
            mark(row.consistency),
            mark(row.causal_ordering),
            mark(row.efficient_query),
        ));
    }
    Ok((matrix, out))
}

// ---------------------------------------------------------------- Table 2

/// One architecture's storage-cost measurements.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageRow {
    /// Architecture label.
    pub architecture: String,
    /// Bytes attributable to provenance (transfer accounting, matching
    /// the paper's `2·S_SQS + S_SimpleDB` style formulas).
    pub provenance_bytes: u64,
    /// Operations attributable to provenance (total minus the raw data
    /// PUTs).
    pub provenance_ops: u64,
}

/// The measured Table 2.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// Raw dataset bytes (the paper's 1.27 GB).
    pub raw_bytes: u64,
    /// Raw data PUTs (the paper's 31,180).
    pub raw_ops: u64,
    /// Per-architecture overheads, in paper order.
    pub rows: Vec<StorageRow>,
}

impl Table2 {
    /// Renders the table with the paper's reference values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 2: Storage cost comparison\n");
        out.push_str(&format!(
            "{:<8} {:>14} {:>22} {:>22} {:>22}\n",
            "", "Raw", "S3", "S3+SimpleDB", "S3+SimpleDB+SQS"
        ));
        out.push_str(&format!("{:<8} {:>14}", "Data", bytes(self.raw_bytes)));
        for row in &self.rows {
            out.push_str(&format!(
                " {:>13} ({:>6})",
                bytes(row.provenance_bytes),
                percent(row.provenance_bytes, self.raw_bytes)
            ));
        }
        out.push('\n');
        out.push_str(&format!("{:<8} {:>14}", "ops", count(self.raw_ops)));
        for row in &self.rows {
            out.push_str(&format!(
                " {:>13} ({:>6})",
                count(row.provenance_ops),
                ratio(row.provenance_ops, self.raw_ops)
            ));
        }
        out.push('\n');
        out.push_str(
            "paper:   1.27GB raw/31,180 ops; prov 121.8MB (9.3%) / 24,952 (0.8x);\n         \
             167.8MB (13.6%) / 168,514 (5.4x); 421.4MB (32.2%) / 231,287 (7.41x)\n",
        );
        out
    }
}

/// Measures Table 2 on `dataset`.
///
/// # Errors
///
/// Service errors.
pub fn table2(dataset: &Combined) -> Result<Table2> {
    let (raw_meters, stats) = persist_raw_baseline(dataset)?;
    let raw_bytes = stats.raw_data_bytes;
    let raw_ops = raw_meters.total_ops();
    let mut rows = Vec::new();
    for kind in ArchKind::ALL {
        let persisted = persist_dataset(kind, dataset)?;
        let m = &persisted.persist_meters;
        let transferred = m.bytes_in() + m.bytes_out();
        rows.push(StorageRow {
            architecture: kind.label().to_string(),
            provenance_bytes: transferred.saturating_sub(raw_bytes),
            provenance_ops: m.total_ops().saturating_sub(raw_ops),
        });
    }
    Ok(Table2 {
        raw_bytes,
        raw_ops,
        rows,
    })
}

// ---------------------------------------------------------------- Table 3

/// Measurements for one query on one engine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCell {
    /// Bytes returned out of the cloud.
    pub data_out: u64,
    /// Operations executed.
    pub ops: u64,
    /// Result-set size (sanity anchor; equal across engines).
    pub results: u64,
}

/// The measured Table 3: rows Q1/Q2/Q3 × columns S3/SimpleDB.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3 {
    /// Q1 on the S3 engine / the SimpleDB engine.
    pub q1: (QueryCell, QueryCell),
    /// Q2 likewise.
    pub q2: (QueryCell, QueryCell),
    /// Q3 likewise.
    pub q3: (QueryCell, QueryCell),
}

impl Table3 {
    /// Renders the table with the paper's reference values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 3: Query comparison (S3 engine vs SimpleDB engine)\n");
        out.push_str(&format!(
            "{:<6} {:>12} {:>10} {:>6} {:>12} {:>10} {:>6}\n",
            "Query", "S3 data", "S3 ops", "hits", "SDB data", "SDB ops", "hits"
        ));
        for (label, (s3, sdb)) in [("Q.1", &self.q1), ("Q.2", &self.q2), ("Q.3", &self.q3)] {
            out.push_str(&format!(
                "{:<6} {:>12} {:>10} {:>6} {:>12} {:>10} {:>6}\n",
                label,
                bytes(s3.data_out),
                count(s3.ops),
                s3.results,
                bytes(sdb.data_out),
                count(sdb.ops),
                sdb.results,
            ));
        }
        out.push_str(
            "paper: Q.1 121.8MB/56,132 vs 51.24MB/71,825; Q.2 121.8MB/56,132 vs 2.8KB/6;\n       \
             Q.3 121.8MB/56,132 vs 13.8KB/31\n",
        );
        out
    }
}

fn run_query(
    store: &mut dyn provenance_cloud::ProvenanceStore,
    world: &simworld::SimWorld,
    query: &ProvQuery,
) -> Result<QueryCell> {
    let before = world.meters();
    let answer = store.query(query)?;
    let delta = world.meters() - before;
    Ok(QueryCell {
        data_out: delta.bytes_out(),
        ops: delta.total_ops(),
        results: answer.len() as u64,
    })
}

/// Measures Table 3 on `dataset`: the same three queries against the
/// S3-only store and the SimpleDB-backed store (Architectures 2 and 3
/// share the SimpleDB numbers, as the paper notes).
///
/// # Errors
///
/// Service errors.
pub fn table3(dataset: &Combined) -> Result<Table3> {
    let mut s3_store = persist_dataset(ArchKind::S3, dataset)?;
    let mut sdb_store = persist_dataset(ArchKind::S3SimpleDb, dataset)?;

    let queries = [
        ProvQuery::ProvenanceOfAll,
        ProvQuery::OutputsOf {
            program: QUERY_PROGRAM.to_string(),
        },
        ProvQuery::DescendantsOf {
            program: QUERY_PROGRAM.to_string(),
        },
    ];
    let mut cells = Vec::new();
    for query in &queries {
        let s3 = run_query(s3_store.store.as_mut(), &s3_store.world, query)?;
        let sdb = run_query(sdb_store.store.as_mut(), &sdb_store.world, query)?;
        cells.push((s3, sdb));
    }
    let mut it = cells.into_iter();
    Ok(Table3 {
        q1: it.next().expect("three queries"),
        q2: it.next().expect("three queries"),
        q3: it.next().expect("three queries"),
    })
}

// ------------------------------------------------------------------ Costs

/// USD bill for one architecture's persist phase plus one month of
/// storage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostResults {
    /// `(architecture, storage USD, operations USD, transfer USD, total)`
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

impl CostResults {
    /// Renders the USD table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("USD cost of storing the dataset (one month, Jan 2009 prices)\n");
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>10} {:>10}\n",
            "Architecture", "storage", "operations", "transfer", "total"
        ));
        for (label, storage, ops, transfer, total) in &self.rows {
            out.push_str(&format!(
                "{label:<18} {storage:>10.4} {ops:>12.4} {transfer:>10.4} {total:>10.4}\n"
            ));
        }
        out.push_str(
            "paper (qualitative): operations are much cheaper than storage; see\n\
             EXPERIMENTS.md for how that claim fares at each dataset scale\n",
        );
        out
    }

    /// The share of the total bill going to operation charges, for one
    /// row. The paper's §5 observation ("operations are much cheaper
    /// than storage") is about the *marginal* price of an op versus a
    /// stored gigabyte; whether op charges or storage rent dominate a
    /// given bill depends on dataset size, so we report the share and
    /// let EXPERIMENTS.md discuss it.
    pub fn operations_share(&self, row: usize) -> f64 {
        let (_, _, ops, _, total) = self.rows[row];
        if total == 0.0 {
            0.0
        } else {
            ops / total
        }
    }
}

fn bill(meters: &MeterSnapshot) -> (f64, f64, f64, f64) {
    let report = cost_of(meters, 1.0, &PriceBook::january_2009());
    let storage = report.storage_total();
    let ops = report.operations_total();
    let transfer = report.total() - storage - ops;
    (storage, ops, transfer, report.total())
}

/// Prices the persist phase of every architecture.
///
/// # Errors
///
/// Service errors.
pub fn costs(dataset: &Combined) -> Result<CostResults> {
    let mut rows = Vec::new();
    let (raw_meters, _) = persist_raw_baseline(dataset)?;
    let (s, o, t, total) = bill(&raw_meters);
    rows.push(("Raw (no provenance)".to_string(), s, o, t, total));
    for kind in ArchKind::ALL {
        let persisted = persist_dataset(kind, dataset)?;
        // Bill the persist-phase snapshot: its stored-bytes gauge is the
        // end-state footprint, its counters cover the whole phase.
        let (s, o, t, total) = bill(&persisted.persist_meters);
        rows.push((kind.label().to_string(), s, o, t, total));
    }
    Ok(CostResults { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Combined {
        Combined::small()
    }

    #[test]
    fn table2_shape_matches_paper() {
        let t = table2(&small()).unwrap();
        assert_eq!(t.rows.len(), 3);
        // Provenance footprint rises monotonically S3 → +SimpleDB → +SQS.
        assert!(t.rows[0].provenance_bytes < t.rows[1].provenance_bytes);
        assert!(t.rows[1].provenance_bytes < t.rows[2].provenance_bytes);
        // Ops overhead rises in the same order, with S3 below raw.
        assert!(t.rows[0].provenance_ops < t.raw_ops);
        assert!(t.rows[0].provenance_ops < t.rows[1].provenance_ops);
        assert!(t.rows[1].provenance_ops < t.rows[2].provenance_ops);
        // And the rendering carries both measured and reference numbers.
        let rendered = t.render();
        assert!(rendered.contains("Raw"));
        assert!(rendered.contains("paper:"));
    }

    #[test]
    fn table3_shape_matches_paper() {
        let t = table3(&small()).unwrap();
        // Result counts agree between engines on every query.
        assert_eq!(t.q1.0.results, t.q1.1.results);
        assert_eq!(t.q2.0.results, t.q2.1.results);
        assert_eq!(t.q3.0.results, t.q3.1.results);
        assert!(t.q2.0.results > 0, "blast outputs exist in the dataset");
        // S3 pays the same full scan for every query.
        assert_eq!(t.q2.0.ops, t.q3.0.ops);
        // SimpleDB is orders of magnitude more selective on Q2/Q3.
        assert!(t.q2.1.ops * 10 < t.q2.0.ops);
        // Q3 walks one QueryWithAttributes per descendant, so its margin
        // at unit-test scale is smaller; it widens with corpus size
        // (paper: 56,132 vs 31).
        assert!(t.q3.1.ops * 3 < t.q3.0.ops);
        assert!(t.q2.1.data_out * 10 < t.q2.0.data_out);
        // Q1-on-everything gives SimpleDB no advantage: it must touch
        // every item one GetAttributes at a time ("no way for SimpleDB
        // to generalize the query"), landing within 2x of the S3 scan
        // either way (the paper measured 71,825 vs 56,132 — also ~1x).
        assert!(t.q1.1.ops * 2 > t.q1.0.ops);
        assert!(t.q1.1.ops < t.q1.0.ops * 2);
    }

    #[test]
    fn costs_produce_one_bill_per_architecture_plus_raw() {
        let c = costs(&small()).unwrap();
        assert_eq!(c.rows.len(), 4);
        for (label, storage, ops, transfer, total) in &c.rows {
            assert!(*total > 0.0, "{label}: empty bill");
            assert!((storage + ops + transfer - total).abs() < 1e-9);
        }
        // More machinery, higher op charges: raw < S3 < +SimpleDB < +SQS.
        let op_cost = |i: usize| c.rows[i].2;
        assert!(op_cost(0) <= op_cost(1));
        assert!(op_cost(1) < op_cost(2));
        assert!(op_cost(2) < op_cost(3));
        assert!(c.render().contains("total"));
        assert!(c.operations_share(0) <= 1.0);
    }
}

//! Runs the five design ablations documented in DESIGN.md.
//!
//! Usage: `cargo run --release -p prov-bench --bin ablations [--seed=N]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .find_map(|a| a.strip_prefix("--seed=").and_then(|v| v.parse().ok()))
        .unwrap_or(2009);
    match prov_bench::ablations(seed) {
        Ok(results) => print!("{}", results.render()),
        Err(e) => {
            eprintln!("ablations failed: {e}");
            std::process::exit(1);
        }
    }
}

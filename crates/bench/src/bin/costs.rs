//! Prices the persist phase of every architecture in January-2009 USD
//! (the §5 discussion: "operations are much cheaper than storage").
//!
//! Usage: `cargo run --release -p prov-bench --bin costs [--scale=small|medium|paper]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = prov_bench::parse_scale(&args);
    let dataset = scale.dataset();
    match prov_bench::costs(&dataset) {
        Ok(costs) => print!("{}", costs.render()),
        Err(e) => {
            eprintln!("costs failed: {e}");
            std::process::exit(1);
        }
    }
}

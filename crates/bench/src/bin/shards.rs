//! Shard-scaling bench: multi-thread `Query`/`Select` throughput as the
//! SimpleDB shard count grows.
//!
//! Usage: `cargo run --release -p prov-bench --bin shards
//!         [--smoke] [--threads=N] [--queries=N]
//!         [--scale=small|medium|paper]`
//!
//! `--smoke` runs a seconds-scale sweep for CI: it checks that the
//! sweep completes and that result counts agree across shard counts
//! (shard layout must never change query semantics). The full run's
//! numbers are committed to `BASELINE.md`.

use prov_bench::shardbench::{
    render, render_virtual, shard_scaling, virtual_scaling, DEFAULT_SHARD_COUNTS,
};
use workloads::Combined;

fn parse_flag(args: &[String], prefix: &str, default: usize) -> usize {
    args.iter()
        .find_map(|a| a.strip_prefix(prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (shard_counts, threads, queries): (&[usize], usize, usize) = if smoke {
        (&[1, 4, 16], 2, parse_flag(&args, "--queries=", 6))
    } else {
        (
            DEFAULT_SHARD_COUNTS,
            parse_flag(&args, "--threads=", 4),
            parse_flag(&args, "--queries=", 60),
        )
    };
    let dataset = if smoke {
        Combined::small()
    } else if args.iter().any(|a| a.starts_with("--scale=")) {
        prov_bench::parse_scale(&args).dataset()
    } else {
        Combined::medium()
    };

    let vrows = match virtual_scaling(&dataset, shard_counts, queries) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("shard bench (virtual) failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_virtual(&vrows));
    println!();

    match shard_scaling(&dataset, shard_counts, threads, queries) {
        Ok(rows) => {
            print!("{}", render(&rows, threads));
            println!(
                "(wall-clock scaling needs real cores; virtual time is the deterministic view)"
            );
            if smoke {
                let wall_ok = rows.windows(2).all(|w| w[0].hits == w[1].hits)
                    && rows.iter().all(|r| r.hits > 0);
                let virt_ok = vrows
                    .windows(2)
                    .all(|w| w[1].avg_query_ms < w[0].avg_query_ms);
                if !wall_ok {
                    eprintln!("smoke check failed: hit counts diverged across shard counts");
                    std::process::exit(1);
                }
                if !virt_ok {
                    eprintln!("smoke check failed: virtual latency did not fall with shards");
                    std::process::exit(1);
                }
                println!("smoke ok: hits agree; virtual query latency falls as shards grow");
            }
        }
        Err(e) => {
            eprintln!("shard bench failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Shard-scaling bench: throughput and deterministic virtual-time
//! latency as the shard/queue count grows, for each sharded backend.
//!
//! Usage: `cargo run --release -p prov-bench --bin shards
//!         [--mode=simpledb|s3|sqs|batch|pipeline|split|fleet|query|all] [--smoke]
//!         [--threads=N] [--queries=N]
//!         [--scale=small|medium|paper]`
//!
//! `--smoke` runs a seconds-scale sweep for CI: it checks that the
//! sweep completes, that result counts agree across shard/queue layouts
//! (layout must never change semantics), and that the virtual-time
//! latency of the sharded class falls as the layout spreads. The full
//! run's numbers are committed to `BASELINE.md`.
//!
//! `--mode=batch` sweeps the group-commit flusher's batch size over the
//! arch2/arch3 persist paths; its smoke asserts the batched path issues
//! strictly fewer billable requests than the point-op path, shrinks the
//! provenance flush path ≥ 5x at full fill, and leaves the provenance
//! graph bit-identical.
//!
//! `--mode=query` sweeps Q3 over walk vs materialized-closure-index
//! engines at 50–2000 churn chains. Its smoke asserts the index answers
//! item-for-item what the walk answers, that maintenance leaves the
//! data + provenance stores byte-identical, that index maintenance is
//! billed, and the acceptance curve: index ≥5x faster than the walk at
//! 200 chains and ≤2x from 50 to 500 chains (the walk grows with the
//! domain).
//!
//! `--mode=fleet` runs the open-loop multi-tenant fleet: uniform vs
//! zipf(0.99) tenant skew, provider throttling off vs on, plus a
//! rejection-triggered hot-shard-splitting rescue of the hottest
//! scenario, reporting per-service latency percentiles (client-observed:
//! retry backoff included) plus 503/retry/split counts and the
//! operations bill. Its smoke asserts ordered percentiles, nonzero 503s
//! under throttling with a byte-identical final store, a fatter tail for
//! the skewed fleet, and that splitting sheds 503s and the p99 without
//! moving the fingerprint.
//!
//! `--mode=split` runs static vs hot-shard-splitting legs of a
//! zipf(0.99) point-write stream over a 5k-key and a 100k-key corpus.
//! Its smoke asserts the split policy fires, the windowed max/mean
//! imbalance collapses to ≤ 1.3x at 100k keys (the 5k corpus is
//! floor-limited by its unsplittable hottest key), and the converged
//! domain state fingerprints byte-identically with splitting on or off.
//!
//! `--mode=pipeline` sweeps the in-flight depth of the pipelined
//! persist path (sync = synchronous batch baseline; on arch3 the depth
//! also pipelines the commit daemon; the final row is the adaptive AIMD
//! controller). Its smoke asserts graph-identical results, strictly
//! lower virtual completion time as the fixed depth rises, and an
//! adaptive row within 10% of the best fixed depth.

use prov_bench::batchbench::{batch_sweep, render_batch, DEFAULT_GROUP_SIZES};
use prov_bench::fleetbench::{fleet_sweep, render_fleet, FleetParams};
use prov_bench::pipebench::{
    pipeline_sweep, render_pipeline, DEFAULT_PIPELINE_GROUP, DEFAULT_SPECS,
};
use prov_bench::querybench::{query_sweep, render_query, DEFAULT_QUERY_CHAINS};
use prov_bench::shardbench::{
    render, render_s3_virtual, render_s3_wall, render_skew, render_split, render_sqs_virtual,
    render_sqs_wall, render_virtual, s3_scaling, s3_virtual_scaling, shard_scaling, skew_sweep,
    split_sweep, sqs_scaling, sqs_virtual_scaling, virtual_scaling, DEFAULT_QUEUE_COUNTS,
    DEFAULT_S3_OBJECTS, DEFAULT_SHARD_COUNTS, DEFAULT_SQS_MESSAGES,
};
use provenance_cloud::ArchKind;
use workloads::Combined;

fn parse_flag(args: &[String], prefix: &str, default: usize) -> usize {
    args.iter()
        .find_map(|a| a.strip_prefix(prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

fn parse_mode(args: &[String]) -> String {
    args.iter()
        .find_map(|a| a.strip_prefix("--mode=").map(str::to_string))
        .unwrap_or_else(|| "simpledb".to_string())
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn run_simpledb(args: &[String], smoke: bool) {
    let (shard_counts, threads, queries): (&[usize], usize, usize) = if smoke {
        (&[1, 4, 16], 2, parse_flag(args, "--queries=", 6))
    } else {
        (
            DEFAULT_SHARD_COUNTS,
            parse_flag(args, "--threads=", 4),
            parse_flag(args, "--queries=", 60),
        )
    };
    let dataset = if smoke {
        Combined::small()
    } else if args.iter().any(|a| a.starts_with("--scale=")) {
        prov_bench::parse_scale(args).dataset()
    } else {
        Combined::medium()
    };

    let vrows = match virtual_scaling(&dataset, shard_counts, queries) {
        Ok(rows) => rows,
        Err(e) => fail(&format!("shard bench (virtual) failed: {e}")),
    };
    print!("{}", render_virtual(&vrows));
    println!();

    match shard_scaling(&dataset, shard_counts, threads, queries) {
        Ok(rows) => {
            print!("{}", render(&rows, threads));
            println!(
                "(wall-clock scaling needs real cores; virtual time is the deterministic view)"
            );
            if smoke {
                let wall_ok = rows.windows(2).all(|w| w[0].hits == w[1].hits)
                    && rows.iter().all(|r| r.hits > 0);
                let virt_ok = vrows
                    .windows(2)
                    .all(|w| w[1].avg_query_ms < w[0].avg_query_ms);
                if !wall_ok {
                    fail("smoke check failed: hit counts diverged across shard counts");
                }
                if !virt_ok {
                    fail("smoke check failed: virtual latency did not fall with shards");
                }
                println!("smoke ok: hits agree; virtual query latency falls as shards grow");
            }
        }
        Err(e) => fail(&format!("shard bench failed: {e}")),
    }

    // The skew picture: how a hot-key stream loads the shards of one
    // domain — the data the ROADMAP's shard-rebalancing item needs.
    let (skew_ops, skew_keys) = if smoke {
        (4_000, 1_000)
    } else {
        (20_000, 5_000)
    };
    match skew_sweep(16, skew_ops, skew_keys, &[0.9, 0.99]) {
        Ok(rows) => {
            println!();
            print!("{}", render_skew(&rows));
            if smoke {
                let uniform = rows[0].imbalance;
                let skewed_worse = rows[1..].iter().all(|r| r.imbalance > uniform);
                if !skewed_worse {
                    fail("smoke check failed: zipfian keys did not imbalance the shards");
                }
                println!("smoke ok: zipfian key streams load the hottest shard hardest");
            }
        }
        Err(e) => fail(&format!("skew sweep failed: {e}")),
    }
}

fn run_s3(args: &[String], smoke: bool) {
    let (shard_counts, objects, threads, ops): (&[usize], usize, usize, usize) = if smoke {
        (&[1, 4, 16], 400, 2, 8)
    } else {
        (
            DEFAULT_SHARD_COUNTS,
            parse_flag(args, "--objects=", DEFAULT_S3_OBJECTS),
            parse_flag(args, "--threads=", 4),
            parse_flag(args, "--queries=", 40),
        )
    };
    let vrows = match s3_virtual_scaling(shard_counts, objects, ops) {
        Ok(rows) => rows,
        Err(e) => fail(&format!("s3 shard bench (virtual) failed: {e}")),
    };
    print!("{}", render_s3_virtual(&vrows));
    println!();
    match s3_scaling(shard_counts, objects, threads, ops) {
        Ok(rows) => {
            print!("{}", render_s3_wall(&rows, threads));
            println!(
                "(wall-clock scaling needs real cores; virtual time is the deterministic view)"
            );
            if smoke {
                let hits_ok = vrows.windows(2).all(|w| w[0].hits == w[1].hits)
                    && rows.windows(2).all(|w| w[0].hits == w[1].hits)
                    && vrows.iter().all(|r| r.hits > 0);
                let virt_ok = vrows.windows(2).all(|w| w[1].list_op_ms < w[0].list_op_ms);
                if !hits_ok {
                    fail("smoke check failed: S3 hit counts diverged across shard counts");
                }
                if !virt_ok {
                    fail("smoke check failed: S3 LIST latency did not fall with shards");
                }
                println!("smoke ok: hits agree; virtual LIST latency falls as shards grow");
            }
        }
        Err(e) => fail(&format!("s3 shard bench failed: {e}")),
    }
}

fn run_sqs(args: &[String], smoke: bool) {
    let (queue_counts, messages, threads): (&[usize], usize, usize) = if smoke {
        (&[1, 2, 4], 480, 2)
    } else {
        (
            DEFAULT_QUEUE_COUNTS,
            parse_flag(args, "--messages=", DEFAULT_SQS_MESSAGES),
            parse_flag(args, "--threads=", 4),
        )
    };
    let vrows = match sqs_virtual_scaling(queue_counts, messages) {
        Ok(rows) => rows,
        Err(e) => fail(&format!("sqs queue bench (virtual) failed: {e}")),
    };
    print!("{}", render_sqs_virtual(&vrows));
    println!();
    match sqs_scaling(queue_counts, messages, threads) {
        Ok(rows) => {
            print!("{}", render_sqs_wall(&rows, threads));
            println!(
                "(wall-clock scaling needs real cores; virtual time is the deterministic view)"
            );
            if smoke {
                let lossless = vrows.iter().all(|r| r.received == r.messages)
                    && rows.iter().all(|r| r.received == r.messages);
                let virt_ok = vrows
                    .windows(2)
                    .all(|w| w[1].avg_receive_ms < w[0].avg_receive_ms);
                if !lossless {
                    fail("smoke check failed: an SQS sweep lost messages");
                }
                if !virt_ok {
                    fail("smoke check failed: SQS receive latency did not fall with queues");
                }
                println!("smoke ok: sweeps lossless; receive latency falls as queues grow");
            }
        }
        Err(e) => fail(&format!("sqs queue bench failed: {e}")),
    }
}

fn run_batch(args: &[String], smoke: bool) {
    let (dataset, group_sizes): (Combined, &[usize]) = if smoke {
        (Combined::small(), &[1, 10, 25])
    } else if args.iter().any(|a| a.starts_with("--scale=")) {
        (prov_bench::parse_scale(args).dataset(), DEFAULT_GROUP_SIZES)
    } else {
        (Combined::medium(), DEFAULT_GROUP_SIZES)
    };
    for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
        let (rows, graphs) = match batch_sweep(kind, &dataset, group_sizes) {
            Ok(r) => r,
            Err(e) => fail(&format!("batch sweep ({}) failed: {e}", kind.label())),
        };
        print!("{}", render_batch(kind, &rows));
        println!();
        if smoke {
            let state_ok = graphs.windows(2).all(|w| w[0].diff(&w[1]).is_empty());
            // Batched rows must beat the *point-op baseline*; between
            // batch sizes the daemon's sampled receives add noise, so
            // no monotonicity is claimed there.
            let fewer = rows[1..].iter().all(|r| r.requests < rows[0].requests)
                && rows[1..]
                    .iter()
                    .all(|r| r.virtual_secs < rows[0].virtual_secs);
            let flush_win = rows
                .last()
                .map(|r| r.flush_requests * 5 <= rows[0].flush_requests)
                .unwrap_or(false);
            if !state_ok {
                fail("smoke check failed: batching changed the provenance graph");
            }
            if !fewer {
                fail("smoke check failed: a batched row did not issue strictly fewer requests (or was not faster)");
            }
            if !flush_win {
                fail("smoke check failed: provenance flush path did not shrink >=5x at full fill");
            }
            println!(
                "smoke ok ({}): graphs identical; requests and virtual time fall with group size; flush path >=5x smaller",
                kind.label()
            );
        }
    }
}

fn run_pipeline(args: &[String], smoke: bool) {
    let dataset: Combined = if smoke {
        Combined::small()
    } else if args.iter().any(|a| a.starts_with("--scale=")) {
        prov_bench::parse_scale(args).dataset()
    } else {
        Combined::medium()
    };
    for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
        let (rows, graphs) =
            match pipeline_sweep(kind, &dataset, DEFAULT_PIPELINE_GROUP, DEFAULT_SPECS) {
                Ok(r) => r,
                Err(e) => fail(&format!("pipeline sweep ({}) failed: {e}", kind.label())),
            };
        print!("{}", render_pipeline(kind, &rows));
        println!();
        if smoke {
            let state_ok = graphs.windows(2).all(|w| w[0].diff(&w[1]).is_empty());
            // Daemon-less architectures issue exactly the same bill at
            // every depth; arch3's pipelined commit daemon re-cuts its
            // receive rounds, so only the state is invariant there.
            let requests_ok = kind == ArchKind::S3SimpleDbSqs
                || rows.windows(2).all(|w| w[0].requests == w[1].requests);
            // Every pipelined row beats the synchronous baseline, and
            // deeper pipelines keep winning: the fixed-depth prefix of
            // the sweep must be strictly decreasing in virtual time.
            let fixed_prefix = &rows[..rows.len() - 1];
            let faster = fixed_prefix
                .windows(2)
                .all(|w| w[1].virtual_secs < w[0].virtual_secs);
            // The adaptive row must land within 10% of the best fixed
            // depth — nobody hand-tuned its window.
            let best_fixed = fixed_prefix
                .iter()
                .map(|r| r.virtual_secs)
                .fold(f64::INFINITY, f64::min);
            let adaptive = rows.last().expect("sweep has rows");
            let adaptive_ok = adaptive.virtual_secs <= best_fixed * 1.10;
            if !state_ok {
                fail("smoke check failed: pipelining changed the provenance graph");
            }
            if !requests_ok {
                fail("smoke check failed: pipelining changed the billable request count");
            }
            if !faster {
                fail("smoke check failed: virtual completion time did not fall with depth");
            }
            if !adaptive_ok {
                fail(&format!(
                    "smoke check failed: adaptive depth ({:.2}s) not within 10% of best fixed depth ({best_fixed:.2}s)",
                    adaptive.virtual_secs
                ));
            }
            println!(
                "smoke ok ({}): graphs identical; completion time strictly falls as in-flight depth rises; adaptive within 10% of best fixed depth",
                kind.label()
            );
        }
    }
}

fn run_split_mode(_args: &[String], smoke: bool) {
    // Both corpora matter: 5k keys shows the single-hot-key floor (the
    // top key alone carries ~10.7% of ops — an item can't be split, so
    // ~1.7x vs a 16-shard fair share is irreducible); 100k keys is where
    // the ISSUE's ≤1.3x target is honestly reachable.
    let rows = match split_sweep(16, &[5_000, 100_000]) {
        Ok(rows) => rows,
        Err(e) => fail(&format!("split sweep failed: {e}")),
    };
    print!("{}", render_split(&rows));
    if smoke {
        // Rows come in (static, split) pairs per corpus.
        for pair in rows.chunks(2) {
            let (stat, split) = (&pair[0], &pair[1]);
            if stat.shards_final != stat.shards_start || stat.splits != 0 {
                fail("smoke check failed: the static leg grew shards");
            }
            if split.splits == 0 || split.shards_final <= split.shards_start {
                fail("smoke check failed: the split policy never fired");
            }
            if split.imbalance >= stat.imbalance {
                fail(&format!(
                    "smoke check failed: splitting did not reduce imbalance at {} keys ({:.2}x vs {:.2}x)",
                    split.keys, split.imbalance, stat.imbalance
                ));
            }
            if split.fingerprint != stat.fingerprint {
                fail(&format!(
                    "smoke check failed: splitting changed the converged state at {} keys",
                    split.keys
                ));
            }
        }
        // The acceptance numbers: the 100k-key corpus collapses from the
        // >2x static imbalance to <=1.3x once hot shards split; the 5k
        // corpus lands near its single-key floor.
        let row = |keys: usize, label: &str| {
            rows.iter()
                .find(|r| r.keys == keys && r.label == label)
                .expect("sweep covers both corpora")
        };
        if row(100_000, "static").imbalance < 1.9 {
            fail("smoke check failed: static 100k-key imbalance unexpectedly below 1.9x");
        }
        if row(100_000, "split").imbalance > 1.3 {
            fail(&format!(
                "smoke check failed: split 100k-key imbalance {:.2}x above the 1.3x target",
                row(100_000, "split").imbalance
            ));
        }
        if row(5_000, "split").imbalance > 1.8 {
            fail(&format!(
                "smoke check failed: split 5k-key imbalance {:.2}x above the ~1.7x single-key floor",
                row(5_000, "split").imbalance
            ));
        }
        println!(
            "smoke ok: splits fire, state fingerprints match static, 100k-key imbalance collapses to <=1.3x"
        );
    }
}

fn run_query_mode(_args: &[String], smoke: bool) {
    let (rows, states) = match query_sweep(DEFAULT_QUERY_CHAINS) {
        Ok(r) => r,
        Err(e) => fail(&format!("query sweep failed: {e}")),
    };
    print!("{}", render_query(&rows));
    if smoke {
        // (a) The index engine answers item-for-item what the walk
        // answers, and maintaining it leaves the data + provenance
        // stores byte-identical, at every corpus size.
        for (pair, rpair) in states.chunks(2).zip(rows.chunks(2)) {
            let (walk, index) = (&pair[0], &pair[1]);
            if walk.q3_names != index.q3_names || walk.bulk_names != index.bulk_names {
                fail(&format!(
                    "smoke check failed: index answers diverge from the walk at {} chains",
                    rpair[0].chains
                ));
            }
            if walk.prov_fingerprint != index.prov_fingerprint || walk.data != index.data {
                fail(&format!(
                    "smoke check failed: closure maintenance changed the store at {} chains",
                    rpair[0].chains
                ));
            }
            if rpair[1].persist_ops <= rpair[0].persist_ops {
                fail("smoke check failed: index maintenance was not billed");
            }
        }
        let leg = |chains: u32, engine: &str| {
            rows.iter()
                .find(|r| r.chains == chains && r.engine == engine)
                .expect("sweep covers the size")
        };
        // (b) The shape: the index's fixed-answer Q3 touches the same
        // rows no matter how large the corpus grows (O(answer), not
        // O(graph)); the walk's scans keep growing with the domain.
        // The >=5x / <=2x wall-clock acceptance curve lives in the
        // criterion table (BASELINE.md) — here the op counts pin the
        // asymptotics deterministically.
        let (index50, index2000) = (leg(50, "index"), leg(2000, "index"));
        if index2000.q3_ops != index50.q3_ops {
            fail("smoke check failed: index q3 op count moved with the corpus size");
        }
        let (walk50, walk2000) = (leg(50, "walk"), leg(2000, "walk"));
        if walk2000.q3_ms <= walk50.q3_ms {
            fail("smoke check failed: the walk's scan cost did not grow with the corpus");
        }
        if index2000.q3_ms > index50.q3_ms * 2.0 {
            fail(&format!(
                "smoke check failed: index q3 virtual time scaled {:.2}x from 50 to 2000 chains",
                index2000.q3_ms / index50.q3_ms
            ));
        }
        println!(
            "smoke ok: index answers match the walk; stores byte-identical either way; index q3 cost is flat from 50 to 2000 chains while the walk's grows"
        );
    }
}

fn run_fleet_mode(args: &[String], smoke: bool) {
    let (tenant_counts, arrivals, rate): (&[usize], usize, f64) = if smoke {
        (&[8], 4, 50.0)
    } else {
        (&[4, 8, 16], parse_flag(args, "--arrivals=", 8), 50.0)
    };
    let throttle = simworld::ThrottleConfig::per_shard(4.0).with_burst(8.0);
    for &tenants in tenant_counts {
        let base = FleetParams {
            tenants,
            arrivals_per_tenant: arrivals,
            rate_per_sec: rate,
            shards: 16,
            skew: None,
            throttle: None,
            throttle_wal: true,
            split: None,
            seed: 2009,
        };
        // The split comparison throttles only the range-sharded stores
        // (the WAL queue has no shard map to grow), tightly enough that
        // the hot tenant's shards reject, and drives enough sustained
        // arrivals that a split's doubled refill actually matters —
        // a single pending retry per shard gains nothing from one.
        let store_throttle = simworld::ThrottleConfig::per_shard(1.0).with_burst(2.0);
        let heavy_arrivals = arrivals * 8;
        let scenarios = [
            base,
            FleetParams {
                throttle: Some(throttle),
                ..base
            },
            FleetParams {
                skew: Some(0.99),
                ..base
            },
            FleetParams {
                skew: Some(0.99),
                throttle: Some(throttle),
                ..base
            },
            FleetParams {
                arrivals_per_tenant: heavy_arrivals,
                skew: Some(0.99),
                throttle: Some(store_throttle),
                throttle_wal: false,
                ..base
            },
            // The dynamic-sharding rescue: same hot fleet, but every
            // shard the throttle rejects splits, doubling that range's
            // admission capacity until the 503s dry up.
            FleetParams {
                arrivals_per_tenant: heavy_arrivals,
                skew: Some(0.99),
                throttle: Some(store_throttle),
                throttle_wal: false,
                split: Some(simworld::SplitPolicy::by_rejections(1).with_max_shards(64)),
                ..base
            },
        ];
        let (rows, prints) = match fleet_sweep(&scenarios) {
            Ok(r) => r,
            Err(e) => fail(&format!("fleet sweep failed: {e}")),
        };
        print!("{}", render_fleet(&rows));
        if smoke {
            // (a) Percentile tables are self-consistent everywhere.
            for row in &rows {
                for (service, p) in &row.per_service {
                    if !(p.p50 <= p.p99 && p.p99 <= p.p999 && p.p999 <= p.max) {
                        fail(&format!(
                            "smoke check failed: {} {service:?} percentiles out of order: {p:?}",
                            row.label
                        ));
                    }
                }
            }
            // (b) Throttle-on runs reject measurably yet converge to the
            // same store fingerprint as their unthrottled twin.
            for (pair, label) in [((0usize, 1usize), "uniform"), ((2, 3), "zipf")] {
                let (plain, throttled) = pair;
                if rows[throttled].throttled == 0 || rows[throttled].retries == 0 {
                    fail(&format!(
                        "smoke check failed: {label} throttle run saw no 503s/retries"
                    ));
                }
                if rows[plain].throttled != 0 {
                    fail(&format!(
                        "smoke check failed: {label} unthrottled run saw 503s"
                    ));
                }
                if !prints[throttled].matches(&prints[plain]) {
                    fail(&format!(
                        "smoke check failed: throttling changed the {label} fleet's final store"
                    ));
                }
            }
            // (c) The hot tenant's contention shows in the tail: under
            // the same throttle, the skewed fleet's p99 beats uniform's.
            let p99 = |i: usize| rows[i].overall.as_ref().expect("samples recorded").p99;
            if p99(3) <= p99(1) {
                fail(&format!(
                    "smoke check failed: zipf p99 {:?} not above uniform p99 {:?} under throttle",
                    p99(3),
                    p99(1)
                ));
            }
            // (d) Arming rejection-triggered splits on the store-only
            // throttled hot fleet sheds 503s, pulls the tail back down,
            // and still converges to the static run's exact store.
            if rows[4].throttled == 0 {
                fail("smoke check failed: the store-only throttle never rejected");
            }
            if rows[4].splits != 0 {
                fail("smoke check failed: the static fleet grew shards");
            }
            if rows[5].splits == 0 {
                fail("smoke check failed: the hot fleet's rejections never triggered a split");
            }
            if rows[5].throttled >= rows[4].throttled {
                fail(&format!(
                    "smoke check failed: splitting did not shed 503s ({} vs {})",
                    rows[5].throttled, rows[4].throttled
                ));
            }
            if p99(5) >= p99(4) {
                fail(&format!(
                    "smoke check failed: split fleet p99 {:?} not below static p99 {:?}",
                    p99(5),
                    p99(4)
                ));
            }
            if !prints[5].matches(&prints[4]) {
                fail("smoke check failed: splitting changed the hot fleet's final store");
            }
            if rows.iter().any(|r| r.exhausted != 0) {
                fail("smoke check failed: a persist exhausted its retry budget");
            }
            println!(
                "smoke ok: percentiles ordered; throttled runs reject yet converge to the same fingerprint; zipf tail above uniform; splitting sheds 503s and the tail"
            );
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mode = parse_mode(&args);
    match mode.as_str() {
        "simpledb" => run_simpledb(&args, smoke),
        "s3" => run_s3(&args, smoke),
        "sqs" => run_sqs(&args, smoke),
        "batch" => run_batch(&args, smoke),
        "pipeline" => run_pipeline(&args, smoke),
        "split" => run_split_mode(&args, smoke),
        "fleet" => run_fleet_mode(&args, smoke),
        "query" => run_query_mode(&args, smoke),
        "all" => {
            run_simpledb(&args, smoke);
            println!();
            run_s3(&args, smoke);
            println!();
            run_sqs(&args, smoke);
            println!();
            run_batch(&args, smoke);
            println!();
            run_pipeline(&args, smoke);
            println!();
            run_split_mode(&args, smoke);
            println!();
            run_query_mode(&args, smoke);
            println!();
            run_fleet_mode(&args, smoke);
        }
        other => fail(&format!(
            "unknown mode {other:?}; expected simpledb|s3|sqs|batch|pipeline|split|fleet|query|all"
        )),
    }
}

//! Regenerates Table 1 (properties comparison) by fault injection.
//!
//! Usage: `cargo run --release -p prov-bench --bin table1 [--seed=N]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .find_map(|a| a.strip_prefix("--seed=").and_then(|v| v.parse().ok()))
        .unwrap_or(2009);
    match prov_bench::table1(seed) {
        Ok((_, rendered)) => print!("{rendered}"),
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}

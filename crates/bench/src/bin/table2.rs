//! Regenerates Table 2 (storage cost comparison).
//!
//! Usage: `cargo run --release -p prov-bench --bin table2 [--scale=small|medium|paper]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = prov_bench::parse_scale(&args);
    let dataset = scale.dataset();
    match prov_bench::table2(&dataset) {
        Ok(table) => print!("{}", table.render()),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates Table 3 (query comparison: Q1, Q2, Q3).
//!
//! Usage: `cargo run --release -p prov-bench --bin table3 [--scale=small|medium|paper]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = prov_bench::parse_scale(&args);
    let dataset = scale.dataset();
    match prov_bench::table3(&dataset) {
        Ok(table) => print!("{}", table.render()),
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Wall-clock serving baseline: a thread sweep over the network
//! frontend.
//!
//! Default mode sweeps 1/2/4/8 client threads across arch2/arch3 ×
//! point/batched over a Unix-domain socket, printing throughput and
//! open-loop latency percentiles, and verifies that every networked
//! run's store fingerprint equals the same workload applied
//! in-process. On hosts with 4+ cores it additionally requires ≥2x
//! query throughput at 4 threads over 1.
//!
//! `--smoke` is the CI gate: one 4-thread burst (arch2 + arch3, Unix
//! socket), zero tolerated errors, fingerprints byte-identical.
//!
//! Other flags: `--tcp` (loopback TCP instead of a Unix socket),
//! `--threads=1,2,4,8`, `--steps=N`, `--queries=N`, `--rate=F`,
//! `--closure` (serve the ancestry-closure index).

use prov_bench::loadgen::{loadgen_sweep, render_loadgen, LoadArch, LoadgenParams, LoadgenRow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let tcp = args.iter().any(|a| a == "--tcp");
    let closure = args.iter().any(|a| a == "--closure");
    let threads = parse_list(&args, "--threads=").unwrap_or_else(|| vec![1, 2, 4, 8]);
    let steps = parse_num(&args, "--steps=").unwrap_or(if smoke { 6 } else { 16 });
    let queries = parse_num(&args, "--queries=").unwrap_or(if smoke { 16 } else { 24 });
    let rate = parse_f64(&args, "--rate=").unwrap_or(600.0);

    let base = LoadgenParams {
        steps_per_thread: steps,
        queries_per_thread: queries,
        rate_per_sec: rate,
        serve_closure: closure,
        tcp,
        ..LoadgenParams::default()
    };

    let scenarios: Vec<LoadgenParams> = if smoke {
        [LoadArch::Arch2, LoadArch::Arch3]
            .into_iter()
            .map(|arch| LoadgenParams {
                arch,
                threads: 4,
                ..base.clone()
            })
            .collect()
    } else {
        let mut out = Vec::new();
        for arch in [LoadArch::Arch2, LoadArch::Arch3] {
            for batched in [false, true] {
                out.push(LoadgenParams {
                    arch,
                    batched,
                    ..base.clone()
                });
            }
        }
        out
    };

    let mut failed = false;
    for params in &scenarios {
        let counts: Vec<usize> = if smoke {
            vec![params.threads]
        } else {
            threads.clone()
        };
        let rows = match loadgen_sweep(params, &counts) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("loadgen {}: {e}", params.label());
                std::process::exit(1);
            }
        };
        print!("{}", render_loadgen(&rows));
        failed |= !check(&rows, smoke);
    }

    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!("serve smoke OK: networked and in-process stores converge byte-identically");
    }
}

/// Invariant checks over one scenario's rows. Returns `true` on pass.
fn check(rows: &[LoadgenRow], smoke: bool) -> bool {
    let mut ok = true;
    for row in rows {
        if !row.fingerprints_match() {
            eprintln!(
                "FAIL {} × {}: networked fingerprint {:016x} != in-process {:016x}",
                row.label, row.threads, row.fingerprint, row.in_process_fingerprint
            );
            ok = false;
        }
        if row.errors > 0 {
            eprintln!(
                "FAIL {} × {}: {} codec/connection/store errors",
                row.label, row.threads, row.errors
            );
            ok = false;
        }
    }
    if smoke {
        return ok;
    }
    // The wall-clock parallelism claim, on hosts that can show it.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let qps = |n: usize| {
        rows.iter()
            .find(|r| r.threads == n)
            .map(LoadgenRow::queries_per_sec)
    };
    if let (Some(one), Some(four)) = (qps(1), qps(4)) {
        if cores >= 4 {
            if four < 2.0 * one {
                eprintln!(
                    "FAIL {}: query throughput at 4 threads ({four:.0}/s) is under 2x the \
                     1-thread baseline ({one:.0}/s) on a {cores}-core host",
                    rows[0].label
                );
                ok = false;
            }
        } else {
            println!(
                "({}-core host: 4-thread speedup check skipped; 1→4 threads measured \
                 {one:.0} → {four:.0} qps)",
                cores
            );
        }
    }
    ok
}

fn parse_num(args: &[String], prefix: &str) -> Option<usize> {
    args.iter()
        .find_map(|a| a.strip_prefix(prefix))
        .and_then(|v| v.parse().ok())
}

fn parse_f64(args: &[String], prefix: &str) -> Option<f64> {
    args.iter()
        .find_map(|a| a.strip_prefix(prefix))
        .and_then(|v| v.parse().ok())
}

fn parse_list(args: &[String], prefix: &str) -> Option<Vec<usize>> {
    args.iter().find_map(|a| a.strip_prefix(prefix)).map(|v| {
        v.split(',')
            .filter_map(|part| part.trim().parse().ok())
            .collect()
    })
}

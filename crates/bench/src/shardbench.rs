//! Shard-scaling experiments: multi-thread throughput and deterministic
//! virtual-time latency against the shard/queue count, for all three
//! sharded backends.
//!
//! The tentpole claim behind per-shard locking is that it unlocks
//! parallel service paths: with one global lock every call serialises,
//! with N shards (SimpleDB domains, S3 buckets) or per-queue locks (SQS)
//! concurrent calls interleave. This harness measures that three ways —
//! SimpleDB `Query`/`Select` bursts ([`shard_scaling`]), an S3
//! LIST/GET/HEAD mix ([`s3_scaling`], [`s3_virtual_scaling`]) and an SQS
//! multi-queue receive sweep ([`sqs_scaling`], [`sqs_virtual_scaling`]).
//!
//! Everything except the thread scheduling is deterministic (fixed
//! dataset seed, strongly-consistent worlds), so the per-call *result*
//! counts must agree across shard/queue layouts — the smoke tests and
//! the CI steps assert that while the throughput and virtual-latency
//! columns tell the scaling story.

use std::thread;
use std::time::Instant;

use provenance_cloud::{layout, ProvenanceStore, Result, S3SimpleDb};
use sim_s3::{Metadata, S3};
use sim_simpledb::{ReplaceableAttribute, SimpleDb};
use sim_sqs::Sqs;
use simworld::{
    Blob, Consistency, LatencyModel, MeterSnapshot, Service, ShardImbalance, ShardPlan, SimConfig,
    SimDuration, SimWorld, SplitPolicy,
};
use workloads::{Combined, ZipfKeys};

/// The shard counts the scaling sweep visits by default.
pub const DEFAULT_SHARD_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

/// The queue counts the SQS multi-queue sweep visits by default.
pub const DEFAULT_QUEUE_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Objects in the S3 sweep's bucket by default.
pub const DEFAULT_S3_OBJECTS: usize = 2000;

/// Messages spread over the SQS sweep's queues by default.
pub const DEFAULT_SQS_MESSAGES: usize = 2400;

/// Bucket the S3 sweep fills.
const S3_BENCH_BUCKET: &str = "shardbench";

/// A fresh world for virtual-time sweeps: strong consistency so results
/// are layout-invariant, the default latency model so the virtual clock
/// prices every call.
fn virtual_world() -> SimWorld {
    SimWorld::with_config(SimConfig {
        seed: 2009,
        consistency: Consistency::Strong,
        latency: LatencyModel::default(),
        replicas: 1,
    })
}

/// One row of the scaling table.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Queries issued (threads × queries-per-thread).
    pub queries: u64,
    /// Total result rows returned — identical across shard counts for
    /// the same corpus, or the sharding broke query semantics.
    pub hits: u64,
    /// Wall-clock seconds for the whole burst.
    pub wall_secs: f64,
    /// Queries per wall-clock second.
    pub throughput: f64,
}

/// Persists `dataset` into a fresh Architecture-2 store whose SimpleDB
/// runs `shards` hash shards, and hands back the shared SimpleDB handle
/// (settled, so every query sees the full corpus).
///
/// # Errors
///
/// Propagates service errors from the persist phase.
pub fn prepare(shards: usize, dataset: &Combined) -> Result<SimpleDb> {
    let world = SimWorld::counting();
    let mut store = S3SimpleDb::with_shards(&world, shards);
    let (flushes, _) = dataset.flushes();
    for flush in &flushes {
        store.persist(flush)?;
    }
    world.settle();
    Ok(store.simpledb().clone())
}

/// One query of the benchmark mix, selected by `slot`: an indexed
/// `Select` by type, a bracketed `Query` by type, a two-page paginated
/// full scan, or a full-domain `count(*)` — the scan-dominated member
/// of the mix. Returns how many rows came back.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_one(db: &SimpleDb, slot: usize) -> Result<u64> {
    Ok(match slot % 4 {
        0 => {
            let r = db.select(
                "select itemName() from provenance where type = 'file'",
                None,
            )?;
            r.items.len() as u64
        }
        1 => {
            let r = db.query(
                layout::DOMAIN,
                Some("['type' = 'process']"),
                Some(100),
                None,
            )?;
            r.item_names.len() as u64
        }
        2 => {
            let first = db.query(layout::DOMAIN, None, Some(50), None)?;
            let mut n = first.item_names.len() as u64;
            if let Some(token) = first.next_token {
                n += db
                    .query(layout::DOMAIN, None, Some(50), Some(&token))?
                    .item_names
                    .len() as u64;
            }
            n
        }
        _ => {
            let r = db.select("select count(*) from provenance", None)?;
            r.count.unwrap_or(0)
        }
    })
}

/// Fires `threads × queries_per_thread` queries at shared clones of
/// `db` and returns `(total hits, wall seconds)`.
pub fn burst(db: &SimpleDb, threads: usize, queries_per_thread: usize) -> (u64, f64) {
    let start = Instant::now();
    let hits = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = db.clone();
                scope.spawn(move || -> u64 {
                    (0..queries_per_thread)
                        .map(|q| run_one(&db, t + q).expect("bench query failed"))
                        .sum()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .sum()
    });
    (hits, start.elapsed().as_secs_f64())
}

/// Runs the full sweep: for each shard count, persist the corpus and
/// fire the multi-thread query burst.
///
/// # Errors
///
/// Propagates service errors.
pub fn shard_scaling(
    dataset: &Combined,
    shard_counts: &[usize],
    threads: usize,
    queries_per_thread: usize,
) -> Result<Vec<ShardRow>> {
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let db = prepare(shards, dataset)?;
        let (hits, wall_secs) = burst(&db, threads, queries_per_thread);
        let queries = (threads * queries_per_thread) as u64;
        rows.push(ShardRow {
            shards,
            queries,
            hits,
            wall_secs,
            throughput: queries as f64 / wall_secs.max(f64::EPSILON),
        });
    }
    Ok(rows)
}

/// Renders the sweep like the paper renders its tables, with a speedup
/// column against the single-shard row.
pub fn render(rows: &[ShardRow], threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Shard scaling — {threads} threads, query/select mix, fixed corpus\n"
    ));
    out.push_str("shards | queries |    hits | wall (s) | queries/s | speedup\n");
    out.push_str("-------|---------|---------|----------|-----------|--------\n");
    let base = rows.first().map(|r| r.throughput).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>7} | {:>7} | {:>8.3} | {:>9.1} | {:>6.2}x\n",
            r.shards,
            r.queries,
            r.hits,
            r.wall_secs,
            r.throughput,
            r.throughput / base,
        ));
    }
    out
}

/// One row of the virtual-time scaling table.
#[derive(Clone, Debug)]
pub struct VirtualRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Queries issued.
    pub queries: u64,
    /// Total result rows returned.
    pub hits: u64,
    /// Virtual time the whole query burst consumed.
    pub virtual_secs: f64,
    /// Mean virtual milliseconds per query.
    pub avg_query_ms: f64,
    /// Mean virtual milliseconds of the scan-dominated class alone
    /// (`count(*)` over the whole domain) — where partition parallelism
    /// pays off hardest.
    pub scan_query_ms: f64,
}

/// Like [`prepare`], but on a world with the default latency model and
/// strong consistency, so the virtual clock prices every call and every
/// query sees the full corpus.
///
/// # Errors
///
/// Propagates service errors from the persist phase.
pub fn prepare_virtual(shards: usize, dataset: &Combined) -> Result<(SimWorld, SimpleDb)> {
    let world = virtual_world();
    let mut store = S3SimpleDb::with_shards(&world, shards);
    let (flushes, _) = dataset.flushes();
    for flush in &flushes {
        store.persist(flush)?;
    }
    let db = store.simpledb().clone();
    Ok((world, db))
}

/// The deterministic half of the experiment: the same query mix, priced
/// in virtual time by the latency model's parallel scan term. A sharded
/// query charges the largest partition's share of the scan, so the mean
/// virtual query latency must fall as the shard count grows — on any
/// host, regardless of core count.
///
/// # Errors
///
/// Propagates service errors.
pub fn virtual_scaling(
    dataset: &Combined,
    shard_counts: &[usize],
    queries: usize,
) -> Result<Vec<VirtualRow>> {
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let (world, db) = prepare_virtual(shards, dataset)?;
        let start = world.now();
        let mut hits = 0u64;
        let mut scan_secs = 0.0f64;
        let mut scan_queries = 0u64;
        for slot in 0..queries {
            let before = world.now();
            hits += run_one(&db, slot)?;
            if slot % 4 == 3 {
                scan_secs += (world.now() - before).as_secs_f64();
                scan_queries += 1;
            }
        }
        let virtual_secs = (world.now() - start).as_secs_f64();
        rows.push(VirtualRow {
            shards,
            queries: queries as u64,
            hits,
            virtual_secs,
            avg_query_ms: virtual_secs * 1_000.0 / (queries as f64).max(1.0),
            scan_query_ms: scan_secs * 1_000.0 / (scan_queries as f64).max(1.0),
        });
    }
    Ok(rows)
}

/// Renders the virtual-time sweep with a speedup column against the
/// single-shard row.
pub fn render_virtual(rows: &[VirtualRow]) -> String {
    let mut out = String::new();
    out.push_str("Virtual-time query latency — parallel scan model, fixed corpus\n");
    out.push_str(
        "shards | queries |    hits | virt (s) | ms/query | speedup | scan ms | scan speedup\n",
    );
    out.push_str(
        "-------|---------|---------|----------|----------|---------|---------|-------------\n",
    );
    let base = rows.first().map(|r| r.avg_query_ms).unwrap_or(1.0);
    let scan_base = rows.first().map(|r| r.scan_query_ms).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>7} | {:>7} | {:>8.2} | {:>8.2} | {:>6.2}x | {:>7.2} | {:>11.2}x\n",
            r.shards,
            r.queries,
            r.hits,
            r.virtual_secs,
            r.avg_query_ms,
            base / r.avg_query_ms.max(f64::EPSILON),
            r.scan_query_ms,
            scan_base / r.scan_query_ms.max(f64::EPSILON),
        ));
    }
    out
}

// --- Key-skew shard imbalance ---

/// One row of the key-skew imbalance table: how unevenly a key stream
/// loads the shards of a SimpleDB domain.
#[derive(Clone, Debug)]
pub struct SkewRow {
    /// Key distribution label (`uniform`, `zipf(0.99)`, …).
    pub label: String,
    /// Shard count of the domain.
    pub shards: usize,
    /// Point writes issued.
    pub ops: u64,
    /// Ops landing on the busiest shard.
    pub max_shard_ops: u64,
    /// Mean ops per shard.
    pub mean_shard_ops: f64,
    /// `max / mean` — 1.0 is perfect balance; the paper-era answer to a
    /// hot domain was splitting or throttling, which is what this
    /// number argues for (ROADMAP: shard rebalancing).
    pub imbalance: f64,
}

/// Writes `ops` point items into a fresh `shards`-sharded domain, with
/// item names drawn from `keys` keys — uniformly when `theta` is
/// `None`, Zipf(θ)-skewed otherwise — and reads the per-shard op load
/// back out of the meters.
///
/// # Errors
///
/// Propagates SimpleDB errors.
pub fn shard_skew(shards: usize, ops: usize, keys: usize, theta: Option<f64>) -> Result<SkewRow> {
    let world = SimWorld::counting();
    let db = SimpleDb::with_shards(&world, shards);
    db.create_domain("skew")?;
    let mut gen = ZipfKeys::new(keys, theta.unwrap_or(0.99), 2009);
    for i in 0..ops {
        let key = match theta {
            Some(_) => gen.next_index(),
            None => gen.next_uniform_index(),
        };
        db.put_attributes(
            "skew",
            &format!("item-{key:06}"),
            &[ReplaceableAttribute::replace("v", i.to_string())],
        )?;
    }
    let imb = world.meters().shard_imbalance(Service::SimpleDb, shards);
    Ok(SkewRow {
        label: match theta {
            Some(t) => format!("zipf({t})"),
            None => "uniform".to_string(),
        },
        shards,
        ops: ops as u64,
        max_shard_ops: imb.max_ops,
        mean_shard_ops: imb.mean_ops(),
        imbalance: imb.imbalance(),
    })
}

/// Runs the skew experiment at one shard count: a uniform control row
/// plus one row per requested θ.
///
/// # Errors
///
/// Propagates SimpleDB errors.
pub fn skew_sweep(shards: usize, ops: usize, keys: usize, thetas: &[f64]) -> Result<Vec<SkewRow>> {
    let mut rows = vec![shard_skew(shards, ops, keys, None)?];
    for &theta in thetas {
        rows.push(shard_skew(shards, ops, keys, Some(theta))?);
    }
    Ok(rows)
}

/// Renders the skew table. `shard_op_count` imbalance (max/mean) is the
/// number the ROADMAP's shard-rebalancing item needs data for: hashing
/// balances *keys*, not *popularity*.
pub fn render_skew(rows: &[SkewRow]) -> String {
    let mut out = String::new();
    out.push_str("Key-skew shard imbalance — point writes, hash placement\n");
    out.push_str("distribution | shards |  ops | max shard ops | mean shard ops | max/mean\n");
    out.push_str("-------------|--------|------|---------------|----------------|---------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>12} | {:>6} | {:>4} | {:>13} | {:>14.1} | {:>7.2}x\n",
            r.label, r.shards, r.ops, r.max_shard_ops, r.mean_shard_ops, r.imbalance,
        ));
    }
    out
}

// --- Hot-shard splitting sweep ---

/// Warmup writes before the split sweep's measurement window — splits
/// are expected to happen (and finish) in here.
pub const SPLIT_WARMUP_OPS: usize = 40_000;

/// Writes inside the measurement window itself.
pub const SPLIT_WINDOW_OPS: usize = 20_000;

/// The split policy the sweep arms: split any shard whose windowed op
/// share exceeds 8% (just above the ~7.9% share of the hottest single
/// key at the 100k-key corpus — a single item can't be split apart, so
/// triggering below that would thrash), with a 4096-op window floor and
/// a 64-shard growth cap.
pub fn sweep_split_policy() -> SplitPolicy {
    SplitPolicy::by_share(0.08)
        .with_min_ops(4096)
        .with_max_shards(64)
}

/// One row of the hot-shard splitting table.
#[derive(Clone, Debug)]
pub struct SplitRow {
    /// `static` or `split`.
    pub label: String,
    /// Distinct keys the zipf stream draws from.
    pub keys: usize,
    /// Shards the domain started with.
    pub shards_start: usize,
    /// Shards the domain ended with (grows only in split runs).
    pub shards_final: usize,
    /// Splits performed.
    pub splits: u64,
    /// Writes in the measurement window.
    pub window_ops: u64,
    /// Window ops on the busiest shard.
    pub max_ops: u64,
    /// Window `max / mean` against the **starting** shard count's fair
    /// share — the static run's own yardstick, so "2.37x → ≤1.3x" is
    /// apples to apples even though splitting grew the live count.
    pub imbalance: f64,
    /// FNV-1a fingerprint of the domain's converged latest state — must
    /// be byte-identical between the static and split runs.
    pub fingerprint: u64,
}

/// Window load reduced through the shared [`ShardImbalance`] type: the
/// per-shard op deltas between two meter snapshots, with the *baseline*
/// shard count as the fair-share denominator.
pub fn window_imbalance(
    before: &MeterSnapshot,
    after: &MeterSnapshot,
    service: Service,
    ids: &[u32],
    baseline_shards: usize,
) -> ShardImbalance {
    let mut total_ops = 0u64;
    let mut max_ops = 0u64;
    let mut max_shard = None;
    let mut shards_touched = 0usize;
    for &id in ids {
        let delta = after
            .shard_op_count(service, id)
            .saturating_sub(before.shard_op_count(service, id));
        if delta == 0 {
            continue;
        }
        shards_touched += 1;
        total_ops += delta;
        if delta > max_ops {
            max_ops = delta;
            max_shard = Some(id);
        }
    }
    ShardImbalance {
        baseline_shards,
        shards_touched,
        total_ops,
        max_ops,
        max_shard,
    }
}

/// FNV-1a fingerprint of a domain's authoritative latest state: every
/// live item name with its attributes, in name order. Placement is
/// invisible to it — identical state fingerprints identically at any
/// shard layout.
pub fn domain_fingerprint(db: &SimpleDb, domain: &str) -> u64 {
    let mut acc = String::new();
    for name in db.latest_item_names(domain) {
        acc.push_str(&name);
        acc.push('\x1f');
        if let Some(attrs) = db.latest_item(domain, &name) {
            for a in &attrs {
                acc.push_str(&a.name);
                acc.push('=');
                acc.push_str(&a.value);
                acc.push('\x1e');
            }
        }
        acc.push('\n');
    }
    simworld::fnv1a_64(&acc)
}

/// Runs one leg of the split experiment: `SPLIT_WARMUP_OPS` zipf(θ)
/// point writes to warm the policy up (splits land here), then
/// `SPLIT_WINDOW_OPS` more inside a metered window. Returns the window
/// imbalance against the *starting* shard count plus the converged
/// state fingerprint.
///
/// # Errors
///
/// Propagates SimpleDB errors.
pub fn split_leg(
    shards: usize,
    keys: usize,
    theta: f64,
    policy: Option<SplitPolicy>,
) -> Result<SplitRow> {
    let world = SimWorld::counting();
    let plan = match policy {
        Some(p) => ShardPlan::fixed(shards).with_split(p),
        None => ShardPlan::fixed(shards),
    };
    let db = SimpleDb::with_shard_plan(&world, plan);
    db.create_domain("skew")?;
    let mut gen = ZipfKeys::new(keys, theta, 2009);
    let mut write = |i: usize| -> Result<()> {
        let key = gen.next_index();
        db.put_attributes(
            "skew",
            &format!("item-{key:06}"),
            &[ReplaceableAttribute::replace("v", i.to_string())],
        )?;
        Ok(())
    };
    for i in 0..SPLIT_WARMUP_OPS {
        write(i)?;
    }
    let before = world.meters();
    for i in 0..SPLIT_WINDOW_OPS {
        write(SPLIT_WARMUP_OPS + i)?;
    }
    let after = world.meters();
    let ids = db.domain_shard_ids("skew").expect("domain exists");
    let imb = window_imbalance(&before, &after, Service::SimpleDb, &ids, shards);
    world.settle();
    Ok(SplitRow {
        label: if policy.is_some() { "split" } else { "static" }.to_string(),
        keys,
        shards_start: shards,
        shards_final: db.domain_shard_count("skew").expect("domain exists"),
        splits: db.domain_split_count("skew").expect("domain exists"),
        window_ops: imb.total_ops,
        max_ops: imb.max_ops,
        imbalance: imb.imbalance(),
        fingerprint: domain_fingerprint(&db, "skew"),
    })
}

/// The full split sweep at zipf(0.99): static and split legs over a
/// small (hot single key dominates — splitting is floor-limited by the
/// unsplittable item) and a large corpus (where the ≤1.3x target is
/// honestly reachable).
///
/// # Errors
///
/// Propagates SimpleDB errors.
pub fn split_sweep(shards: usize, key_counts: &[usize]) -> Result<Vec<SplitRow>> {
    let mut rows = Vec::new();
    for &keys in key_counts {
        rows.push(split_leg(shards, keys, 0.99, None)?);
        rows.push(split_leg(shards, keys, 0.99, Some(sweep_split_policy()))?);
    }
    Ok(rows)
}

/// Renders the split sweep table.
pub fn render_split(rows: &[SplitRow]) -> String {
    let mut out = String::new();
    out.push_str("Hot-shard splitting — zipf(0.99) point writes, windowed imbalance\n");
    out.push_str(&format!(
        "(warmup {SPLIT_WARMUP_OPS} ops, window {SPLIT_WINDOW_OPS} ops; imbalance vs the starting fair share)\n",
    ));
    out.push_str(
        "  mode |   keys | shards start→final | splits | max shard ops | max/mean | state fingerprint\n",
    );
    out.push_str(
        "-------|--------|--------------------|--------|---------------|----------|------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>6} | {:>11}→{:<6} | {:>6} | {:>13} | {:>7.2}x | {:016x}\n",
            r.label,
            r.keys,
            r.shards_start,
            r.shards_final,
            r.splits,
            r.max_ops,
            r.imbalance,
            r.fingerprint,
        ));
    }
    out
}

// --- S3 LIST/mixed sweep ---

/// One row of the S3 scaling tables.
#[derive(Clone, Debug)]
pub struct S3Row {
    /// Bucket shard count of this run.
    pub shards: usize,
    /// Operations issued.
    pub ops: u64,
    /// Total keys listed / objects fetched — identical across shard
    /// counts for the same corpus, or sharding broke LIST semantics.
    pub hits: u64,
    /// Virtual time the whole mix consumed.
    pub virtual_secs: f64,
    /// Mean virtual milliseconds per operation.
    pub avg_op_ms: f64,
    /// Mean virtual milliseconds of the LIST class alone (single pages
    /// and full `list_all` walks) — where the fan-out scan term pays.
    pub list_op_ms: f64,
    /// Wall-clock seconds of the multi-thread burst (0 for
    /// virtual-only runs).
    pub wall_secs: f64,
}

/// Fills a fresh `shards`-sharded bucket with `objects` small objects
/// on a virtual-pricing world.
///
/// # Errors
///
/// Propagates S3 errors from the fill phase.
pub fn prepare_s3(shards: usize, objects: usize) -> Result<(SimWorld, S3)> {
    let world = virtual_world();
    let s3 = S3::with_shards(&world, shards);
    s3.create_bucket(S3_BENCH_BUCKET)?;
    for i in 0..objects {
        s3.put_object(
            S3_BENCH_BUCKET,
            &format!("obj/{i:05}"),
            Blob::synthetic(i as u64, 256),
            Metadata::new(),
        )?;
    }
    Ok((world, s3))
}

/// One operation of the S3 mix, selected by `slot`: a single LIST page,
/// a GET, a full paginated `list_all` walk, or a HEAD. Read-only, so
/// bursts can share one corpus. Returns how many keys/objects came back.
///
/// # Errors
///
/// Propagates S3 errors.
pub fn run_one_s3(s3: &S3, slot: usize, objects: usize) -> Result<u64> {
    let key_of = |slot: usize| format!("obj/{:05}", (slot * 7919) % objects.max(1));
    Ok(match slot % 4 {
        0 => s3
            .list_objects(S3_BENCH_BUCKET, "obj/", None, 1000)?
            .objects
            .len() as u64,
        1 => {
            s3.get_object(S3_BENCH_BUCKET, &key_of(slot))?;
            1
        }
        2 => s3.list_all(S3_BENCH_BUCKET, "obj/")?.len() as u64,
        _ => {
            s3.head_object(S3_BENCH_BUCKET, &key_of(slot))?;
            1
        }
    })
}

/// `true` for the slots of [`run_one_s3`] that are LIST-class.
fn s3_list_class(slot: usize) -> bool {
    slot.is_multiple_of(2)
}

/// Fires `threads × ops_per_thread` mixed S3 ops at shared clones of
/// `s3` and returns `(total hits, wall seconds)`.
pub fn s3_burst(s3: &S3, objects: usize, threads: usize, ops_per_thread: usize) -> (u64, f64) {
    let start = Instant::now();
    let hits = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s3 = s3.clone();
                scope.spawn(move || -> u64 {
                    (0..ops_per_thread)
                        .map(|q| run_one_s3(&s3, t + q, objects).expect("bench op failed"))
                        .sum()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .sum()
    });
    (hits, start.elapsed().as_secs_f64())
}

/// The deterministic half of the S3 experiment: the same op mix, priced
/// in virtual time. A sharded LIST charges the busiest shard's share of
/// the index scan, so LIST-class virtual latency must fall as the shard
/// count grows — on any host.
///
/// # Errors
///
/// Propagates S3 errors.
pub fn s3_virtual_scaling(
    shard_counts: &[usize],
    objects: usize,
    ops: usize,
) -> Result<Vec<S3Row>> {
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let (world, s3) = prepare_s3(shards, objects)?;
        let start = world.now();
        let mut hits = 0u64;
        let mut list_secs = 0.0f64;
        let mut list_ops = 0u64;
        for slot in 0..ops {
            let before = world.now();
            hits += run_one_s3(&s3, slot, objects)?;
            if s3_list_class(slot) {
                list_secs += (world.now() - before).as_secs_f64();
                list_ops += 1;
            }
        }
        let virtual_secs = (world.now() - start).as_secs_f64();
        rows.push(S3Row {
            shards,
            ops: ops as u64,
            hits,
            virtual_secs,
            avg_op_ms: virtual_secs * 1_000.0 / (ops as f64).max(1.0),
            list_op_ms: list_secs * 1_000.0 / (list_ops as f64).max(1.0),
            wall_secs: 0.0,
        });
    }
    Ok(rows)
}

/// The wall-clock half: persist the corpus per shard count and fire the
/// multi-thread mixed burst.
///
/// # Errors
///
/// Propagates S3 errors.
pub fn s3_scaling(
    shard_counts: &[usize],
    objects: usize,
    threads: usize,
    ops_per_thread: usize,
) -> Result<Vec<S3Row>> {
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let (_, s3) = prepare_s3(shards, objects)?;
        let (hits, wall_secs) = s3_burst(&s3, objects, threads, ops_per_thread);
        rows.push(S3Row {
            shards,
            ops: (threads * ops_per_thread) as u64,
            hits,
            virtual_secs: 0.0,
            avg_op_ms: 0.0,
            list_op_ms: 0.0,
            wall_secs,
        });
    }
    Ok(rows)
}

/// Renders the S3 virtual-time sweep with speedup columns against the
/// single-shard row.
pub fn render_s3_virtual(rows: &[S3Row]) -> String {
    let mut out = String::new();
    out.push_str("S3 virtual-time latency — LIST fan-out scan model, fixed corpus\n");
    out.push_str(
        "shards |  ops |    hits | virt (s) |  ms/op | speedup | list ms | list speedup\n",
    );
    out.push_str(
        "-------|------|---------|----------|--------|---------|---------|-------------\n",
    );
    let base = rows.first().map(|r| r.avg_op_ms).unwrap_or(1.0);
    let list_base = rows.first().map(|r| r.list_op_ms).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>4} | {:>7} | {:>8.2} | {:>6.2} | {:>6.2}x | {:>7.2} | {:>11.2}x\n",
            r.shards,
            r.ops,
            r.hits,
            r.virtual_secs,
            r.avg_op_ms,
            base / r.avg_op_ms.max(f64::EPSILON),
            r.list_op_ms,
            list_base / r.list_op_ms.max(f64::EPSILON),
        ));
    }
    out
}

/// Renders the S3 wall-clock burst table.
pub fn render_s3_wall(rows: &[S3Row], threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "S3 wall-clock — {threads} threads, LIST/GET/HEAD mix, fixed corpus\n"
    ));
    out.push_str("shards |  ops |    hits | wall (s) |  ops/s\n");
    out.push_str("-------|------|---------|----------|-------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>4} | {:>7} | {:>8.3} | {:>6.1}\n",
            r.shards,
            r.ops,
            r.hits,
            r.wall_secs,
            r.ops as f64 / r.wall_secs.max(f64::EPSILON),
        ));
    }
    out
}

// --- SQS multi-queue sweep ---

/// One row of the SQS multi-queue tables.
#[derive(Clone, Debug)]
pub struct SqsRow {
    /// Queue count the message load is spread over.
    pub queues: usize,
    /// Messages sent.
    pub messages: u64,
    /// Distinct messages received — must equal `messages` for every
    /// layout, or queue spreading lost work.
    pub received: u64,
    /// Receive calls the sweep needed.
    pub receives: u64,
    /// Virtual time of the receive phase.
    pub virtual_secs: f64,
    /// Mean virtual milliseconds per receive call — the multi-queue
    /// class: each queue's servers scan only that queue's messages, so
    /// spreading load over more queues shrinks the busiest server's
    /// share and this must fall.
    pub avg_receive_ms: f64,
    /// Wall-clock seconds of the multi-thread drain (0 for virtual-only
    /// runs).
    pub wall_secs: f64,
}

/// Creates `queues` queues on a virtual-pricing world and spreads
/// `messages` messages over them round-robin. Visibility timeouts are
/// set long so one receive sweep sees each message exactly once.
///
/// # Errors
///
/// Propagates SQS errors.
pub fn prepare_sqs(queues: usize, messages: usize) -> Result<(SimWorld, Sqs, Vec<String>)> {
    let world = virtual_world();
    let sqs = Sqs::new(&world);
    let urls: Vec<String> = (0..queues)
        .map(|q| sqs.create_queue(format!("sweep-{q}")))
        .collect();
    for url in &urls {
        sqs.set_visibility_timeout(url, SimDuration::from_secs(3600))?;
    }
    for i in 0..messages {
        sqs.send_message(&urls[i % queues], format!("m{i:06}"))?;
    }
    Ok((world, sqs, urls))
}

/// Receives every message on `url` exactly once (long visibility
/// timeout, no deletes — the paper's commit daemon scanning a deep WAL).
/// Returns `(messages seen, receive calls)`.
///
/// # Errors
///
/// Propagates SQS errors.
pub fn sweep_queue(sqs: &Sqs, url: &str, expected: usize) -> Result<(u64, u64)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut receives = 0u64;
    while seen.len() < expected {
        receives += 1;
        for msg in sqs.receive_message(url, 10)? {
            seen.insert(msg.message_id);
        }
    }
    Ok((seen.len() as u64, receives))
}

/// Messages queue `q` of `queues` holds after a round-robin spread of
/// `messages` — the first `messages % queues` queues carry the
/// remainder, so non-divisible loads are swept in full.
fn queue_load(messages: usize, queues: usize, q: usize) -> usize {
    messages / queues + usize::from(q < messages % queues)
}

/// The deterministic half of the SQS experiment: spread a fixed message
/// load over more queues and sweep every queue. Each receive is charged
/// the busiest sampled server's share of *its own queue's* messages, so
/// the mean virtual receive latency must fall as the queue count grows.
///
/// # Errors
///
/// Propagates SQS errors.
pub fn sqs_virtual_scaling(queue_counts: &[usize], messages: usize) -> Result<Vec<SqsRow>> {
    let mut rows = Vec::with_capacity(queue_counts.len());
    for &queues in queue_counts {
        let (world, sqs, urls) = prepare_sqs(queues, messages)?;
        let start = world.now();
        let mut received = 0u64;
        let mut receives = 0u64;
        for (q, url) in urls.iter().enumerate() {
            let (seen, calls) = sweep_queue(&sqs, url, queue_load(messages, queues, q))?;
            received += seen;
            receives += calls;
        }
        let virtual_secs = (world.now() - start).as_secs_f64();
        rows.push(SqsRow {
            queues,
            messages: messages as u64,
            received,
            receives,
            virtual_secs,
            avg_receive_ms: virtual_secs * 1_000.0 / (receives as f64).max(1.0),
            wall_secs: 0.0,
        });
    }
    Ok(rows)
}

/// The wall-clock half: `threads` OS threads sweep disjoint queue
/// subsets concurrently — with per-queue locks they no longer serialise
/// on one service mutex.
///
/// # Errors
///
/// Propagates SQS errors.
pub fn sqs_scaling(queue_counts: &[usize], messages: usize, threads: usize) -> Result<Vec<SqsRow>> {
    let mut rows = Vec::with_capacity(queue_counts.len());
    for &queues in queue_counts {
        let (_, sqs, urls) = prepare_sqs(queues, messages)?;
        let start = Instant::now();
        let (received, receives) = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(queues))
                .map(|t| {
                    let sqs = sqs.clone();
                    let urls = &urls;
                    scope.spawn(move || -> (u64, u64) {
                        let mut totals = (0u64, 0u64);
                        let stride = threads.min(queues);
                        for (q, url) in urls.iter().enumerate().skip(t).step_by(stride) {
                            let (seen, calls) =
                                sweep_queue(&sqs, url, queue_load(messages, queues, q))
                                    .expect("sweep failed");
                            totals.0 += seen;
                            totals.1 += calls;
                        }
                        totals
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench thread panicked"))
                .fold((0, 0), |acc, (s, c)| (acc.0 + s, acc.1 + c))
        });
        rows.push(SqsRow {
            queues,
            messages: messages as u64,
            received,
            receives,
            virtual_secs: 0.0,
            avg_receive_ms: 0.0,
            wall_secs: start.elapsed().as_secs_f64(),
        });
    }
    Ok(rows)
}

/// Renders the SQS virtual-time sweep with a speedup column on the
/// receive class against the single-queue row.
pub fn render_sqs_virtual(rows: &[SqsRow]) -> String {
    let mut out = String::new();
    out.push_str("SQS virtual-time receive latency — per-queue server scan, fixed load\n");
    out.push_str("queues |  msgs | received | receives | virt (s) | ms/receive | speedup\n");
    out.push_str("-------|-------|----------|----------|----------|------------|--------\n");
    let base = rows.first().map(|r| r.avg_receive_ms).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>5} | {:>8} | {:>8} | {:>8.2} | {:>10.2} | {:>6.2}x\n",
            r.queues,
            r.messages,
            r.received,
            r.receives,
            r.virtual_secs,
            r.avg_receive_ms,
            base / r.avg_receive_ms.max(f64::EPSILON),
        ));
    }
    out
}

/// Renders the SQS wall-clock sweep table.
pub fn render_sqs_wall(rows: &[SqsRow], threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SQS wall-clock — {threads} threads sweeping disjoint queues, fixed load\n"
    ));
    out.push_str("queues |  msgs | received | wall (s) | msgs/s\n");
    out.push_str("-------|-------|----------|----------|-------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>5} | {:>8} | {:>8.3} | {:>6.1}\n",
            r.queues,
            r.messages,
            r.received,
            r.wall_secs,
            r.received as f64 / r.wall_secs.max(f64::EPSILON),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_agree_across_shard_counts() {
        // Query *semantics* must be independent of the shard layout:
        // same corpus, same queries, same result counts.
        let dataset = Combined::small();
        let rows = shard_scaling(&dataset, &[1, 4, 16], 2, 3).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].hits > 0, "the query mix must return results");
        assert!(
            rows.windows(2).all(|w| w[0].hits == w[1].hits),
            "hit counts diverged across shard counts: {rows:?}"
        );
    }

    #[test]
    fn virtual_query_latency_improves_with_shards() {
        // The acceptance bar of the sharding issue, in the simulator's
        // own currency: more shards → parallel scan → lower virtual
        // query latency, deterministically on any host.
        let dataset = Combined::small();
        let rows = virtual_scaling(&dataset, &[1, 4, 16], 9).unwrap();
        assert!(
            rows.windows(2).all(|w| w[0].hits == w[1].hits),
            "hit counts diverged: {rows:?}"
        );
        assert!(
            rows.windows(2)
                .all(|w| w[1].avg_query_ms < w[0].avg_query_ms),
            "virtual latency must fall as shards grow: {rows:?}"
        );
    }

    #[test]
    fn s3_hits_agree_and_list_latency_falls() {
        // LIST semantics must be independent of the bucket shard layout,
        // while the fan-out scan term makes the LIST class faster.
        let rows = s3_virtual_scaling(&[1, 4, 16], 400, 8).unwrap();
        assert!(rows[0].hits > 0, "the op mix must return results");
        assert!(
            rows.windows(2).all(|w| w[0].hits == w[1].hits),
            "hit counts diverged across shard counts: {rows:?}"
        );
        assert!(
            rows.windows(2).all(|w| w[1].list_op_ms < w[0].list_op_ms),
            "LIST-class virtual latency must fall as shards grow: {rows:?}"
        );
    }

    #[test]
    fn s3_wall_burst_hits_agree() {
        let rows = s3_scaling(&[1, 16], 200, 2, 4).unwrap();
        assert!(rows[0].hits > 0);
        assert_eq!(rows[0].hits, rows[1].hits);
    }

    #[test]
    fn sqs_sweep_is_lossless_and_receive_latency_falls() {
        // Spreading a fixed load over more queues must lose nothing and
        // must shrink the per-receive server-scan share.
        let rows = sqs_virtual_scaling(&[1, 2, 4], 240).unwrap();
        assert!(
            rows.iter().all(|r| r.received == r.messages),
            "a sweep lost messages: {rows:?}"
        );
        assert!(
            rows.windows(2)
                .all(|w| w[1].avg_receive_ms < w[0].avg_receive_ms),
            "receive latency must fall as queues grow: {rows:?}"
        );
    }

    #[test]
    fn sqs_wall_sweep_is_lossless() {
        let rows = sqs_scaling(&[2, 4], 160, 2).unwrap();
        assert!(rows.iter().all(|r| r.received == r.messages), "{rows:?}");
    }

    #[test]
    fn zipfian_keys_imbalance_the_shards() {
        // Hash placement balances keys, not popularity: the skewed
        // stream must load its hottest shard measurably harder than
        // the uniform control does.
        let rows = skew_sweep(16, 4000, 1000, &[0.99]).unwrap();
        assert_eq!(rows.len(), 2);
        let (uniform, zipf) = (&rows[0], &rows[1]);
        assert_eq!(uniform.ops, zipf.ops);
        assert!(
            (uniform.mean_shard_ops - 4000.0 / 16.0).abs() < 1e-9,
            "every op lands on exactly one shard: {uniform:?}"
        );
        assert!(
            zipf.imbalance > uniform.imbalance * 1.5,
            "zipf must skew the shard load: {rows:?}"
        );
    }

    #[test]
    fn splitting_collapses_the_imbalance_without_touching_state() {
        // The tentpole's two promises at once: hot-shard splitting must
        // shrink the windowed imbalance, and the converged domain state
        // must be byte-identical with splitting on or off.
        let stat = split_leg(16, 5000, 0.99, None).unwrap();
        let split = split_leg(16, 5000, 0.99, Some(sweep_split_policy())).unwrap();
        assert_eq!(stat.shards_final, 16, "static runs must not split");
        assert!(split.splits > 0, "the policy must fire: {split:?}");
        assert!(
            split.imbalance < stat.imbalance,
            "splitting must reduce the imbalance: {stat:?} vs {split:?}"
        );
        assert_eq!(
            stat.fingerprint, split.fingerprint,
            "converged state must not depend on splitting"
        );
    }
}

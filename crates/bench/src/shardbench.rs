//! Shard-scaling experiment: multi-thread `Query`/`Select` throughput
//! against the SimpleDB shard count.
//!
//! The tentpole claim behind the sharded `sim-simpledb` is that hash
//! sharding with per-shard locks unlocks parallel query/select: with one
//! shard every scan serialises on one lock, with N shards concurrent
//! scans interleave across shards. This harness measures exactly that —
//! a fixed workload corpus, T OS threads issuing the paper's style of
//! provenance queries against shared [`SimpleDb`] handles, wall-clock
//! throughput per shard count.
//!
//! Everything except the thread scheduling is deterministic (fixed
//! dataset seed, strongly-consistent counting world), so the per-query
//! *result* counts must agree across shard counts — the smoke test and
//! the CI step assert that while the throughput column tells the
//! scaling story.

use std::thread;
use std::time::Instant;

use provenance_cloud::{layout, ProvenanceStore, Result, S3SimpleDb};
use sim_simpledb::SimpleDb;
use simworld::{Consistency, LatencyModel, SimConfig, SimWorld};
use workloads::Combined;

/// The shard counts the scaling sweep visits by default.
pub const DEFAULT_SHARD_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

/// One row of the scaling table.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Queries issued (threads × queries-per-thread).
    pub queries: u64,
    /// Total result rows returned — identical across shard counts for
    /// the same corpus, or the sharding broke query semantics.
    pub hits: u64,
    /// Wall-clock seconds for the whole burst.
    pub wall_secs: f64,
    /// Queries per wall-clock second.
    pub throughput: f64,
}

/// Persists `dataset` into a fresh Architecture-2 store whose SimpleDB
/// runs `shards` hash shards, and hands back the shared SimpleDB handle
/// (settled, so every query sees the full corpus).
///
/// # Errors
///
/// Propagates service errors from the persist phase.
pub fn prepare(shards: usize, dataset: &Combined) -> Result<SimpleDb> {
    let world = SimWorld::counting();
    let mut store = S3SimpleDb::with_shards(&world, shards);
    let (flushes, _) = dataset.flushes();
    for flush in &flushes {
        store.persist(flush)?;
    }
    world.settle();
    Ok(store.simpledb().clone())
}

/// One query of the benchmark mix, selected by `slot`: an indexed
/// `Select` by type, a bracketed `Query` by type, a two-page paginated
/// full scan, or a full-domain `count(*)` — the scan-dominated member
/// of the mix. Returns how many rows came back.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_one(db: &SimpleDb, slot: usize) -> Result<u64> {
    Ok(match slot % 4 {
        0 => {
            let r = db.select(
                "select itemName() from provenance where type = 'file'",
                None,
            )?;
            r.items.len() as u64
        }
        1 => {
            let r = db.query(
                layout::DOMAIN,
                Some("['type' = 'process']"),
                Some(100),
                None,
            )?;
            r.item_names.len() as u64
        }
        2 => {
            let first = db.query(layout::DOMAIN, None, Some(50), None)?;
            let mut n = first.item_names.len() as u64;
            if let Some(token) = first.next_token {
                n += db
                    .query(layout::DOMAIN, None, Some(50), Some(&token))?
                    .item_names
                    .len() as u64;
            }
            n
        }
        _ => {
            let r = db.select("select count(*) from provenance", None)?;
            r.count.unwrap_or(0)
        }
    })
}

/// Fires `threads × queries_per_thread` queries at shared clones of
/// `db` and returns `(total hits, wall seconds)`.
pub fn burst(db: &SimpleDb, threads: usize, queries_per_thread: usize) -> (u64, f64) {
    let start = Instant::now();
    let hits = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = db.clone();
                scope.spawn(move || -> u64 {
                    (0..queries_per_thread)
                        .map(|q| run_one(&db, t + q).expect("bench query failed"))
                        .sum()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .sum()
    });
    (hits, start.elapsed().as_secs_f64())
}

/// Runs the full sweep: for each shard count, persist the corpus and
/// fire the multi-thread query burst.
///
/// # Errors
///
/// Propagates service errors.
pub fn shard_scaling(
    dataset: &Combined,
    shard_counts: &[usize],
    threads: usize,
    queries_per_thread: usize,
) -> Result<Vec<ShardRow>> {
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let db = prepare(shards, dataset)?;
        let (hits, wall_secs) = burst(&db, threads, queries_per_thread);
        let queries = (threads * queries_per_thread) as u64;
        rows.push(ShardRow {
            shards,
            queries,
            hits,
            wall_secs,
            throughput: queries as f64 / wall_secs.max(f64::EPSILON),
        });
    }
    Ok(rows)
}

/// Renders the sweep like the paper renders its tables, with a speedup
/// column against the single-shard row.
pub fn render(rows: &[ShardRow], threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Shard scaling — {threads} threads, query/select mix, fixed corpus\n"
    ));
    out.push_str("shards | queries |    hits | wall (s) | queries/s | speedup\n");
    out.push_str("-------|---------|---------|----------|-----------|--------\n");
    let base = rows.first().map(|r| r.throughput).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>7} | {:>7} | {:>8.3} | {:>9.1} | {:>6.2}x\n",
            r.shards,
            r.queries,
            r.hits,
            r.wall_secs,
            r.throughput,
            r.throughput / base,
        ));
    }
    out
}

/// One row of the virtual-time scaling table.
#[derive(Clone, Debug)]
pub struct VirtualRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Queries issued.
    pub queries: u64,
    /// Total result rows returned.
    pub hits: u64,
    /// Virtual time the whole query burst consumed.
    pub virtual_secs: f64,
    /// Mean virtual milliseconds per query.
    pub avg_query_ms: f64,
    /// Mean virtual milliseconds of the scan-dominated class alone
    /// (`count(*)` over the whole domain) — where partition parallelism
    /// pays off hardest.
    pub scan_query_ms: f64,
}

/// Like [`prepare`], but on a world with the default latency model and
/// strong consistency, so the virtual clock prices every call and every
/// query sees the full corpus.
///
/// # Errors
///
/// Propagates service errors from the persist phase.
pub fn prepare_virtual(shards: usize, dataset: &Combined) -> Result<(SimWorld, SimpleDb)> {
    let world = SimWorld::with_config(SimConfig {
        seed: 2009,
        consistency: Consistency::Strong,
        latency: LatencyModel::default(),
        replicas: 1,
    });
    let mut store = S3SimpleDb::with_shards(&world, shards);
    let (flushes, _) = dataset.flushes();
    for flush in &flushes {
        store.persist(flush)?;
    }
    let db = store.simpledb().clone();
    Ok((world, db))
}

/// The deterministic half of the experiment: the same query mix, priced
/// in virtual time by the latency model's parallel scan term. A sharded
/// query charges the largest partition's share of the scan, so the mean
/// virtual query latency must fall as the shard count grows — on any
/// host, regardless of core count.
///
/// # Errors
///
/// Propagates service errors.
pub fn virtual_scaling(
    dataset: &Combined,
    shard_counts: &[usize],
    queries: usize,
) -> Result<Vec<VirtualRow>> {
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let (world, db) = prepare_virtual(shards, dataset)?;
        let start = world.now();
        let mut hits = 0u64;
        let mut scan_secs = 0.0f64;
        let mut scan_queries = 0u64;
        for slot in 0..queries {
            let before = world.now();
            hits += run_one(&db, slot)?;
            if slot % 4 == 3 {
                scan_secs += (world.now() - before).as_secs_f64();
                scan_queries += 1;
            }
        }
        let virtual_secs = (world.now() - start).as_secs_f64();
        rows.push(VirtualRow {
            shards,
            queries: queries as u64,
            hits,
            virtual_secs,
            avg_query_ms: virtual_secs * 1_000.0 / (queries as f64).max(1.0),
            scan_query_ms: scan_secs * 1_000.0 / (scan_queries as f64).max(1.0),
        });
    }
    Ok(rows)
}

/// Renders the virtual-time sweep with a speedup column against the
/// single-shard row.
pub fn render_virtual(rows: &[VirtualRow]) -> String {
    let mut out = String::new();
    out.push_str("Virtual-time query latency — parallel scan model, fixed corpus\n");
    out.push_str(
        "shards | queries |    hits | virt (s) | ms/query | speedup | scan ms | scan speedup\n",
    );
    out.push_str(
        "-------|---------|---------|----------|----------|---------|---------|-------------\n",
    );
    let base = rows.first().map(|r| r.avg_query_ms).unwrap_or(1.0);
    let scan_base = rows.first().map(|r| r.scan_query_ms).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>7} | {:>7} | {:>8.2} | {:>8.2} | {:>6.2}x | {:>7.2} | {:>11.2}x\n",
            r.shards,
            r.queries,
            r.hits,
            r.virtual_secs,
            r.avg_query_ms,
            base / r.avg_query_ms.max(f64::EPSILON),
            r.scan_query_ms,
            scan_base / r.scan_query_ms.max(f64::EPSILON),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_agree_across_shard_counts() {
        // Query *semantics* must be independent of the shard layout:
        // same corpus, same queries, same result counts.
        let dataset = Combined::small();
        let rows = shard_scaling(&dataset, &[1, 4, 16], 2, 3).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].hits > 0, "the query mix must return results");
        assert!(
            rows.windows(2).all(|w| w[0].hits == w[1].hits),
            "hit counts diverged across shard counts: {rows:?}"
        );
    }

    #[test]
    fn virtual_query_latency_improves_with_shards() {
        // The acceptance bar of the sharding issue, in the simulator's
        // own currency: more shards → parallel scan → lower virtual
        // query latency, deterministically on any host.
        let dataset = Combined::small();
        let rows = virtual_scaling(&dataset, &[1, 4, 16], 9).unwrap();
        assert!(
            rows.windows(2).all(|w| w[0].hits == w[1].hits),
            "hit counts diverged: {rows:?}"
        );
        assert!(
            rows.windows(2)
                .all(|w| w[1].avg_query_ms < w[0].avg_query_ms),
            "virtual latency must fall as shards grow: {rows:?}"
        );
    }
}

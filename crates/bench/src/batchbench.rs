//! Batched vs point persist experiments: the request-count and
//! virtual-time story behind the batched request path.
//!
//! A group-commit flusher ([`pass::GroupCommitFlusher`]) coalesces the
//! combined workload's flushes into groups and drains each group through
//! `ProvenanceStore::persist_batch`, which rides the services' native
//! batch APIs (`BatchPutAttributes`, `SendMessageBatch`, multi-object
//! delete). The sweep varies the group size; group size 1 is the
//! point-op path, the baseline every other row must beat. Two invariants
//! hold on every row, and the smoke mode asserts them: the final store
//! state (provenance graph included) is identical to the point-op
//! path's, and the batched rows issue strictly fewer billable requests
//! — with the provenance *flush* path (SimpleDB writes + SQS sends)
//! shrinking ≥ 5x at full batch fill.

use pass::{FlushPolicy, GroupCommitFlusher};
use provenance_cloud::{ArchKind, ProvGraph, ProvQuery, Result};
use simworld::{Consistency, LatencyModel, MeterSnapshot, Op, SimConfig, SimWorld};
use workloads::Combined;

/// The group sizes the sweep visits by default (1 = point-op baseline).
pub const DEFAULT_GROUP_SIZES: &[usize] = &[1, 5, 10, 25];

/// One row of the batch-size sweep.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Group-commit threshold (flushes per drain); 1 is the point path.
    pub group_size: usize,
    /// Total billable requests of the persist phase (client + daemons).
    pub requests: u64,
    /// Requests on the provenance flush path alone: SimpleDB write
    /// requests plus SQS send requests (point or batch — a batch counts
    /// once, that being the point).
    pub flush_requests: u64,
    /// Virtual seconds the persist phase consumed.
    pub virtual_secs: f64,
    /// Provenance items/WAL records shipped through batch entries —
    /// constant across rows (same workload), or batching dropped work.
    pub graph_nodes: u64,
}

/// A world that prices every call (default 2009 latency model) but keeps
/// results layout-invariant (strong consistency) and deterministic
/// (fixed seed). Shared with the acceptance tests, so the bench and the
/// test measure on identical terms.
pub fn priced_world() -> SimWorld {
    SimWorld::with_config(SimConfig {
        seed: 2009,
        consistency: Consistency::Strong,
        latency: LatencyModel::default(),
        replicas: 1,
    })
}

/// Requests on the provenance flush path: every SimpleDB write request
/// and every SQS send request, point or batched.
pub fn flush_path_requests(meters: &MeterSnapshot) -> u64 {
    [
        Op::SdbPutAttributes,
        Op::SdbBatchPutAttributes,
        Op::SqsSendMessage,
        Op::SqsSendMessageBatch,
    ]
    .iter()
    .map(|op| meters.op_count(*op))
    .sum()
}

/// Persists `dataset` into a fresh `kind` store, coalescing flushes
/// into groups of `group_size` (1 = point persists), and returns the
/// sweep row plus the final provenance graph for cross-row equality
/// checks.
///
/// # Errors
///
/// Propagates service errors.
pub fn persist_grouped(
    kind: ArchKind,
    dataset: &Combined,
    group_size: usize,
) -> Result<(BatchRow, ProvGraph)> {
    let world = priced_world();
    let mut store = kind.build(&world);
    let (flushes, _) = dataset.flushes();
    let before_meters = world.meters();
    let before_clock = world.now();
    if group_size <= 1 {
        for flush in &flushes {
            store.persist(flush)?;
        }
    } else {
        let mut flusher = GroupCommitFlusher::new(FlushPolicy::every(group_size));
        for flush in &flushes {
            if let Some(group) = flusher.submit(flush.clone()) {
                store.persist_batch(&group)?;
            }
        }
        let tail = flusher.drain();
        store.persist_batch(&tail)?;
    }
    store.run_daemons_until_idle()?;
    let meters = world.meters() - before_meters;
    let virtual_secs = (world.now() - before_clock).as_secs_f64();
    world.settle();
    let graph = ProvGraph::from_answer(&store.query(&ProvQuery::ProvenanceOfAll)?);
    Ok((
        BatchRow {
            group_size,
            requests: meters.total_ops(),
            flush_requests: flush_path_requests(&meters),
            virtual_secs,
            graph_nodes: graph.len() as u64,
        },
        graph,
    ))
}

/// Runs the sweep for one architecture. The returned graphs (one per
/// row) must be pairwise identical — the caller-visible form of
/// "batching changes the bill, never the store".
///
/// # Errors
///
/// Propagates service errors.
pub fn batch_sweep(
    kind: ArchKind,
    dataset: &Combined,
    group_sizes: &[usize],
) -> Result<(Vec<BatchRow>, Vec<ProvGraph>)> {
    let mut rows = Vec::with_capacity(group_sizes.len());
    let mut graphs = Vec::with_capacity(group_sizes.len());
    for &n in group_sizes {
        let (row, graph) = persist_grouped(kind, dataset, n)?;
        rows.push(row);
        graphs.push(graph);
    }
    Ok((rows, graphs))
}

/// Renders a sweep with request-count and virtual-time speedup columns
/// against the point-op (group size 1) row.
pub fn render_batch(kind: ArchKind, rows: &[BatchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Batch-size sweep — {} persist path, combined workload, group-commit flusher\n",
        kind.label()
    ));
    out.push_str(
        "group | requests | req speedup | flush reqs | flush speedup | virt (s) | time speedup | graph\n",
    );
    out.push_str(
        "------|----------|-------------|------------|---------------|----------|--------------|------\n",
    );
    let base_req = rows.first().map(|r| r.requests).unwrap_or(1);
    let base_flush = rows.first().map(|r| r.flush_requests).unwrap_or(1);
    let base_virt = rows.first().map(|r| r.virtual_secs).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>5} | {:>8} | {:>10.2}x | {:>10} | {:>12.2}x | {:>8.2} | {:>11.2}x | {:>5}\n",
            r.group_size,
            r.requests,
            base_req as f64 / (r.requests as f64).max(1.0),
            r.flush_requests,
            base_flush as f64 / (r.flush_requests as f64).max(1.0),
            r.virtual_secs,
            base_virt / r.virtual_secs.max(f64::EPSILON),
            r.graph_nodes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_rows_match_point_state_and_cut_requests() {
        let dataset = Combined::small();
        for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
            let (rows, graphs) = batch_sweep(kind, &dataset, &[1, 25]).unwrap();
            assert!(
                graphs[0].diff(&graphs[1]).is_empty(),
                "{kind:?}: batching changed the provenance graph"
            );
            assert!(
                rows[1].requests < rows[0].requests,
                "{kind:?}: batched path must issue strictly fewer requests: {rows:?}"
            );
            assert!(
                rows[1].flush_requests * 5 <= rows[0].flush_requests,
                "{kind:?}: flush path must shrink >=5x: {rows:?}"
            );
            assert!(
                rows[1].virtual_secs < rows[0].virtual_secs,
                "{kind:?}: batched path must be faster in virtual time: {rows:?}"
            );
        }
    }

    #[test]
    fn group_size_one_is_the_point_path() {
        // The sweep's baseline row must not touch a batch API.
        let dataset = Combined::small();
        let (rows, _) = batch_sweep(ArchKind::S3SimpleDb, &dataset, &[1]).unwrap();
        assert_eq!(rows[0].group_size, 1);
        let world = priced_world();
        let mut store = ArchKind::S3SimpleDb.build(&world);
        let (flushes, _) = dataset.flushes();
        for flush in &flushes {
            store.persist(flush).unwrap();
        }
        assert_eq!(world.meters().op_count(Op::SdbBatchPutAttributes), 0);
    }
}

//! Ablation benches for the design decisions DESIGN.md calls out.
//!
//! 1. **MD5 vs MD5+nonce** — same-content overwrites are invisible to a
//!    bare data hash (§4.2's remark), visible with the nonce;
//! 2. **commit threshold** — daemon polling cost vs WAL backlog;
//! 3. **overflow threshold pressure** — how environment-record size
//!    drives overflow objects and extra operations;
//! 4. **visibility timeout** — duplicate deliveries when consumers are
//!    slower than the timeout (idempotency makes them harmless but
//!    billable);
//! 5. **replication lag** — read retries needed by the §4.2 consistency
//!    loop as staleness grows.

use pass::FileFlush;
use provenance_cloud::{
    Arch3Config, ArchKind, ProvenanceStore, ReadStatus, Result, RetryPolicy, S3SimpleDb,
    S3SimpleDbSqs,
};
use serde::{Deserialize, Serialize};
use sim_sqs::Sqs;
use simworld::{Blob, Consistency, LatencyModel, Op, SimConfig, SimDuration, SimWorld};
use workloads::{Combined, LinuxCompile};

/// Results of all five ablations, with rendered text.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AblationResults {
    /// `(same-content overwrites, token collisions with nonce, without)`.
    pub nonce: (u32, u32, u32),
    /// Per threshold: `(threshold, daemon poll ops, mean WAL depth)`.
    pub commit_threshold: Vec<(usize, u64, f64)>,
    /// Per env-size range: `(max env bytes, overflow records, prov ops)`.
    pub overflow_pressure: Vec<(usize, u64, u64)>,
    /// Per visibility timeout: `(timeout secs, deliveries, unique)`.
    pub visibility: Vec<(u64, u64, u64)>,
    /// Per replication lag: `(lag ms, mean read retries)`.
    pub lag_retries: Vec<(u64, f64)>,
}

impl AblationResults {
    /// Renders every ablation as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Ablation 1: consistency token vs same-content overwrites\n");
        let (pairs, with_nonce, without) = self.nonce;
        out.push_str(&format!(
            "  {pairs} same-content overwrites: {with_nonce} collisions with nonce, \
             {without} without (undetectable)\n",
        ));
        out.push_str("\nAblation 2: commit threshold vs polling cost and backlog\n");
        for (threshold, polls, depth) in &self.commit_threshold {
            out.push_str(&format!(
                "  threshold {threshold:>4}: {polls:>6} daemon ops, mean WAL depth {depth:.1}\n"
            ));
        }
        out.push_str("\nAblation 3: environment size vs overflow pressure (arch 2)\n");
        for (env, overflow, ops) in &self.overflow_pressure {
            out.push_str(&format!(
                "  env ≤ {env:>5}B: {overflow:>5} records >1KB, {ops:>7} persist ops\n"
            ));
        }
        out.push_str("\nAblation 4: visibility timeout vs duplicate deliveries\n");
        for (timeout, deliveries, unique) in &self.visibility {
            out.push_str(&format!(
                "  timeout {timeout:>4}s: {deliveries:>5} deliveries of {unique} messages \
                 ({:.2}x)\n",
                *deliveries as f64 / (*unique).max(1) as f64
            ));
        }
        out.push_str("\nAblation 5: replication lag vs read retries (arch 2)\n");
        for (lag, retries) in &self.lag_retries {
            out.push_str(&format!(
                "  lag {lag:>5}ms: mean {retries:.2} retries per read\n"
            ));
        }
        out
    }
}

/// Runs all five ablations at a small, fixed scale.
///
/// # Errors
///
/// Service errors.
pub fn ablations(seed: u64) -> Result<AblationResults> {
    Ok(AblationResults {
        nonce: nonce_ablation(seed)?,
        commit_threshold: commit_threshold_ablation(seed)?,
        overflow_pressure: overflow_pressure_ablation(seed)?,
        visibility: visibility_ablation(seed)?,
        lag_retries: lag_retries_ablation(seed)?,
    })
}

/// Same-content overwrites: how often do consecutive versions produce
/// identical consistency tokens?
fn nonce_ablation(seed: u64) -> Result<(u32, u32, u32)> {
    let pairs = 32u32;
    let mut collide_with = 0;
    let mut collide_without = 0;
    for use_nonce in [true, false] {
        let world = SimWorld::counting();
        let mut store = S3SimpleDb::new(&world);
        store.set_config(provenance_cloud::Arch2Config {
            use_nonce,
            ..provenance_cloud::Arch2Config::default()
        });
        for i in 0..pairs {
            let name = format!("f{i}");
            // Overwrite with the *same* content (the paper's hard case).
            let content = Blob::synthetic(seed ^ u64::from(i), 512);
            store.persist(
                &FileFlush::builder(&name)
                    .version(1)
                    .data(content.clone())
                    .build(),
            )?;
            store.persist(&FileFlush::builder(&name).version(2).data(content).build())?;
            let token = |version: u32| -> String {
                store
                    .simpledb()
                    .latest_item("provenance", &format!("{name} {version}"))
                    .expect("item stored")
                    .into_iter()
                    .find(|a| a.name == "md5")
                    .expect("md5 attribute")
                    .value
            };
            if token(1) == token(2) {
                if use_nonce {
                    collide_with += 1;
                } else {
                    collide_without += 1;
                }
            }
        }
    }
    Ok((pairs, collide_with, collide_without))
}

/// Sweep the daemon's commit threshold; measure polling cost and mean
/// backlog.
fn commit_threshold_ablation(_seed: u64) -> Result<Vec<(usize, u64, f64)>> {
    let mut rows = Vec::new();
    for threshold in [0usize, 2, 8, 32, 128] {
        let world = SimWorld::counting();
        let mut store = S3SimpleDbSqs::new(&world, "ablate");
        let config = Arch3Config {
            commit_threshold: threshold,
            ..Arch3Config::default()
        };
        store.set_config(config);
        let before = world.meters();
        let mut depth_sum = 0usize;
        let flushes: u32 = 120;
        for i in 0..flushes {
            let flush = FileFlush::builder(format!("f{i:03}"))
                .data(Blob::synthetic(u64::from(i), 2048))
                .build();
            store.persist(&flush)?;
            store.poll_daemon()?;
            depth_sum += store.wal_depth_exact();
        }
        let delta = world.meters() - before;
        let daemon_ops = delta.op_count(Op::SqsGetQueueAttributes)
            + delta.op_count(Op::SqsReceiveMessage)
            + delta.op_count(Op::SqsDeleteMessage);
        rows.push((threshold, daemon_ops, depth_sum as f64 / f64::from(flushes)));
        // Leave the store clean so nothing dangles between runs.
        store.run_daemons_until_idle()?;
    }
    Ok(rows)
}

/// Sweep the environment-size distribution and measure overflow
/// pressure on Architecture 2.
fn overflow_pressure_ablation(_seed: u64) -> Result<Vec<(usize, u64, u64)>> {
    let mut rows = Vec::new();
    for (lo, hi) in [(200usize, 600usize), (700, 2_200), (2_000, 4_800)] {
        let dataset = Combined {
            seed: 7,
            compile: LinuxCompile {
                env_size: (lo, hi),
                ..LinuxCompile::default().scaled(0.2)
            },
            blast: workloads::Blast {
                env_size: (lo, hi),
                db_fragment_size: 1 << 20,
                ..workloads::Blast::default().scaled(0.2)
            },
            challenge: workloads::ProvenanceChallenge {
                env_size: (lo, hi),
                image_size: 64 * 1024,
                ..workloads::ProvenanceChallenge::default().scaled(0.2)
            },
        };
        let persisted = crate::harness::persist_dataset(ArchKind::S3SimpleDb, &dataset)?;
        rows.push((
            hi,
            persisted.stats.records_over_1kb,
            persisted.persist_meters.total_ops(),
        ));
    }
    Ok(rows)
}

/// Sweep the visibility timeout against a deliberately slow, pipelined
/// consumer: it fetches the next batch before deleting the previous one,
/// so when processing outlasts the timeout the undeleted messages are
/// redelivered.
fn visibility_ablation(seed: u64) -> Result<Vec<(u64, u64, u64)>> {
    let mut rows = Vec::new();
    let unique = 40u64;
    for timeout_secs in [5u64, 30, 120] {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        });
        let sqs = Sqs::new(&world);
        let url = sqs.create_queue("ablate-visibility");
        sqs.set_visibility_timeout(&url, SimDuration::from_secs(timeout_secs))
            .expect("queue exists");
        for i in 0..unique {
            sqs.send_message(&url, format!("m{i}")).expect("fits");
        }
        let mut deliveries = 0u64;
        let mut pending: Vec<sim_sqs::ReceivedMessage> = Vec::new();
        let mut idle = 0;
        while idle < 60 {
            let batch = sqs.receive_message(&url, 10).expect("queue exists");
            deliveries += batch.len() as u64;
            // Finish (delete) the PREVIOUS batch only now — its
            // processing took 10 simulated seconds.
            for msg in pending.drain(..) {
                sqs.delete_message(&url, &msg.receipt_handle)
                    .expect("handle valid");
            }
            if batch.is_empty() && sqs.exact_message_count(&url) == 0 {
                break;
            }
            if batch.is_empty() {
                idle += 1;
            } else {
                idle = 0;
            }
            world.advance(SimDuration::from_secs(10)); // slow processing
            pending = batch;
        }
        for msg in pending {
            sqs.delete_message(&url, &msg.receipt_handle)
                .expect("handle valid");
        }
        rows.push((timeout_secs, deliveries, unique));
    }
    Ok(rows)
}

/// Sweep replica lag; measure how many retries the §4.2 read loop
/// needs.
fn lag_retries_ablation(seed: u64) -> Result<Vec<(u64, f64)>> {
    let mut rows = Vec::new();
    for lag_ms in [0u64, 200, 1_000, 5_000] {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::eventual(SimDuration::from_millis(lag_ms)),
            latency: LatencyModel::zero(),
            replicas: 3,
        });
        let mut store = S3SimpleDb::new(&world);
        store.set_config(provenance_cloud::Arch2Config {
            retry: RetryPolicy::flat(500, SimDuration::from_millis(50)),
            ..provenance_cloud::Arch2Config::default()
        });
        let reads = 24u32;
        let mut total_retries = 0u64;
        for i in 0..reads {
            let name = format!("f{i}");
            let flush = FileFlush::builder(&name)
                .data(Blob::synthetic(u64::from(i), 4096))
                .build();
            store.persist(&flush)?;
            // Read immediately, mid-propagation.
            match store.read(&name)?.status {
                ReadStatus::VerifiedConsistent { retries } => total_retries += u64::from(retries),
                other => panic!("expected convergence, got {other}"),
            }
        }
        rows.push((lag_ms, total_retries as f64 / f64::from(reads)));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonce_ablation_shows_the_papers_remark() {
        let (pairs, with_nonce, without) = nonce_ablation(3).unwrap();
        assert_eq!(with_nonce, 0, "nonce makes every overwrite distinguishable");
        assert_eq!(
            without, pairs,
            "bare MD5 collides on every same-content overwrite"
        );
    }

    #[test]
    fn higher_threshold_fewer_daemon_ops_more_backlog() {
        let rows = commit_threshold_ablation(1).unwrap();
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(
            last.1 <= first.1,
            "polling work must not grow with the threshold"
        );
        assert!(last.2 > first.2, "backlog grows with the threshold");
    }

    #[test]
    fn bigger_envs_more_overflow() {
        let rows = overflow_pressure_ablation(1).unwrap();
        assert!(rows[0].1 < rows[2].1, "overflow records grow with env size");
    }

    #[test]
    fn short_visibility_timeouts_cause_duplicates() {
        let rows = visibility_ablation(5).unwrap();
        let short = &rows[0];
        let long = &rows[rows.len() - 1];
        assert!(
            short.1 > short.2,
            "5s timeout + 10s processing → redeliveries"
        );
        assert_eq!(
            long.1, long.2,
            "120s timeout → every message delivered once"
        );
        assert!(
            short.1 > long.1,
            "shorter timeout → strictly more deliveries"
        );
    }

    #[test]
    fn retries_grow_with_lag() {
        let rows = lag_retries_ablation(7).unwrap();
        assert_eq!(rows[0].1, 0.0, "no lag → no retries");
        assert!(rows[rows.len() - 1].1 > rows[0].1);
    }
}

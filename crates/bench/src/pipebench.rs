//! Pipelined vs synchronous persist experiments: the in-flight depth
//! sweep behind the event-driven completion scheduler.
//!
//! The batched path (PR 4) cut round trips; this sweep cuts *waiting*.
//! The same flush groups drive `ProvenanceStore::persist_pipelined`
//! with up to `depth` requests per service in flight: completion time
//! follows the scheduler's event order (`max(channel-free, issue) +
//! latency`) instead of the serial latency sum, so virtual completion
//! time falls as the depth rises while the request *count* — and every
//! byte of the final store — stays identical. Depth 0 denotes the
//! synchronous batch baseline (`persist_batch`, one group at a time).
//!
//! Issue order is identical on every row, so the seeded RNG stream —
//! and therefore the final store state and provenance graph — is
//! bit-identical across the whole sweep; the smoke mode asserts that
//! along with the speedup.

use pass::FileFlush;
use provenance_cloud::{ArchKind, ProvGraph, ProvQuery, Result};
use workloads::Combined;

use crate::batchbench::priced_world;

/// The in-flight depths the sweep visits (0 = synchronous baseline).
pub const DEFAULT_DEPTHS: &[usize] = &[0, 1, 2, 4, 8];

/// Flushes per group in the sweep (the full SimpleDB batch fill).
pub const DEFAULT_PIPELINE_GROUP: usize = 25;

/// One row of the in-flight depth sweep.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// Requests in flight per service (0 = synchronous batch baseline).
    pub depth: usize,
    /// Total billable requests of the persist phase (client + daemons)
    /// — identical on every row, or pipelining changed semantics.
    pub requests: u64,
    /// Virtual seconds the persist phase consumed.
    pub virtual_secs: f64,
    /// Provenance graph size, for cross-row equality checks.
    pub graph_nodes: u64,
}

/// Splits `flushes` into persist groups of `group_size` — the same
/// grouping on every row, so only the overlap differs.
fn grouped(flushes: &[FileFlush], group_size: usize) -> Vec<Vec<FileFlush>> {
    flushes
        .chunks(group_size.max(1))
        .map(<[FileFlush]>::to_vec)
        .collect()
}

/// Persists `dataset` into a fresh `kind` store — synchronously when
/// `depth == 0`, with `depth` requests per service in flight otherwise
/// — and returns the sweep row plus the final provenance graph.
///
/// # Errors
///
/// Propagates service errors.
pub fn persist_at_depth(
    kind: ArchKind,
    dataset: &Combined,
    group_size: usize,
    depth: usize,
) -> Result<(PipelineRow, ProvGraph)> {
    let world = priced_world();
    let mut store = kind.build(&world);
    let (flushes, _) = dataset.flushes();
    let groups = grouped(&flushes, group_size);
    let before_meters = world.meters();
    let before_clock = world.now();
    if depth == 0 {
        for group in &groups {
            store.persist_batch(group)?;
        }
    } else {
        store.persist_pipelined(&groups, depth)?;
    }
    store.run_daemons_until_idle()?;
    let meters = world.meters() - before_meters;
    let virtual_secs = (world.now() - before_clock).as_secs_f64();
    world.settle();
    let graph = ProvGraph::from_answer(&store.query(&ProvQuery::ProvenanceOfAll)?);
    Ok((
        PipelineRow {
            depth,
            requests: meters.total_ops(),
            virtual_secs,
            graph_nodes: graph.len() as u64,
        },
        graph,
    ))
}

/// Runs the depth sweep for one architecture. The returned graphs must
/// be pairwise identical — pipelining changes *when* requests complete,
/// never *what* the store holds.
///
/// # Errors
///
/// Propagates service errors.
pub fn pipeline_sweep(
    kind: ArchKind,
    dataset: &Combined,
    group_size: usize,
    depths: &[usize],
) -> Result<(Vec<PipelineRow>, Vec<ProvGraph>)> {
    let mut rows = Vec::with_capacity(depths.len());
    let mut graphs = Vec::with_capacity(depths.len());
    for &depth in depths {
        let (row, graph) = persist_at_depth(kind, dataset, group_size, depth)?;
        rows.push(row);
        graphs.push(graph);
    }
    Ok((rows, graphs))
}

/// Renders the sweep with a virtual-time speedup column against the
/// synchronous (depth 0) baseline row.
pub fn render_pipeline(kind: ArchKind, rows: &[PipelineRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "In-flight depth sweep — {} pipelined persist, combined workload, groups of {}\n",
        kind.label(),
        DEFAULT_PIPELINE_GROUP
    ));
    out.push_str("depth | requests | virt (s) | time speedup | graph\n");
    out.push_str("------|----------|----------|--------------|------\n");
    let base_virt = rows.first().map(|r| r.virtual_secs).unwrap_or(1.0);
    for r in rows {
        let depth = if r.depth == 0 {
            "sync".to_string()
        } else {
            r.depth.to_string()
        };
        out.push_str(&format!(
            "{depth:>5} | {:>8} | {:>8.2} | {:>11.2}x | {:>5}\n",
            r.requests,
            r.virtual_secs,
            base_virt / r.virtual_secs.max(f64::EPSILON),
            r.graph_nodes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_sweep_matches_sync_state_and_cuts_time() {
        let dataset = Combined::small();
        for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
            let (rows, graphs) =
                pipeline_sweep(kind, &dataset, DEFAULT_PIPELINE_GROUP, &[0, 1, 4]).unwrap();
            assert!(
                graphs.windows(2).all(|w| w[0].diff(&w[1]).is_empty()),
                "{kind:?}: pipelining changed the provenance graph"
            );
            assert!(
                rows.windows(2).all(|w| w[0].requests == w[1].requests),
                "{kind:?}: pipelining must not change the request count: {rows:?}"
            );
            assert!(
                rows.windows(2)
                    .all(|w| w[1].virtual_secs < w[0].virtual_secs),
                "{kind:?}: deeper pipelines must finish sooner: {rows:?}"
            );
        }
    }

    #[test]
    fn grouping_is_stable() {
        let (flushes, _) = Combined::small().flushes();
        let groups = grouped(&flushes, 25);
        assert_eq!(
            groups.iter().map(Vec::len).sum::<usize>(),
            flushes.len(),
            "grouping must partition the flush stream"
        );
        assert!(groups[..groups.len() - 1].iter().all(|g| g.len() == 25));
    }
}

//! Pipelined vs synchronous persist experiments: the in-flight depth
//! sweep behind the event-driven completion scheduler.
//!
//! The batched path (PR 4) cut round trips; this sweep cuts *waiting*.
//! The same flush groups drive `ProvenanceStore::persist_pipelined`
//! with up to `depth` requests per service in flight: completion time
//! follows the scheduler's event order (`max(channel-free, issue) +
//! latency`) instead of the serial latency sum, so virtual completion
//! time falls as the depth rises while the final store stays identical.
//! [`DepthSpec::Sync`] denotes the synchronous batch baseline
//! (`persist_batch`, one group at a time, serial commit daemon).
//!
//! On Architecture 3 the depth applies to *both* ends of the WAL: the
//! client's persist pipeline and the commit daemon's
//! receive/assemble/apply loop ([`DaemonDepth`]), so the sweep measures
//! true end-to-end time instead of plateauing on a serial daemon.
//! [`DepthSpec::Adaptive`] replaces the hand-tuned depth with the AIMD
//! [`AdaptiveDepth`] controller on both ends.
//!
//! Request *issue order* within each service is identical on every row,
//! and the stores' protocols are order-insensitive at the points where
//! daemon scheduling may differ (SimpleDB attribute adds are
//! set-semantics, copies land whole objects keyed by txid), so the
//! final store state and provenance graph are identical across the
//! whole sweep; the smoke mode asserts that along with the speedup.

use std::fmt;

use pass::FileFlush;
use provenance_cloud::{
    persist_groups_adaptive, Arch3Config, ArchKind, DaemonDepth, ProvGraph, ProvQuery,
    ProvenanceStore, Result, S3SimpleDbSqs,
};
use simworld::AdaptiveDepth;
use workloads::Combined;

use crate::batchbench::priced_world;

/// How one sweep row sizes its in-flight window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DepthSpec {
    /// Synchronous batch baseline: no pipeline, serial commit daemon.
    Sync,
    /// A fixed `max_in_flight` per service, client and daemon alike.
    Fixed(usize),
    /// AIMD-controlled depth ([`AdaptiveDepth`]) on client and daemon.
    Adaptive,
}

impl fmt::Display for DepthSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepthSpec::Sync => f.write_str("sync"),
            DepthSpec::Fixed(d) => write!(f, "{d}"),
            DepthSpec::Adaptive => f.write_str("adapt"),
        }
    }
}

/// The specs the sweep visits by default.
pub const DEFAULT_SPECS: &[DepthSpec] = &[
    DepthSpec::Sync,
    DepthSpec::Fixed(1),
    DepthSpec::Fixed(2),
    DepthSpec::Fixed(4),
    DepthSpec::Fixed(8),
    DepthSpec::Adaptive,
];

/// Flushes per group in the sweep (the full SimpleDB batch fill).
pub const DEFAULT_PIPELINE_GROUP: usize = 25;

/// One row of the in-flight depth sweep.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// How this row sized its window.
    pub spec: DepthSpec,
    /// Total billable requests of the persist phase (client + daemons).
    /// Identical across rows on daemon-less architectures; on arch3 the
    /// pipelined daemon re-cuts its receive rounds, so only the applied
    /// *state* is invariant, not the polling bill.
    pub requests: u64,
    /// Virtual seconds the persist phase consumed.
    pub virtual_secs: f64,
    /// Provenance graph size, for cross-row equality checks.
    pub graph_nodes: u64,
    /// The depth the adaptive controller converged to (client side);
    /// `None` on sync/fixed rows.
    pub final_depth: Option<usize>,
}

/// Splits `flushes` into persist groups of `group_size` — the same
/// grouping on every row, so only the overlap differs.
fn grouped(flushes: &[FileFlush], group_size: usize) -> Vec<Vec<FileFlush>> {
    flushes
        .chunks(group_size.max(1))
        .map(<[FileFlush]>::to_vec)
        .collect()
}

/// Builds the store for one row. Architecture 3 gets its commit daemon
/// depth wired to the spec; the other architectures have no daemon to
/// pipeline.
fn build_store(
    kind: ArchKind,
    world: &simworld::SimWorld,
    spec: DepthSpec,
) -> Box<dyn ProvenanceStore> {
    if kind == ArchKind::S3SimpleDbSqs {
        let mut store = S3SimpleDbSqs::new(world, "prop-client");
        store.set_config(Arch3Config {
            daemon_depth: match spec {
                DepthSpec::Sync => DaemonDepth::Serial,
                DepthSpec::Fixed(d) => DaemonDepth::Fixed(d),
                DepthSpec::Adaptive => DaemonDepth::Adaptive,
            },
            ..Arch3Config::default()
        });
        Box::new(store)
    } else {
        kind.build(world)
    }
}

/// Persists `dataset` into a fresh `kind` store under `spec` —
/// synchronously, at a fixed in-flight depth, or adaptively — and
/// returns the sweep row plus the final provenance graph.
///
/// # Errors
///
/// Propagates service errors.
pub fn persist_with_spec(
    kind: ArchKind,
    dataset: &Combined,
    group_size: usize,
    spec: DepthSpec,
) -> Result<(PipelineRow, ProvGraph)> {
    let world = priced_world();
    let mut store = build_store(kind, &world, spec);
    let (flushes, _) = dataset.flushes();
    let groups = grouped(&flushes, group_size);
    let before_meters = world.meters();
    let before_clock = world.now();
    let final_depth = match spec {
        DepthSpec::Sync => {
            for group in &groups {
                store.persist_batch(group)?;
            }
            None
        }
        DepthSpec::Fixed(depth) => {
            store.persist_pipelined(&groups, depth)?;
            None
        }
        DepthSpec::Adaptive => {
            let mut ctl = AdaptiveDepth::new();
            persist_groups_adaptive(&world, store.as_mut(), &groups, &mut ctl)?;
            Some(ctl.depth())
        }
    };
    store.run_daemons_until_idle()?;
    let meters = world.meters() - before_meters;
    let virtual_secs = (world.now() - before_clock).as_secs_f64();
    world.settle();
    let graph = ProvGraph::from_answer(&store.query(&ProvQuery::ProvenanceOfAll)?);
    Ok((
        PipelineRow {
            spec,
            requests: meters.total_ops(),
            virtual_secs,
            graph_nodes: graph.len() as u64,
            final_depth,
        },
        graph,
    ))
}

/// Runs the depth sweep for one architecture. The returned graphs must
/// be pairwise identical — pipelining changes *when* requests complete,
/// never *what* the store holds.
///
/// # Errors
///
/// Propagates service errors.
pub fn pipeline_sweep(
    kind: ArchKind,
    dataset: &Combined,
    group_size: usize,
    specs: &[DepthSpec],
) -> Result<(Vec<PipelineRow>, Vec<ProvGraph>)> {
    let mut rows = Vec::with_capacity(specs.len());
    let mut graphs = Vec::with_capacity(specs.len());
    for &spec in specs {
        let (row, graph) = persist_with_spec(kind, dataset, group_size, spec)?;
        rows.push(row);
        graphs.push(graph);
    }
    Ok((rows, graphs))
}

/// Renders the sweep with a virtual-time speedup column against the
/// synchronous baseline row.
pub fn render_pipeline(kind: ArchKind, rows: &[PipelineRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "In-flight depth sweep — {} pipelined persist, combined workload, groups of {}\n",
        kind.label(),
        DEFAULT_PIPELINE_GROUP
    ));
    out.push_str("depth | requests | virt (s) | time speedup | graph\n");
    out.push_str("------|----------|----------|--------------|------\n");
    let base_virt = rows.first().map(|r| r.virtual_secs).unwrap_or(1.0);
    for r in rows {
        out.push_str(&format!(
            "{:>5} | {:>8} | {:>8.2} | {:>11.2}x | {:>5}\n",
            r.spec.to_string(),
            r.requests,
            r.virtual_secs,
            base_virt / r.virtual_secs.max(f64::EPSILON),
            r.graph_nodes,
        ));
    }
    if let Some(depth) = rows.iter().find_map(|r| r.final_depth) {
        out.push_str(&format!("adaptive controller converged at depth {depth}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_sweep_matches_sync_state_and_cuts_time() {
        let dataset = Combined::small();
        let specs = [
            DepthSpec::Sync,
            DepthSpec::Fixed(1),
            DepthSpec::Fixed(4),
            DepthSpec::Adaptive,
        ];
        for kind in [ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs] {
            let (rows, graphs) =
                pipeline_sweep(kind, &dataset, DEFAULT_PIPELINE_GROUP, &specs).unwrap();
            assert!(
                graphs.windows(2).all(|w| w[0].diff(&w[1]).is_empty()),
                "{kind:?}: pipelining changed the provenance graph"
            );
            if kind == ArchKind::S3SimpleDb {
                // No daemon: pipelining must not change the bill at all.
                assert!(
                    rows.windows(2).all(|w| w[0].requests == w[1].requests),
                    "{kind:?}: pipelining must not change the request count: {rows:?}"
                );
            }
            let fixed: Vec<&PipelineRow> = rows[..3].iter().collect();
            assert!(
                fixed
                    .windows(2)
                    .all(|w| w[1].virtual_secs < w[0].virtual_secs),
                "{kind:?}: deeper pipelines must finish sooner: {rows:?}"
            );
            let adaptive = rows.last().unwrap();
            assert!(
                adaptive.virtual_secs < rows[0].virtual_secs,
                "{kind:?}: the adaptive row must beat the synchronous baseline: {rows:?}"
            );
            assert!(adaptive.final_depth.is_some());
        }
    }

    #[test]
    fn grouping_is_stable() {
        let (flushes, _) = Combined::small().flushes();
        let groups = grouped(&flushes, 25);
        assert_eq!(
            groups.iter().map(Vec::len).sum::<usize>(),
            flushes.len(),
            "grouping must partition the flush stream"
        );
        assert!(groups[..groups.len() - 1].iter().all(|g| g.len() == 25));
    }
}

//! Shared experiment plumbing: scales, dataset persistence, meter
//! bracketing, and the percentile table every latency bench prints.

use provenance_cloud::{ArchKind, ProvenanceStore, Result};
use sim_s3::{Metadata, S3};
use simworld::{
    format_bytes, percentiles, LatencySample, MeterSnapshot, Percentiles, Service, SimDuration,
    SimWorld,
};
use workloads::{Combined, DatasetStats};

/// Dataset scale selection for the table binaries.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Unit-test size (seconds).
    Small,
    /// Default experiment size (tens of seconds).
    Medium,
    /// Calibrated toward the paper's absolute dataset (~1.27 GB raw).
    Paper,
}

impl Scale {
    /// The dataset configuration for this scale.
    pub fn dataset(self) -> Combined {
        match self {
            Scale::Small => Combined::small(),
            Scale::Medium => Combined::medium(),
            Scale::Paper => Combined::paper(),
        }
    }
}

/// Parses `--scale=small|medium|paper` from argv (default medium).
pub fn parse_scale(args: &[String]) -> Scale {
    for arg in args {
        if let Some(v) = arg.strip_prefix("--scale=") {
            return match v {
                "small" => Scale::Small,
                "medium" => Scale::Medium,
                "paper" => Scale::Paper,
                other => {
                    eprintln!("unknown scale {other:?}; using medium");
                    Scale::Medium
                }
            };
        }
    }
    Scale::Medium
}

/// A store with a dataset persisted into it, plus the meters the persist
/// phase consumed.
pub struct PersistedStore {
    /// The store, ready for reads/queries.
    pub store: Box<dyn ProvenanceStore>,
    /// Its world (for settling / further metering).
    pub world: SimWorld,
    /// Meter delta of the persist phase (client + daemons).
    pub persist_meters: MeterSnapshot,
    /// Dataset statistics (the Raw column).
    pub stats: DatasetStats,
}

impl std::fmt::Debug for PersistedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistedStore")
            .field("architecture", &self.store.architecture())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Persists the combined dataset into a fresh store of `kind` on a
/// zero-latency, strongly-consistent world (pure op counting, like the
/// paper's estimates).
///
/// # Errors
///
/// Propagates service errors.
pub fn persist_dataset(kind: ArchKind, dataset: &Combined) -> Result<PersistedStore> {
    persist_dataset_sharded(kind, dataset, sim_simpledb::DEFAULT_SHARDS)
}

/// [`persist_dataset`] with an explicit SimpleDB shard count — the entry
/// point of the shard-scaling experiments.
///
/// # Errors
///
/// Propagates service errors.
pub fn persist_dataset_sharded(
    kind: ArchKind,
    dataset: &Combined,
    shards: usize,
) -> Result<PersistedStore> {
    let world = SimWorld::counting();
    let mut store = kind.build_with_shards(&world, shards);
    let (flushes, stats) = dataset.flushes();
    let before = world.meters();
    for flush in &flushes {
        store.persist(flush)?;
    }
    store.run_daemons_until_idle()?;
    let persist_meters = world.meters() - before;
    world.settle();
    Ok(PersistedStore {
        store,
        world,
        persist_meters,
        stats,
    })
}

/// The provenance-free baseline: raw data PUT straight into S3 (the
/// paper's "Raw" column). Returns the meter delta.
///
/// # Errors
///
/// Propagates S3 errors.
pub fn persist_raw_baseline(dataset: &Combined) -> Result<(MeterSnapshot, DatasetStats)> {
    let world = SimWorld::counting();
    let s3 = S3::new(&world);
    s3.create_bucket("raw")?;
    let (flushes, stats) = dataset.flushes();
    let before = world.meters(); // bucket creation excluded from the baseline
    for flush in &flushes {
        if flush.kind == pass::ObjectKind::File {
            s3.put_object(
                "raw",
                &flush.object.name,
                flush.data.clone(),
                Metadata::new(),
            )?;
        }
    }
    Ok((world.meters() - before, stats))
}

/// Reduces a per-request sample log to `(service, percentiles)` rows.
/// Only services that recorded samples appear, in [`Service::ALL`]
/// order.
pub fn per_service_percentiles(samples: &[LatencySample]) -> Vec<(Service, Percentiles)> {
    let mut out = Vec::new();
    for service in Service::ALL {
        let lat: Vec<_> = samples
            .iter()
            .filter(|s| s.service() == service)
            .map(|s| s.latency())
            .collect();
        if let Some(p) = percentiles(lat) {
            out.push((service, p));
        }
    }
    out
}

/// Exact percentiles over every sample in the log.
pub fn overall_percentiles(samples: &[LatencySample]) -> Option<Percentiles> {
    percentiles(samples.iter().map(|s| s.latency()).collect())
}

/// Renders labelled percentile rows as the latency table every bench
/// prints (`<heading> | samples | p50 | p99 | p999 | max`, in
/// milliseconds). The virtual-time fleet bench and the wall-clock
/// loadgen both go through this, so their tables line up column for
/// column.
pub fn render_percentile_rows(heading: &str, rows: &[(String, Percentiles)]) -> String {
    let ms = |d: SimDuration| d.as_micros() as f64 / 1_000.0;
    let mut out = String::new();
    out.push_str(&format!(
        "{heading:<8} | samples |  p50 ms |  p99 ms | p999 ms |  max ms\n"
    ));
    out.push_str("---------|---------|---------|---------|---------|--------\n");
    for (label, p) in rows {
        out.push_str(&format!(
            "{label:<8} | {:>7} | {:>7.2} | {:>7.2} | {:>7.2} | {:>7.2}\n",
            p.count,
            ms(p.p50),
            ms(p.p99),
            ms(p.p999),
            ms(p.max),
        ));
    }
    out
}

/// `value/base` rendered like the paper's bracketed multipliers
/// (`5.4x`).
pub fn ratio(value: u64, base: u64) -> String {
    if base == 0 {
        return "-".to_string();
    }
    format!("{:.2}x", value as f64 / base as f64)
}

/// `part/whole` rendered like the paper's bracketed percentages
/// (`9.3%`).
pub fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".to_string();
    }
    format!("{:.1}%", part as f64 / whole as f64 * 100.0)
}

/// Bytes rendered the paper's way.
pub fn bytes(n: u64) -> String {
    format_bytes(n)
}

/// Thousands separators for op counts (`231,287`).
pub fn count(n: u64) -> String {
    let raw = n.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |s: &str| vec![format!("--scale={s}")];
        assert_eq!(parse_scale(&args("small")), Scale::Small);
        assert_eq!(parse_scale(&args("paper")), Scale::Paper);
        assert_eq!(parse_scale(&args("bogus")), Scale::Medium);
        assert_eq!(parse_scale(&[]), Scale::Medium);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(count(231287), "231,287");
        assert_eq!(count(7), "7");
        assert_eq!(count(1000), "1,000");
        assert_eq!(ratio(540, 100), "5.40x");
        assert_eq!(ratio(5, 0), "-");
        assert_eq!(percent(93, 1000), "9.3%");
        assert_eq!(percent(1, 0), "-");
    }

    #[test]
    fn percentile_reduction_groups_by_service() {
        use simworld::{Op, SimInstant};
        let sample = |op: Op, micros: u64| LatencySample {
            op,
            tenant: 0,
            issued_at: SimInstant::EPOCH,
            completed_at: SimInstant::from_micros(micros),
        };
        let samples = vec![
            sample(Op::S3Put, 1_000),
            sample(Op::S3Put, 3_000),
            sample(Op::SdbPutAttributes, 2_000),
        ];
        let per_service = per_service_percentiles(&samples);
        assert_eq!(per_service.len(), 2, "only sampled services appear");
        assert_eq!(per_service[0].0, Service::S3);
        assert_eq!(per_service[0].1.count, 2);
        assert_eq!(per_service[0].1.max, SimDuration::from_micros(3_000));
        let overall = overall_percentiles(&samples).unwrap();
        assert_eq!(overall.count, 3);

        let rows: Vec<(String, Percentiles)> = per_service
            .iter()
            .map(|(s, p)| (format!("{s:?}"), *p))
            .collect();
        let table = render_percentile_rows("service", &rows);
        assert!(table.starts_with("service  | samples |"));
        assert!(table.contains("S3       |       2 |"));
    }

    #[test]
    fn raw_baseline_counts_only_files() {
        let dataset = Combined::small();
        let (meters, stats) = persist_raw_baseline(&dataset).unwrap();
        assert_eq!(meters.op_count(simworld::Op::S3Put), stats.file_versions);
        assert_eq!(meters.bytes_in(), stats.raw_data_bytes);
    }

    #[test]
    fn persist_dataset_records_meters() {
        let dataset = Combined::small();
        let persisted = persist_dataset(ArchKind::S3, &dataset).unwrap();
        assert!(persisted.persist_meters.total_ops() >= persisted.stats.file_versions);
    }
}

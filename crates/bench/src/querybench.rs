//! Query-scaling sweep: the SimpleDB walk engine vs the materialized
//! closure index, on corpora from 50 to 2000 churn chains.
//!
//! Two Q3 targets separate the regimes:
//!
//! * `blastall` — a fixed two-item answer no matter how large the
//!   corpus grows. The walk pays O(domain rows) per query page, so its
//!   cost climbs with the corpus; the index pays a handful of point
//!   reads sized by the answer, so its curve stays flat.
//! * `churn` — the bulk target whose seed set grows with the corpus.
//!   Both engines scale here, but the index scales with the *answer*
//!   (one point read per seed) while the walk re-scans the domain on
//!   every union page.
//!
//! Each corpus size runs twice — closure maintenance off (`walk` leg)
//! and on (`index` leg) — so the sweep also measures what the index
//! costs at persist time and proves the data + provenance stores are
//! byte-identical either way.

use pass::{FileFlush, Observer, TraceEvent};
use provenance_cloud::layout::{BUCKET, DOMAIN};
use provenance_cloud::{Arch2Config, ClosureMode, ProvQuery, ProvenanceStore, Result, S3SimpleDb};
use simworld::{Blob, Consistency, LatencyModel, SimConfig, SimWorld};

use crate::harness::count;
use crate::shardbench::domain_fingerprint;

/// Corpus sizes of the full sweep (`--smoke` runs the same list; the
/// whole sweep is seconds-scale because the world is simulated).
pub const DEFAULT_QUERY_CHAINS: &[u32] = &[50, 200, 500, 2000];

/// Builds the query corpus: `chains` one-tool pipelines
/// (`raw/i.dat -> churn -> cooked/i.dat`) plus one blast pipeline
/// (`q.fa -> blastall -> hits.out -> fmtblast -> report.txt`) whose
/// descendant set stays fixed at two items as the corpus grows.
pub fn query_corpus(chains: u32) -> Vec<FileFlush> {
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    for i in 0..chains {
        let pid = i + 1;
        let src = format!("raw/{i}.dat");
        let out = format!("cooked/{i}.dat");
        for ev in [
            TraceEvent::source(&src, Blob::synthetic(u64::from(i), 1024)),
            TraceEvent::exec(pid, "churn", "churn", "E=1", None),
            TraceEvent::read(pid, &src),
            TraceEvent::write(pid, &out),
            TraceEvent::close(pid, &out, Blob::synthetic(u64::from(i) + 5000, 512)),
            TraceEvent::exit(pid),
        ] {
            flushes.extend(obs.observe(ev).expect("trace is well-formed"));
        }
    }
    let pid = chains + 1;
    for ev in [
        TraceEvent::source("q.fa", Blob::synthetic(9001, 256)),
        TraceEvent::exec(pid, "blastall", "blastall q.fa", "E=1", None),
        TraceEvent::read(pid, "q.fa"),
        TraceEvent::write(pid, "hits.out"),
        TraceEvent::close(pid, "hits.out", Blob::synthetic(9002, 2048)),
        TraceEvent::exit(pid),
    ] {
        flushes.extend(obs.observe(ev).expect("trace is well-formed"));
    }
    let pid = chains + 2;
    for ev in [
        TraceEvent::exec(pid, "fmtblast", "fmtblast hits.out", "E=1", None),
        TraceEvent::read(pid, "hits.out"),
        TraceEvent::write(pid, "report.txt"),
        TraceEvent::close(pid, "report.txt", Blob::synthetic(9003, 512)),
        TraceEvent::exit(pid),
    ] {
        flushes.extend(obs.observe(ev).expect("trace is well-formed"));
    }
    flushes
}

/// One engine leg at one corpus size.
#[derive(Clone, Debug)]
pub struct QueryScalingRow {
    /// Churn chains in the corpus.
    pub chains: u32,
    /// `"walk"` or `"index"`.
    pub engine: &'static str,
    /// Billable requests the persist phase issued (index maintenance
    /// rides here on the index leg).
    pub persist_ops: u64,
    /// Virtual time of `DescendantsOf("blastall")` in milliseconds.
    pub q3_ms: f64,
    /// Billable requests of the same query.
    pub q3_ops: u64,
    /// Its hits (fixed at 2 by construction).
    pub q3_results: u64,
    /// Virtual time of `DescendantsOf("churn")` in milliseconds.
    pub bulk_ms: f64,
    /// Billable requests of the bulk query.
    pub bulk_ops: u64,
    /// Its hits.
    pub bulk_results: u64,
}

/// What one leg converged to, for cross-leg equality checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryLegState {
    /// FNV-1a over the provenance domain's authoritative latest state.
    pub prov_fingerprint: u64,
    /// Sorted `(key, md5)` of every live data object.
    pub data: Vec<(String, String)>,
    /// Rendered hits of `DescendantsOf("blastall")`, sorted.
    pub q3_names: Vec<String>,
    /// Rendered hits of `DescendantsOf("churn")`, sorted.
    pub bulk_names: Vec<String>,
}

fn run_leg(chains: u32, mode: ClosureMode) -> Result<(QueryScalingRow, QueryLegState)> {
    let world = SimWorld::with_config(SimConfig {
        seed: 2009,
        consistency: Consistency::Strong,
        latency: LatencyModel::default(),
        replicas: 1,
    });
    let mut store = S3SimpleDb::new(&world);
    store.set_config(Arch2Config {
        closure: mode,
        ..Arch2Config::default()
    });
    let flushes = query_corpus(chains);
    let before = world.meters();
    for flush in &flushes {
        store.persist(flush)?;
    }
    let persist_ops = (world.meters() - before).total_ops();
    world.settle();

    let mut timed = |query: &ProvQuery| -> Result<(f64, u64, Vec<String>)> {
        let before = world.meters();
        let start = world.now();
        let answer = store.query(query)?;
        let ms = world.now().saturating_since(start).as_secs_f64() * 1000.0;
        let ops = (world.meters() - before).total_ops();
        Ok((ms, ops, answer.names()))
    };
    let (q3_ms, q3_ops, q3_names) = timed(&ProvQuery::DescendantsOf {
        program: "blastall".into(),
    })?;
    let (bulk_ms, bulk_ops, bulk_names) = timed(&ProvQuery::DescendantsOf {
        program: "churn".into(),
    })?;

    let s3 = store.s3();
    let mut data: Vec<(String, String)> = s3
        .latest_keys(BUCKET, "")
        .into_iter()
        .map(|key| {
            let md5 = s3
                .latest_object(BUCKET, &key)
                .map(|o| o.body.md5().to_hex())
                .unwrap_or_default();
            (key, md5)
        })
        .collect();
    data.sort();

    Ok((
        QueryScalingRow {
            chains,
            engine: if mode.serves() { "index" } else { "walk" },
            persist_ops,
            q3_ms,
            q3_ops,
            q3_results: q3_names.len() as u64,
            bulk_ms,
            bulk_ops,
            bulk_results: bulk_names.len() as u64,
        },
        QueryLegState {
            prov_fingerprint: domain_fingerprint(store.simpledb(), DOMAIN),
            data,
            q3_names,
            bulk_names,
        },
    ))
}

/// Runs walk and index legs at every corpus size. Rows come in
/// `(walk, index)` pairs per size, matching `states`.
///
/// # Errors
///
/// Propagates service errors.
pub fn query_sweep(sizes: &[u32]) -> Result<(Vec<QueryScalingRow>, Vec<QueryLegState>)> {
    let mut rows = Vec::new();
    let mut states = Vec::new();
    for &chains in sizes {
        for mode in [ClosureMode::Off, ClosureMode::Serve] {
            let (row, state) = run_leg(chains, mode)?;
            rows.push(row);
            states.push(state);
        }
    }
    Ok((rows, states))
}

/// Renders the sweep. `maintain Δops` is the extra billable requests
/// the index leg's persist phase paid over the walk leg's — the price
/// of keeping the closure current.
pub fn render_query(rows: &[QueryScalingRow]) -> String {
    let mut out = String::new();
    out.push_str("Q3 scaling: SimpleDB walk vs materialized closure index (virtual time)\n");
    out.push_str(
        " chains | engine | persist ops | maintain Δops |  q3 ms | q3 ops | q3 hits | bulk ms | bulk ops | bulk hits\n",
    );
    for pair in rows.chunks(2) {
        for row in pair {
            let delta = if row.engine == "index" {
                count(row.persist_ops.saturating_sub(pair[0].persist_ops))
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                " {:>6} | {:<6} | {:>11} | {:>13} | {:>6.1} | {:>6} | {:>7} | {:>7.1} | {:>8} | {:>9}\n",
                row.chains,
                row.engine,
                count(row.persist_ops),
                delta,
                row.q3_ms,
                count(row.q3_ops),
                row.q3_results,
                row.bulk_ms,
                count(row.bulk_ops),
                row.bulk_results,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape_is_stable() {
        let flushes = query_corpus(3);
        // 3 churn chains of 4 flushes (src, proc, out, proc-exit
        // absorbed) plus the two blast stages.
        assert!(flushes.len() > 10);
        assert!(flushes.iter().any(|f| f.object.name == "report.txt"));
    }

    #[test]
    fn walk_and_index_agree_on_a_small_corpus() {
        let (rows, states) = query_sweep(&[10]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(states[0].q3_names, states[1].q3_names);
        assert_eq!(states[0].bulk_names, states[1].bulk_names);
        assert_eq!(states[0].prov_fingerprint, states[1].prov_fingerprint);
        assert_eq!(states[0].data, states[1].data);
        assert_eq!(rows[0].q3_results, 2);
        // Maintenance is billed: the index leg pays extra persist ops.
        assert!(rows[1].persist_ops > rows[0].persist_ops);
    }

    #[test]
    fn closure_maintenance_ops_and_bill_delta_is_pinned() {
        // Persist the 50-chain corpus with closure maintenance off and
        // on, and price both phases: maintaining the index costs a
        // pinned number of extra billable requests, and those requests
        // land on the operations line of the bill.
        let mut legs = Vec::new();
        for mode in [ClosureMode::Off, ClosureMode::Maintain] {
            let world = SimWorld::with_config(SimConfig {
                seed: 2009,
                consistency: Consistency::Strong,
                latency: LatencyModel::default(),
                replicas: 1,
            });
            let mut store = S3SimpleDb::new(&world);
            store.set_config(Arch2Config {
                closure: mode,
                ..Arch2Config::default()
            });
            let before = world.meters();
            for flush in &query_corpus(50) {
                store.persist(flush).unwrap();
            }
            let phase = world.meters() - before;
            let bill = costmodel::cost_of(&phase, 0.0, &costmodel::PriceBook::january_2009());
            legs.push((phase.total_ops(), bill.operations_total()));
        }
        assert_eq!(legs[0].0, 310, "walk persist ops moved");
        assert_eq!(legs[1].0, 621, "index persist ops moved");
        assert_eq!(legs[1].0 - legs[0].0, 311, "maintenance op delta moved");
        assert!(
            legs[1].1 > legs[0].1,
            "maintenance must show up on the bill"
        );
    }
}

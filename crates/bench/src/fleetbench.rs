//! Fleet-scale multi-tenant simulation: open-loop arrivals, provider
//! throttling, and latency percentiles.
//!
//! Every earlier bench drives one client and reports totals; this one
//! drives N tenants — each with its own buckets, domains, and WAL queue
//! on one shared virtual clock — from a pre-computed open-loop arrival
//! schedule ([`workloads::fleet_schedule`]). Demand arrives on timers,
//! not think time: if the fleet falls behind, arrivals queue up and the
//! backlog shows in the tail, exactly as in a real multi-tenant cloud.
//!
//! With provider throttling enabled, every service rejects over-rate
//! writes with a 503 and the store's retry machinery backs off and
//! re-issues; the winning attempt's latency sample is backdated to the
//! first issue, so p50/p99/p999 report *client-observed* latency —
//! backoff and rejected attempts included. The invariant under test:
//! throttling moves the percentiles and the bill, never the final
//! store ([`FleetFingerprint`]).

use pass::FileFlush;
use provenance_cloud::layout::{BUCKET, DOMAIN};
use provenance_cloud::{CloudError, ProvGraph, ProvQuery, ProvenanceStore, Result, S3SimpleDbSqs};
use simworld::{
    Blob, Consistency, LatencyModel, Percentiles, Service, ShardPlan, SimConfig, SimWorld,
    SplitPolicy, ThrottleConfig,
};
use workloads::{fleet_schedule, ArrivalProcess, FleetSpec};

use crate::harness::{overall_percentiles, per_service_percentiles, render_percentile_rows};

/// Ring capacity for the per-request sample log.
const SAMPLE_CAPACITY: usize = 1 << 17;

/// One fleet scenario.
#[derive(Clone, Copy, Debug)]
pub struct FleetParams {
    /// Number of tenants; each gets its own endpoints and WAL queue.
    pub tenants: usize,
    /// Arrivals generated per tenant slot.
    pub arrivals_per_tenant: usize,
    /// Per-tenant Poisson arrival rate (requests per virtual second).
    pub rate_per_sec: f64,
    /// Shards per SimpleDB domain and S3 bucket.
    pub shards: usize,
    /// `Some(theta)` skews which tenant each arrival belongs to
    /// (Zipf, tenant 0 hottest); `None` is the uniform fleet.
    pub skew: Option<f64>,
    /// Provider-side token-bucket throttle, applied to all three
    /// services of every tenant; `None` runs unthrottled.
    pub throttle: Option<ThrottleConfig>,
    /// When `false`, the WAL queue (SQS) is exempt from `throttle`: the
    /// store-only variant the hot-shard-splitting comparison uses, so
    /// rejections land on the range-sharded services that can split —
    /// a queue has no shard map to grow.
    pub throttle_wal: bool,
    /// `Some(policy)` arms hot-shard splitting on every tenant's bucket
    /// and domain — rejection-triggered policies let a throttled hot
    /// tenant outgrow its 503s; `None` keeps the shard maps static.
    pub split: Option<SplitPolicy>,
    /// Seed for the world and the arrival schedule.
    pub seed: u64,
}

impl FleetParams {
    /// A short human label ("uniform" / "zipf(0.99)+throttle+split").
    pub fn label(&self) -> String {
        let skew = match self.skew {
            Some(theta) => format!("zipf({theta})"),
            None => "uniform".to_string(),
        };
        let mut label = skew;
        if self.throttle.is_some() {
            label.push_str(if self.throttle_wal {
                "+throttle"
            } else {
                "+storethrottle"
            });
        }
        if self.split.is_some() {
            label.push_str("+split");
        }
        label
    }

    /// The shard plan each tenant's endpoints are provisioned with.
    pub fn shard_plan(&self) -> ShardPlan {
        match self.split {
            Some(policy) => ShardPlan::fixed(self.shards).with_split(policy),
            None => ShardPlan::fixed(self.shards),
        }
    }
}

/// Measured output of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetRow {
    /// Scenario label.
    pub label: String,
    /// Tenants in the fleet.
    pub tenants: usize,
    /// Arrivals actually persisted.
    pub persisted: u64,
    /// Client-observed latency percentiles per service (only services
    /// that recorded samples appear).
    pub per_service: Vec<(Service, Percentiles)>,
    /// Percentiles over every recorded sample.
    pub overall: Option<Percentiles>,
    /// 503 rejections metered across the fleet.
    pub throttled: u64,
    /// Backoff-and-retry rounds taken in response to 503s.
    pub retries: u64,
    /// Persists abandoned with [`CloudError::RetryExhausted`].
    pub exhausted: u64,
    /// Hot-shard splits performed across every tenant's bucket and
    /// domain (zero when the shard maps are static).
    pub splits: u64,
    /// Billable requests issued (rejections included).
    pub requests: u64,
    /// USD bill for those requests (January 2009 prices, ops only).
    pub bill_usd: f64,
    /// Virtual seconds from first arrival to fleet quiescence.
    pub virtual_secs: f64,
}

impl FleetRow {
    /// Percentiles for one service, if it recorded samples.
    pub fn service_percentiles(&self, service: Service) -> Option<&Percentiles> {
        self.per_service
            .iter()
            .find(|(s, _)| *s == service)
            .map(|(_, p)| p)
    }
}

/// The state a fleet run converged to, reduced for cross-run equality:
/// per-tenant provenance graphs and the MD5 of every stored object.
/// Two runs with the same schedule must match fingerprints no matter
/// how much throttling slowed one of them down.
#[derive(Clone, Debug)]
pub struct FleetFingerprint {
    graphs: Vec<ProvGraph>,
    /// Sorted `(tenant, object name, md5)` triples.
    data: Vec<(usize, String, String)>,
}

impl FleetFingerprint {
    /// `true` when both runs converged to byte-identical stores.
    pub fn matches(&self, other: &FleetFingerprint) -> bool {
        self.data == other.data
            && self.graphs.len() == other.graphs.len()
            && self
                .graphs
                .iter()
                .zip(&other.graphs)
                .all(|(a, b)| a.diff(b).is_empty())
    }

    /// Total provenance nodes across the fleet.
    pub fn graph_nodes(&self) -> usize {
        self.graphs.iter().map(ProvGraph::len).sum()
    }
}

/// The flush tenant `t` persists as its `seq`-th arrival: a fresh file
/// derived from the tenant's previous one, so each tenant grows a
/// provenance chain.
fn fleet_flush(tenant: usize, seq: usize, seed: u64) -> FileFlush {
    let name = format!("t{tenant}/f{seq}.dat");
    let mut builder = FileFlush::builder(&name).data(Blob::synthetic(
        seed ^ ((tenant as u64) << 32 | seq as u64),
        1024,
    ));
    if seq > 0 {
        let parent = format!("t{tenant}/f{}.dat", seq - 1);
        builder = builder.record("input", &format!("{parent}:1"));
    }
    builder.build()
}

/// Runs one fleet scenario to quiescence and reduces it to a row and a
/// state fingerprint.
///
/// # Errors
///
/// Propagates service errors other than retry exhaustion (which is
/// counted, not fatal — an exhausted persist abandons that arrival).
pub fn run_fleet(params: &FleetParams) -> Result<(FleetRow, FleetFingerprint)> {
    let world = SimWorld::with_config(SimConfig {
        seed: params.seed,
        consistency: Consistency::Strong,
        latency: LatencyModel::default(),
        replicas: 1,
    });
    world.enable_latency_samples(SAMPLE_CAPACITY);

    let plan = params.shard_plan();
    let mut stores: Vec<S3SimpleDbSqs> = (0..params.tenants)
        .map(|t| S3SimpleDbSqs::with_shard_plan(&world, &format!("t{t}"), plan))
        .collect();
    if let Some(cfg) = params.throttle {
        for store in &stores {
            store.s3().set_throttle(Some(cfg));
            store.simpledb().set_throttle(Some(cfg));
            if params.throttle_wal {
                store.sqs().set_throttle(Some(cfg));
            }
        }
    }

    let schedule = fleet_schedule(&FleetSpec {
        tenants: params.tenants,
        arrivals_per_tenant: params.arrivals_per_tenant,
        arrivals: ArrivalProcess::Poisson {
            rate_per_sec: params.rate_per_sec,
        },
        skew: params.skew,
        seed: params.seed,
    });

    let start = world.now();
    let mut persisted = 0u64;
    let mut exhausted = 0u64;
    for arrival in &schedule {
        // Demand-driven clock: idle until the timer fires. A backlogged
        // fleet has already passed the instant and issues immediately.
        let due = start + arrival.at.saturating_since(simworld::SimInstant::EPOCH);
        let lag = due.saturating_since(world.now());
        if lag > simworld::SimDuration::ZERO {
            world.advance(lag);
        }
        world.set_tenant(arrival.tenant as u64);
        let flush = fleet_flush(arrival.tenant, arrival.seq, params.seed);
        match stores[arrival.tenant].persist(&flush) {
            Ok(()) => persisted += 1,
            Err(CloudError::RetryExhausted { .. }) => exhausted += 1,
            Err(e) => return Err(e),
        }
    }
    for (t, store) in stores.iter_mut().enumerate() {
        world.set_tenant(t as u64);
        store.run_daemons_until_idle()?;
    }
    world.settle();
    let virtual_secs = world.now().saturating_since(start).as_secs_f64();

    // Reduce the samples before fingerprint reads add read-path noise.
    let samples = world.take_latency_samples();
    let per_service = per_service_percentiles(&samples);
    let overall = overall_percentiles(&samples);
    let splits: u64 = stores
        .iter()
        .map(|store| {
            store.s3().bucket_split_count(BUCKET).unwrap_or(0)
                + store.simpledb().domain_split_count(DOMAIN).unwrap_or(0)
        })
        .sum();
    let meters = world.meters();
    let bill = costmodel::cost_of(&meters, 0.0, &costmodel::PriceBook::january_2009());
    let row = FleetRow {
        label: params.label(),
        tenants: params.tenants,
        persisted,
        per_service,
        overall,
        throttled: meters.total_throttled(),
        retries: world.throttle_retries(),
        exhausted,
        splits,
        requests: meters.total_ops(),
        bill_usd: bill.operations_total(),
        virtual_secs,
    };

    // Fingerprint the converged state: every tenant's provenance graph
    // and the MD5 of every object its arrivals stored.
    let mut graphs = Vec::with_capacity(params.tenants);
    let mut data = Vec::new();
    let mut per_tenant = vec![0usize; params.tenants];
    for arrival in &schedule {
        per_tenant[arrival.tenant] = per_tenant[arrival.tenant].max(arrival.seq + 1);
    }
    for (t, store) in stores.iter_mut().enumerate() {
        graphs.push(ProvGraph::from_answer(
            &store.query(&ProvQuery::ProvenanceOfAll)?,
        ));
        for seq in 0..per_tenant[t] {
            let name = format!("t{t}/f{seq}.dat");
            match store.read(&name) {
                Ok(outcome) => data.push((t, name, outcome.data.md5().to_hex())),
                // An exhausted persist legitimately left no object.
                Err(e) if e.is_not_found() => {}
                Err(e) => return Err(e),
            }
        }
    }
    data.sort();
    Ok((row, FleetFingerprint { graphs, data }))
}

/// Runs each scenario in order and returns the rows plus fingerprints.
///
/// # Errors
///
/// Propagates service errors.
pub fn fleet_sweep(scenarios: &[FleetParams]) -> Result<(Vec<FleetRow>, Vec<FleetFingerprint>)> {
    let mut rows = Vec::with_capacity(scenarios.len());
    let mut prints = Vec::with_capacity(scenarios.len());
    for params in scenarios {
        let (row, print) = run_fleet(params)?;
        rows.push(row);
        prints.push(print);
    }
    Ok((rows, prints))
}

/// Renders the fleet sweep: one percentile table per row, then the
/// throttle/retry/bill summary.
pub fn render_fleet(rows: &[FleetRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!(
            "fleet {} — {} tenants, {} persists, {:.1} virtual s\n",
            row.label, row.tenants, row.persisted, row.virtual_secs
        ));
        let mut latency_rows: Vec<(String, Percentiles)> = row
            .per_service
            .iter()
            .map(|(service, p)| (format!("{service:?}"), *p))
            .collect();
        if let Some(p) = row.overall {
            latency_rows.push(("all".to_string(), p));
        }
        out.push_str(&render_percentile_rows("service", &latency_rows));
        out.push_str(&format!(
            "503s {} | retries {} | exhausted {} | splits {} | requests {} | ops bill {}\n\n",
            row.throttled,
            row.retries,
            row.exhausted,
            row.splits,
            row.requests,
            costmodel::format_usd(row.bill_usd),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::SimDuration;

    fn small(skew: Option<f64>, throttle: Option<ThrottleConfig>) -> FleetParams {
        FleetParams {
            tenants: 4,
            arrivals_per_tenant: 4,
            rate_per_sec: 50.0,
            shards: 4,
            skew,
            throttle,
            throttle_wal: true,
            split: None,
            seed: 7,
        }
    }

    #[test]
    fn fixed_seed_runs_are_identical() {
        let params = small(
            Some(0.99),
            Some(ThrottleConfig::per_shard(4.0).with_burst(8.0)),
        );
        let (a, fa) = run_fleet(&params).unwrap();
        let (b, fb) = run_fleet(&params).unwrap();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "rows must replay exactly"
        );
        assert!(fa.matches(&fb));
        assert_eq!(a.retries, b.retries);
    }

    #[test]
    fn percentiles_are_ordered_and_cover_all_services() {
        let (row, print) = run_fleet(&small(None, None)).unwrap();
        assert_eq!(row.exhausted, 0);
        assert_eq!(row.persisted, 16);
        assert!(print.graph_nodes() > 0);
        assert_eq!(row.per_service.len(), 3, "all three services sampled");
        for (service, p) in &row.per_service {
            assert!(p.count > 0);
            assert!(
                p.p50 <= p.p99 && p.p99 <= p.p999 && p.p999 <= p.max,
                "{service:?}: percentiles out of order: {p:?}"
            );
            assert!(
                p.p50 > SimDuration::ZERO,
                "{service:?}: zero-latency sample"
            );
        }
    }

    #[test]
    fn rejection_triggered_splits_fire_without_changing_state() {
        // A tight store-only throttle (the WAL queue is exempt so the
        // 503s land on the shard-mapped bucket and domain) under enough
        // sustained arrivals that a split's doubled refill matters.
        let stat = FleetParams {
            arrivals_per_tenant: 32,
            throttle_wal: false,
            ..small(
                Some(0.99),
                Some(ThrottleConfig::per_shard(1.0).with_burst(2.0)),
            )
        };
        let split = FleetParams {
            split: Some(SplitPolicy::by_rejections(1)),
            ..stat
        };
        let (srow, sprint) = run_fleet(&stat).unwrap();
        let (drow, dprint) = run_fleet(&split).unwrap();
        assert_eq!(srow.splits, 0, "static fleet must not split");
        assert!(srow.throttled > 0, "the throttle must bite: {srow:?}");
        assert!(drow.splits > 0, "rejections must trigger splits: {drow:?}");
        assert!(
            drow.throttled < srow.throttled,
            "splitting must shed 503s: {} vs {}",
            drow.throttled,
            srow.throttled
        );
        let p99 = |row: &FleetRow| row.overall.as_ref().expect("samples recorded").p99;
        assert!(
            p99(&drow) < p99(&srow),
            "splitting must pull the tail down: {:?} vs {:?}",
            p99(&drow),
            p99(&srow)
        );
        assert!(
            dprint.matches(&sprint),
            "splitting must not change the converged store"
        );
    }

    #[test]
    fn throttling_costs_latency_and_money_but_not_state() {
        let plain = small(Some(0.99), None);
        let hot = small(
            Some(0.99),
            Some(ThrottleConfig::per_shard(4.0).with_burst(8.0)),
        );
        let (prow, pprint) = run_fleet(&plain).unwrap();
        let (hrow, hprint) = run_fleet(&hot).unwrap();
        assert!(hrow.throttled > 0, "the throttle must bite: {hrow:?}");
        assert!(hrow.retries > 0);
        assert_eq!(prow.throttled, 0);
        assert!(
            hprint.matches(&pprint),
            "throttling must not change the converged store"
        );
        // Satellite: the 503s are billable, so equal useful work costs
        // strictly more once the provider starts rejecting.
        assert!(
            hrow.bill_usd > prow.bill_usd,
            "rejections must inflate the bill: {} vs {}",
            hrow.bill_usd,
            prow.bill_usd
        );
        assert!(hrow.requests > prow.requests);
    }
}

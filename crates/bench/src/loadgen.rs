//! Wall-clock load generator: N client threads driving the network
//! frontend with open-loop Poisson arrivals.
//!
//! Every earlier bench measures *virtual* time on one thread. This one
//! measures *wall-clock* time through the real serving stack: a
//! [`Server`] pool over TCP or a Unix-domain socket, N client threads
//! recording provenance chains and then issuing verified reads and
//! Q1–Q3 queries. The read/query path takes `&self` all the way down
//! ([`ServeHandle`]), so extra threads buy real parallelism on
//! multi-core hosts — and the invariant under test is that they buy it
//! *without changing the store*: every networked run's fingerprint
//! must equal the same workload applied in-process, at every thread
//! count.
//!
//! The query phase is open-loop, reusing the fleet bench's arrival
//! machinery ([`workloads::ArrivalClock`]) mapped onto the wall clock:
//! each thread draws Poisson arrival instants up front and issues its
//! next request when the timer fires, whether or not the previous one
//! has completed its round trip. Latency is measured from the
//! *scheduled* arrival to completion, so a server that falls behind
//! pays its queueing delay in the percentiles, exactly as the
//! virtual-time fleet bench does.

use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use frontend::{Client, Server};
use pass::{FileFlush, Observer, TraceEvent};
use provenance_cloud::{
    Arch2Config, Arch3Config, ClosureMode, ProvQuery, S3SimpleDb, S3SimpleDbSqs, ServeHandle,
};
use simworld::{percentiles, Blob, Percentiles, SimDuration, SimInstant, SimWorld};
use workloads::{ArrivalClock, ArrivalProcess};

use crate::harness::render_percentile_rows;

/// Flushes sent per `RecordBatch` frame in batched mode.
const BATCH: usize = 8;

/// The executable name every synthetic pipeline step runs, so Q2/Q3
/// (`OutputsOf` / `DescendantsOf`) have a program to chase.
const PROGRAM: &str = "gen";

/// Which store architecture serves the run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LoadArch {
    /// S3 + SimpleDB (architecture 2).
    Arch2,
    /// S3 + SimpleDB + SQS write-ahead log (architecture 3).
    Arch3,
}

impl LoadArch {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            LoadArch::Arch2 => "arch2",
            LoadArch::Arch3 => "arch3",
        }
    }
}

/// One loadgen scenario.
#[derive(Clone, Debug)]
pub struct LoadgenParams {
    /// Architecture under test.
    pub arch: LoadArch,
    /// Client threads; the server pool is sized to match.
    pub threads: usize,
    /// Pipeline steps (derived files) each thread records.
    pub steps_per_thread: usize,
    /// Open-loop queries each thread issues after the flush barrier.
    pub queries_per_thread: usize,
    /// Per-thread Poisson arrival rate for the query phase
    /// (requests per wall-clock second).
    pub rate_per_sec: f64,
    /// Send records through `RecordBatch` frames instead of one
    /// `Record` per flush.
    pub batched: bool,
    /// Maintain and serve the ancestry-closure index
    /// ([`ClosureMode::Serve`]), so Q3 answers from point reads.
    pub serve_closure: bool,
    /// Serve over TCP loopback instead of a Unix-domain socket.
    pub tcp: bool,
    /// Seed for blob contents and arrival draws.
    pub seed: u64,
}

impl Default for LoadgenParams {
    fn default() -> LoadgenParams {
        LoadgenParams {
            arch: LoadArch::Arch2,
            threads: 4,
            steps_per_thread: 16,
            queries_per_thread: 24,
            rate_per_sec: 600.0,
            batched: false,
            serve_closure: false,
            tcp: false,
            seed: 2009,
        }
    }
}

impl LoadgenParams {
    /// Scenario label (`arch2/point`, `arch3/batched+closure`, …).
    pub fn label(&self) -> String {
        format!(
            "{}/{}{}",
            self.arch.label(),
            if self.batched { "batched" } else { "point" },
            if self.serve_closure { "+closure" } else { "" },
        )
    }
}

/// Measured output of one loadgen run.
#[derive(Clone, Debug)]
pub struct LoadgenRow {
    /// Scenario label.
    pub label: String,
    /// Client threads driven.
    pub threads: usize,
    /// Flushes recorded over the wire.
    pub records: u64,
    /// Wall-clock seconds of the record phase (flush barrier included).
    pub record_secs: f64,
    /// Queries completed over the wire.
    pub queries: u64,
    /// Wall-clock seconds of the query phase.
    pub query_secs: f64,
    /// Codec, connection, or store errors observed by any client.
    pub errors: u64,
    /// Open-loop wall-clock latency percentiles, one row per query
    /// class (`read`/`q1`/`q2`/`q3`) plus `all`.
    pub query_latency: Vec<(String, Percentiles)>,
    /// Store fingerprint reported by the server after the run.
    pub fingerprint: u64,
    /// Fingerprint of the same workload applied in-process.
    pub in_process_fingerprint: u64,
}

impl LoadgenRow {
    /// Records per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        per_sec(self.records, self.record_secs)
    }

    /// Queries per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        per_sec(self.queries, self.query_secs)
    }

    /// `true` when the networked store converged to exactly the state
    /// the in-process run produced.
    pub fn fingerprints_match(&self) -> bool {
        self.fingerprint == self.in_process_fingerprint
    }
}

fn per_sec(n: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        n as f64 / secs
    }
}

/// The provenance chain thread `t` records: a source file, then
/// `steps` invocations of [`PROGRAM`], each reading the previous file
/// and writing the next. Thread keyspaces are disjoint
/// (`t{t}/f{k}.dat`, pids `t·1e6+k`), so the final store state is
/// independent of how the threads interleave.
fn thread_flushes(thread: usize, steps: usize, seed: u64) -> Vec<FileFlush> {
    let mix = |k: u64| seed ^ (((thread as u64) << 32) | k);
    let mut observer = Observer::new();
    let mut out = Vec::new();
    let source = format!("t{thread}/in.dat");
    out.extend(
        observer
            .observe(TraceEvent::source(&source, Blob::synthetic(mix(0), 2048)))
            .expect("well-formed synthetic trace"),
    );
    let mut prev = source;
    for k in 0..steps {
        let pid = (thread * 1_000_000 + k + 1) as u32;
        let next = format!("t{thread}/f{k}.dat");
        for event in [
            TraceEvent::exec(pid, PROGRAM, format!("{PROGRAM} {prev}"), "PATH=/bin", None),
            TraceEvent::read(pid, &prev),
            TraceEvent::write(pid, &next),
            TraceEvent::close(pid, &next, Blob::synthetic(mix(k as u64 + 1), 1024)),
            TraceEvent::exit(pid),
        ] {
            out.extend(
                observer
                    .observe(event)
                    .expect("well-formed synthetic trace"),
            );
        }
        prev = next;
    }
    out
}

/// Builds a fresh handle for `params` on a counting world (zero virtual
/// latency: the wall clock measures thread parallelism, not simulated
/// service time).
fn build_handle(params: &LoadgenParams) -> ServeHandle {
    let world = SimWorld::counting();
    let closure = if params.serve_closure {
        ClosureMode::Serve
    } else {
        ClosureMode::Off
    };
    match params.arch {
        LoadArch::Arch2 => {
            let mut store = S3SimpleDb::new(&world);
            store.set_config(Arch2Config {
                closure,
                ..Arch2Config::default()
            });
            ServeHandle::new(store)
        }
        LoadArch::Arch3 => {
            let mut store = S3SimpleDbSqs::new(&world, "loadgen");
            store.set_config(Arch3Config {
                closure,
                ..Arch3Config::default()
            });
            ServeHandle::new(store)
        }
    }
}

/// Where the clients connect.
#[derive(Clone)]
enum Target {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

fn unique_socket_path() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("prov-loadgen-{}-{n}.sock", std::process::id()))
}

/// Records thread `t`'s flushes through one connection. Returns
/// `(records, errors)`.
fn record_thread<S: Read + Write>(
    client: &mut Client<S>,
    thread: usize,
    params: &LoadgenParams,
) -> (u64, u64) {
    let flushes = thread_flushes(thread, params.steps_per_thread, params.seed);
    let mut records = 0u64;
    let mut errors = 0u64;
    if params.batched {
        for chunk in flushes.chunks(BATCH) {
            match client.record_batch(chunk) {
                Ok(()) => records += chunk.len() as u64,
                Err(_) => errors += 1,
            }
        }
    } else {
        for flush in &flushes {
            match client.record(flush) {
                Ok(()) => records += 1,
                Err(_) => errors += 1,
            }
        }
    }
    (records, errors)
}

/// Issues thread `t`'s open-loop query mix. Returns
/// `((class, latency) samples, errors)`; class indexes
/// [`QUERY_CLASSES`].
fn query_thread<S: Read + Write>(
    client: &mut Client<S>,
    thread: usize,
    params: &LoadgenParams,
    phase_start: Instant,
) -> (Vec<(usize, Duration)>, u64) {
    let mut clock = ArrivalClock::new(
        ArrivalProcess::Poisson {
            rate_per_sec: params.rate_per_sec,
        },
        params.seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut samples = Vec::with_capacity(params.queries_per_thread);
    let mut errors = 0u64;
    for i in 0..params.queries_per_thread {
        let offset = clock.next_arrival().saturating_since(SimInstant::EPOCH);
        let due = phase_start + Duration::from_micros(offset.as_micros());
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let target_thread = (thread + i) % params.threads.max(1);
        let step = i % params.steps_per_thread.max(1);
        let file = format!("t{target_thread}/f{step}.dat");
        let class = i % QUERY_CLASSES.len();
        let ok = match class {
            0 => client.read(&file).is_ok(),
            1 => client
                .query(&ProvQuery::ProvenanceOf {
                    name: file,
                    version: 1,
                })
                .is_ok(),
            2 => client
                .query(&ProvQuery::OutputsOf {
                    program: PROGRAM.to_string(),
                })
                .is_ok(),
            _ => client
                .query(&ProvQuery::DescendantsOf {
                    program: PROGRAM.to_string(),
                })
                .is_ok(),
        };
        if ok {
            // Open-loop latency: completion minus *scheduled* arrival,
            // so a backlogged server pays its queueing delay.
            samples.push((class, Instant::now().saturating_duration_since(due)));
        } else {
            errors += 1;
        }
    }
    (samples, errors)
}

const QUERY_CLASSES: [&str; 4] = ["read", "q1", "q2", "q3"];

/// Reduces wall-clock samples to labelled percentile rows (per query
/// class plus `all`), through the same exact-percentile machinery the
/// virtual-time benches use.
fn latency_rows(samples: &[(usize, Duration)]) -> Vec<(String, Percentiles)> {
    let to_sim =
        |d: &Duration| SimDuration::from_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    let mut rows = Vec::new();
    for (idx, label) in QUERY_CLASSES.iter().enumerate() {
        let lat: Vec<_> = samples
            .iter()
            .filter(|(class, _)| *class == idx)
            .map(|(_, d)| to_sim(d))
            .collect();
        if let Some(p) = percentiles(lat) {
            rows.push(((*label).to_string(), p));
        }
    }
    if let Some(p) = percentiles(samples.iter().map(|(_, d)| to_sim(d)).collect()) {
        rows.push(("all".to_string(), p));
    }
    rows
}

/// Runs one scenario: an in-process reference pass, then the same
/// workload through the network frontend with `params.threads` client
/// threads, asserting nothing — the row carries both fingerprints for
/// the caller to compare.
///
/// # Errors
///
/// Socket bind/connect errors and client transport failures outside
/// the measured phases. Store and protocol errors *inside* the phases
/// are counted into [`LoadgenRow::errors`], not returned.
pub fn run_loadgen(params: &LoadgenParams) -> io::Result<LoadgenRow> {
    // In-process reference: the same flushes applied serially through
    // the same facade. Thread keyspaces are disjoint, so serial
    // application converges to the same state as any interleaving.
    let reference = build_handle(params);
    for thread in 0..params.threads {
        for flush in thread_flushes(thread, params.steps_per_thread, params.seed) {
            reference.record(&flush).map_err(store_fatal)?;
        }
    }
    reference.flush().map_err(store_fatal)?;
    let in_process_fingerprint = reference.fingerprint();

    // The networked run.
    let handle = build_handle(params);
    let server = if params.tcp {
        Server::bind_tcp(handle.clone(), "127.0.0.1:0", params.threads)?
    } else {
        Server::bind_unix(handle.clone(), unique_socket_path(), params.threads)?
    };
    let target = match (server.tcp_addr(), server.unix_path()) {
        (Some(addr), _) => Target::Tcp(addr),
        (None, Some(path)) => Target::Unix(path.to_path_buf()),
        (None, None) => unreachable!("a bound server has an endpoint"),
    };

    // Phase 1: record (timed; ends at the flush barrier).
    let record_start = Instant::now();
    let mut records = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.threads)
            .map(|thread| {
                let target = target.clone();
                scope.spawn(move || match &target {
                    Target::Tcp(addr) => {
                        let mut client = Client::connect_tcp(addr).expect("connect to own server");
                        record_thread(&mut client, thread, params)
                    }
                    Target::Unix(path) => {
                        let mut client = Client::connect_unix(path).expect("connect to own server");
                        record_thread(&mut client, thread, params)
                    }
                })
            })
            .collect();
        for handle in handles {
            let (r, e) = handle.join().expect("record thread");
            records += r;
            errors += e;
        }
    });
    // Flush barrier: drain the WAL/daemons so the query phase reads a
    // consistent store.
    match &target {
        Target::Tcp(addr) => Client::connect_tcp(addr)?.flush().map_err(client_fatal)?,
        Target::Unix(path) => Client::connect_unix(path)?.flush().map_err(client_fatal)?,
    }
    let record_secs = record_start.elapsed().as_secs_f64();

    // Phase 2: open-loop queries (timed).
    let query_start = Instant::now();
    let mut samples: Vec<(usize, Duration)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.threads)
            .map(|thread| {
                let target = target.clone();
                scope.spawn(move || match &target {
                    Target::Tcp(addr) => {
                        let mut client = Client::connect_tcp(addr).expect("connect to own server");
                        query_thread(&mut client, thread, params, query_start)
                    }
                    Target::Unix(path) => {
                        let mut client = Client::connect_unix(path).expect("connect to own server");
                        query_thread(&mut client, thread, params, query_start)
                    }
                })
            })
            .collect();
        for handle in handles {
            let (s, e) = handle.join().expect("query thread");
            samples.extend(s);
            errors += e;
        }
    });
    let query_secs = query_start.elapsed().as_secs_f64();

    // Fingerprint over the wire (exercises the Stats command), then
    // shut the pool down.
    let stats = match &target {
        Target::Tcp(addr) => Client::connect_tcp(addr)?.stats().map_err(client_fatal)?,
        Target::Unix(path) => Client::connect_unix(path)?.stats().map_err(client_fatal)?,
    };
    server.shutdown();

    Ok(LoadgenRow {
        label: params.label(),
        threads: params.threads,
        records,
        record_secs,
        queries: samples.len() as u64,
        query_secs,
        errors,
        query_latency: latency_rows(&samples),
        fingerprint: stats.fingerprint,
        in_process_fingerprint,
    })
}

fn store_fatal(e: provenance_cloud::CloudError) -> io::Error {
    io::Error::other(format!("reference run: {e}"))
}

fn client_fatal(e: frontend::ClientError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Runs `params` once per thread count.
///
/// # Errors
///
/// As [`run_loadgen`].
pub fn loadgen_sweep(
    params: &LoadgenParams,
    thread_counts: &[usize],
) -> io::Result<Vec<LoadgenRow>> {
    thread_counts
        .iter()
        .map(|&threads| {
            run_loadgen(&LoadgenParams {
                threads,
                ..params.clone()
            })
        })
        .collect()
}

/// Renders the sweep summary plus one latency table per row.
pub fn render_loadgen(rows: &[LoadgenRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario         | thr | records |    rec/s | queries |    qry/s | errors | state\n",
    );
    out.push_str(
        "-----------------|-----|---------|----------|---------|----------|--------|------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<16} | {:>3} | {:>7} | {:>8.0} | {:>7} | {:>8.0} | {:>6} | {}\n",
            row.label,
            row.threads,
            row.records,
            row.records_per_sec(),
            row.queries,
            row.queries_per_sec(),
            row.errors,
            if row.fingerprints_match() {
                "ok"
            } else {
                "MISMATCH"
            },
        ));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{} × {} threads — open-loop wall-clock query latency\n",
            row.label, row.threads
        ));
        out.push_str(&render_percentile_rows("op", &row.query_latency));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(arch: LoadArch, threads: usize, batched: bool) -> LoadgenParams {
        LoadgenParams {
            arch,
            threads,
            steps_per_thread: 4,
            queries_per_thread: 8,
            rate_per_sec: 4_000.0,
            batched,
            ..LoadgenParams::default()
        }
    }

    #[test]
    fn networked_run_matches_in_process_fingerprint_arch2() {
        let row = run_loadgen(&tiny(LoadArch::Arch2, 2, false)).unwrap();
        assert_eq!(row.errors, 0, "{row:?}");
        assert!(row.fingerprints_match(), "{row:?}");
        assert_eq!(row.records, 2 * (4 * 2 + 1));
        assert_eq!(row.queries, 2 * 8);
        assert!(!row.query_latency.is_empty());
    }

    #[test]
    fn networked_run_matches_in_process_fingerprint_arch3_batched() {
        let row = run_loadgen(&tiny(LoadArch::Arch3, 2, true)).unwrap();
        assert_eq!(row.errors, 0, "{row:?}");
        assert!(row.fingerprints_match(), "{row:?}");
    }

    #[test]
    fn closure_serve_mode_survives_the_wire() {
        let params = LoadgenParams {
            serve_closure: true,
            ..tiny(LoadArch::Arch2, 2, false)
        };
        let row = run_loadgen(&params).unwrap();
        assert_eq!(row.errors, 0, "{row:?}");
        assert!(row.fingerprints_match(), "{row:?}");
    }

    #[test]
    fn tcp_transport_matches_unix() {
        let unix = run_loadgen(&tiny(LoadArch::Arch2, 1, false)).unwrap();
        let tcp = run_loadgen(&LoadgenParams {
            tcp: true,
            ..tiny(LoadArch::Arch2, 1, false)
        })
        .unwrap();
        assert_eq!(tcp.fingerprint, unix.fingerprint);
        assert!(tcp.fingerprints_match());
    }

    #[test]
    fn workload_is_deterministic_and_disjoint_across_threads() {
        let a = thread_flushes(0, 4, 7);
        let b = thread_flushes(0, 4, 7);
        assert_eq!(a, b, "same thread/seed must replay exactly");
        let other = thread_flushes(1, 4, 7);
        let names = |fs: &[FileFlush]| {
            fs.iter()
                .map(|f| f.object.name.clone())
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert!(
            names(&a).is_disjoint(&names(&other)),
            "thread keyspaces must not overlap"
        );
    }

    #[test]
    fn render_includes_summary_and_latency_tables() {
        let row = run_loadgen(&tiny(LoadArch::Arch2, 1, false)).unwrap();
        let text = render_loadgen(&[row]);
        assert!(text.contains("scenario"));
        assert!(text.contains("arch2/point"));
        assert!(text.contains("op       | samples |"));
        assert!(text.contains(" ok"));
    }
}

//! Criterion bench: the multi-thread query/select and S3 LIST/GET
//! bursts at three shard counts — the wall-clock view of per-shard
//! locking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_bench::shardbench::{burst, prepare, prepare_s3, s3_burst};
use workloads::Combined;

fn bench_shard_scaling(c: &mut Criterion) {
    let dataset = Combined::small();
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for shards in [1usize, 4, 16] {
        let db = prepare(shards, &dataset).expect("persist corpus");
        group.bench_function(BenchmarkId::new("query_select_burst_4thr", shards), |b| {
            b.iter(|| {
                let (hits, _) = burst(&db, 4, 6);
                assert!(hits > 0);
            });
        });
    }
    group.finish();
}

fn bench_s3_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("s3_shard_scaling");
    group.sample_size(10);
    for shards in [1usize, 4, 16] {
        let (_, s3) = prepare_s3(shards, 400).expect("fill bucket");
        group.bench_function(BenchmarkId::new("list_get_burst_4thr", shards), |b| {
            b.iter(|| {
                let (hits, _) = s3_burst(&s3, 400, 4, 6);
                assert!(hits > 0);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling, bench_s3_shard_scaling);
criterion_main!(benches);

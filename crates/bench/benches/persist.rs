//! Criterion bench: persist throughput of the three architectures.
//!
//! Wall-clock complement to Table 2's op counts: how much *work* each
//! protocol performs per flushed object (simulated services, zero
//! simulated latency — this measures the implementation, not the WAN).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pass::FileFlush;
use provenance_cloud::ArchKind;
use simworld::{Blob, SimWorld};

fn flush_batch(n: usize) -> Vec<FileFlush> {
    (0..n)
        .map(|i| {
            FileFlush::builder(format!("bench/f{i:04}"))
                .data(Blob::synthetic(i as u64, 16 * 1024))
                .record("input", &format!("bench/src{i:04}:1"))
                .record("env", &"e".repeat(1500)) // forces one overflow
                .build()
        })
        .collect()
}

fn bench_persist(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_50_flushes");
    group.sample_size(20);
    for kind in ArchKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                let flushes = flush_batch(50);
                b.iter_batched(
                    || {
                        let world = SimWorld::counting();
                        let store = kind.build(&world);
                        (world, store)
                    },
                    |(_world, mut store)| {
                        for flush in &flushes {
                            store.persist(flush).unwrap();
                        }
                        store.run_daemons_until_idle().unwrap();
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_one_object");
    group.sample_size(30);
    for kind in ArchKind::ALL {
        // Prepare once; reads are non-destructive.
        let world = SimWorld::counting();
        let mut store = kind.build(&world);
        for flush in flush_batch(50) {
            store.persist(&flush).unwrap();
        }
        store.run_daemons_until_idle().unwrap();
        world.settle();
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let read = store.read("bench/f0025").unwrap();
                assert!(read.consistent());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_persist, bench_read);
criterion_main!(benches);

//! Criterion bench: the Table 3 queries on three engines — S3 scan,
//! SimpleDB walk, and the materialized closure index — at corpus sizes
//! from 50 to 2000 chains. The wall-clock view of scan vs walk vs
//! index: the walk grows with the corpus (every query page scans the
//! domain), the index stays flat (point reads sized by the answer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_bench::querybench::query_corpus;
use provenance_cloud::{
    Arch2Config, ArchKind, ClosureMode, ProvQuery, ProvenanceStore, S3SimpleDb,
};
use simworld::SimWorld;

#[derive(Copy, Clone, PartialEq, Eq)]
enum Engine {
    S3Scan,
    SimpleDbWalk,
    SimpleDbIndex,
}

impl Engine {
    fn label(self) -> &'static str {
        match self {
            Engine::S3Scan => "s3-scan",
            Engine::SimpleDbWalk => "simpledb",
            Engine::SimpleDbIndex => "simpledb-index",
        }
    }
}

/// Builds a store with `chains` one-tool pipelines plus a single blast
/// pipeline (the fixed-size query target): `q.fa -> blastall ->
/// hits.out -> fmtblast -> report.txt`. Descendants of `blastall` are
/// always two items (the `fmtblast` process and `report.txt`) no matter
/// how large the churn corpus grows, so `q3_descendants` isolates
/// corpus-size scaling from answer-size scaling; `q3_descendants_bulk`
/// (target `churn`) covers the answer-grows-with-corpus regime.
fn prepared(engine: Engine, chains: u32) -> (SimWorld, Box<dyn ProvenanceStore>) {
    let world = SimWorld::counting();
    let mut store: Box<dyn ProvenanceStore> = match engine {
        Engine::S3Scan => ArchKind::S3.build(&world),
        Engine::SimpleDbWalk => ArchKind::S3SimpleDb.build(&world),
        Engine::SimpleDbIndex => {
            let mut store = S3SimpleDb::new(&world);
            store.set_config(Arch2Config {
                closure: ClosureMode::Serve,
                ..Arch2Config::default()
            });
            Box::new(store)
        }
    };
    for flush in &query_corpus(chains) {
        store.persist(flush).unwrap();
    }
    store.run_daemons_until_idle().unwrap();
    world.settle();
    (world, store)
}

fn bench_queries(c: &mut Criterion) {
    for chains in [50u32, 200, 500, 2000] {
        let mut group = c.benchmark_group(format!("query_corpus_{chains}_chains"));
        group.sample_size(10);
        for engine in [Engine::S3Scan, Engine::SimpleDbWalk, Engine::SimpleDbIndex] {
            // The S3 scan engine re-reads every object per query; past
            // 200 chains it only stretches the bench without adding a
            // data point the table needs.
            if engine == Engine::S3Scan && chains > 200 {
                continue;
            }
            let (_world, mut store) = prepared(engine, chains);
            group.bench_function(BenchmarkId::new("q3_descendants", engine.label()), |b| {
                b.iter(|| {
                    let answer = store
                        .query(&ProvQuery::DescendantsOf {
                            program: "blastall".into(),
                        })
                        .unwrap();
                    assert_eq!(answer.len(), 2);
                });
            });
            group.bench_function(
                BenchmarkId::new("q3_descendants_bulk", engine.label()),
                |b| {
                    b.iter(|| {
                        store
                            .query(&ProvQuery::DescendantsOf {
                                program: "churn".into(),
                            })
                            .unwrap()
                    });
                },
            );
            if chains > 200 {
                continue;
            }
            group.bench_function(BenchmarkId::new("q2_outputs", engine.label()), |b| {
                b.iter(|| {
                    let answer = store
                        .query(&ProvQuery::OutputsOf {
                            program: "blastall".into(),
                        })
                        .unwrap();
                    assert_eq!(answer.len(), 1);
                });
            });
            group.bench_function(BenchmarkId::new("q1_single", engine.label()), |b| {
                b.iter(|| {
                    let answer = store
                        .query(&ProvQuery::ProvenanceOf {
                            name: "hits.out".into(),
                            version: 1,
                        })
                        .unwrap();
                    assert_eq!(answer.len(), 1);
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);

//! Criterion bench: the Table 3 queries on both engines, at two corpus
//! sizes — the wall-clock view of the scan-vs-index contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass::{Observer, TraceEvent};
use provenance_cloud::{ArchKind, ProvQuery, ProvenanceStore};
use simworld::{Blob, SimWorld};

/// Builds a store with `chains` one-tool pipelines plus a single blast
/// chain (the query target).
fn prepared(kind: ArchKind, chains: u32) -> (SimWorld, Box<dyn ProvenanceStore>) {
    let world = SimWorld::counting();
    let mut store = kind.build(&world);
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    for i in 0..chains {
        let pid = i + 1;
        let src = format!("raw/{i}.dat");
        let out = format!("cooked/{i}.dat");
        for ev in [
            TraceEvent::source(&src, Blob::synthetic(u64::from(i), 1024)),
            TraceEvent::exec(pid, "churn", "churn", "E=1", None),
            TraceEvent::read(pid, &src),
            TraceEvent::write(pid, &out),
            TraceEvent::close(pid, &out, Blob::synthetic(u64::from(i) + 5000, 512)),
            TraceEvent::exit(pid),
        ] {
            flushes.extend(obs.observe(ev).unwrap());
        }
    }
    let pid = chains + 1;
    for ev in [
        TraceEvent::source("q.fa", Blob::synthetic(9001, 256)),
        TraceEvent::exec(pid, "blastall", "blastall q.fa", "E=1", None),
        TraceEvent::read(pid, "q.fa"),
        TraceEvent::write(pid, "hits.out"),
        TraceEvent::close(pid, "hits.out", Blob::synthetic(9002, 2048)),
        TraceEvent::exit(pid),
    ] {
        flushes.extend(obs.observe(ev).unwrap());
    }
    for flush in &flushes {
        store.persist(flush).unwrap();
    }
    store.run_daemons_until_idle().unwrap();
    world.settle();
    (world, store)
}

fn bench_queries(c: &mut Criterion) {
    for chains in [50u32, 200] {
        let mut group = c.benchmark_group(format!("query_corpus_{chains}_chains"));
        group.sample_size(10);
        for kind in [ArchKind::S3, ArchKind::S3SimpleDb] {
            let (_world, mut store) = prepared(kind, chains);
            let engine = if kind == ArchKind::S3 {
                "s3-scan"
            } else {
                "simpledb"
            };
            group.bench_function(BenchmarkId::new("q2_outputs", engine), |b| {
                b.iter(|| {
                    let answer = store
                        .query(&ProvQuery::OutputsOf {
                            program: "blastall".into(),
                        })
                        .unwrap();
                    assert_eq!(answer.len(), 1);
                });
            });
            group.bench_function(BenchmarkId::new("q3_descendants", engine), |b| {
                b.iter(|| {
                    store
                        .query(&ProvQuery::DescendantsOf {
                            program: "churn".into(),
                        })
                        .unwrap()
                });
            });
            group.bench_function(BenchmarkId::new("q1_single", engine), |b| {
                b.iter(|| {
                    let answer = store
                        .query(&ProvQuery::ProvenanceOf {
                            name: "hits.out".into(),
                            version: 1,
                        })
                        .unwrap();
                    assert_eq!(answer.len(), 1);
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);

//! Criterion bench: raw throughput of the simulated services and the
//! MD5/Blob substrate — the floor under every higher-level number.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sim_s3::{Metadata, S3};
use sim_simpledb::{ReplaceableAttribute, SimpleDb};
use sim_sqs::Sqs;
use simworld::{Blob, Md5, SimWorld};

fn bench_s3(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_s3");
    group.sample_size(30);
    let world = SimWorld::counting();
    let s3 = S3::new(&world);
    s3.create_bucket("b").unwrap();
    let body = Blob::synthetic(7, 64 * 1024);
    let meta = Metadata::from_pairs([("p0-type", "file"), ("version", "1")]);
    group.bench_function("put_64k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s3.put_object("b", &format!("k{}", i % 1000), body.clone(), meta.clone())
                .unwrap();
        });
    });
    s3.put_object("b", "read-target", body.clone(), meta)
        .unwrap();
    world.settle();
    group.bench_function("get_64k", |b| {
        b.iter(|| s3.get_object("b", "read-target").unwrap());
    });
    group.bench_function("head", |b| {
        b.iter(|| s3.head_object("b", "read-target").unwrap());
    });
    group.finish();
}

fn bench_simpledb(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_simpledb");
    group.sample_size(30);
    let world = SimWorld::counting();
    let db = SimpleDb::new(&world);
    db.create_domain("d").unwrap();
    for i in 0..500 {
        db.put_attributes(
            "d",
            &format!("item{i:04}"),
            &[
                ReplaceableAttribute::add("type", if i % 3 == 0 { "process" } else { "file" }),
                ReplaceableAttribute::add("input", format!("src{:04}:1", i / 2)),
                ReplaceableAttribute::add("name", format!("n{i}")),
            ],
        )
        .unwrap();
    }
    world.settle();
    group.bench_function("put_attributes_3", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // `replace` keeps the item at one pair; `add` would grow the
            // multi-valued set past the 256-pair limit mid-benchmark.
            db.put_attributes(
                "d",
                &format!("bench{}", i % 100),
                &[ReplaceableAttribute::replace("x", i.to_string())],
            )
            .unwrap();
        });
    });
    group.bench_function("query_equality_over_500", |b| {
        b.iter(|| {
            db.query("d", Some("['type' = 'process']"), Some(250), None)
                .unwrap()
        });
    });
    group.bench_function("select_over_500", |b| {
        b.iter(|| {
            db.select(
                "select itemName() from d where `input` like 'src01%' limit 250",
                None,
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_sqs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_sqs");
    group.sample_size(30);
    let world = SimWorld::counting();
    let sqs = Sqs::new(&world);
    let url = sqs.create_queue("bench");
    group.bench_function("send_1k", |b| {
        let body = "m".repeat(1024);
        b.iter(|| sqs.send_message(&url, body.clone()).unwrap());
    });
    group.bench_function("receive_10", |b| {
        b.iter(|| sqs.receive_message(&url, 10).unwrap());
    });
    group.finish();
}

fn bench_md5(c: &mut Criterion) {
    let mut group = c.benchmark_group("md5");
    for size in [4 * 1024u64, 1024 * 1024] {
        group.throughput(Throughput::Bytes(size));
        group.bench_function(format!("blob_{size}b"), |b| {
            let blob = Blob::synthetic(1, size);
            b.iter(|| blob.md5());
        });
    }
    group.bench_function("oneshot_4k_bytes", |b| {
        let data = vec![0xa5u8; 4096];
        b.iter_batched(|| data.clone(), |d| Md5::digest(&d), BatchSize::SmallInput);
    });
    group.finish();
}

criterion_group!(benches, bench_s3, bench_simpledb, bench_sqs, bench_md5);
criterion_main!(benches);

//! The shared §4.2 read path: S3 data + SimpleDB provenance, verified by
//! `MD5(data ‖ nonce)` and retried until consistent. Used by both
//! Architecture 2 and Architecture 3 (their read sides are identical —
//! Table 3 notes their query costs are the same for the same reason).

use pass::ObjectRef;
use sim_s3::{S3Error, S3};
use sim_simpledb::SimpleDb;
use simworld::{Blob, SimWorld};

use crate::error::{CloudError, Result};
use crate::layout::{data_key, ATTR_MD5, BUCKET, DOMAIN};
use crate::retry::RetryPolicy;
use crate::serialize::{decode_attributes, read_nonce, read_version};
use crate::store::{ReadOutcome, ReadStatus};

/// Everything the verified read needs.
pub(crate) struct ReadContext<'a> {
    pub world: &'a SimWorld,
    pub s3: &'a S3,
    pub db: &'a SimpleDb,
    pub retry: RetryPolicy,
    pub verify_md5: bool,
    pub use_nonce: bool,
}

impl ReadContext<'_> {
    pub(crate) fn consistency_md5(&self, data: &Blob, nonce: &str) -> String {
        if self.use_nonce {
            data.md5_with_suffix(nonce.as_bytes()).to_hex()
        } else {
            data.md5().to_hex()
        }
    }
}

/// Fetches data + provenance for `name`, enforcing the MD5+nonce
/// consistency check with retries.
pub(crate) fn verified_read(ctx: &ReadContext<'_>, name: &str) -> Result<ReadOutcome> {
    let key = data_key(name);
    let mut retries = 0u32;
    loop {
        let object = match ctx.s3.get_object(BUCKET, &key) {
            Ok(o) => o,
            Err(S3Error::NoSuchKey { .. }) if retries < ctx.retry.max_retries => {
                retries += 1;
                ctx.retry.pause(ctx.world, retries);
                continue;
            }
            // Budget spent on a key that never appeared: that is a
            // plain NotFound, not retry exhaustion — the retries were
            // only riding out eventual consistency, and callers match
            // on the NotFound variant to mean "this object does not
            // exist".
            Err(S3Error::NoSuchKey { .. }) => {
                return Err(CloudError::NotFound {
                    name: name.to_string(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let version = read_version(&object.metadata)?;
        let nonce = read_nonce(&object.metadata)?;
        let object_ref = ObjectRef::new(name.to_string(), version);
        let attrs = ctx
            .db
            .get_attributes(DOMAIN, &object_ref.item_name(), None)?;
        let stored_md5 = attrs
            .iter()
            .find(|a| a.name == ATTR_MD5)
            .map(|a| a.value.clone());

        let finish = |status: ReadStatus| -> Result<ReadOutcome> {
            let records = decode_attributes(&attrs, |k| fetch_overflow(ctx, k))?;
            Ok(ReadOutcome {
                object: object_ref.clone(),
                data: object.body.clone(),
                records,
                status,
            })
        };

        if !ctx.verify_md5 {
            return finish(ReadStatus::Unverified);
        }
        let computed = ctx.consistency_md5(&object.body, &nonce);
        if stored_md5.as_deref() == Some(computed.as_str()) {
            return finish(ReadStatus::VerifiedConsistent { retries });
        }
        if retries >= ctx.retry.max_retries {
            return finish(ReadStatus::InconsistencyDetected { retries });
        }
        retries += 1;
        ctx.retry.pause(ctx.world, retries);
    }
}

/// GETs `key` from the provenance bucket, retrying `NoSuchKey` under
/// `retry` — a fresh PUT that has not reached the sampled replica yet
/// is a transient stale read, not a hard error (§4.2's remedy). When
/// the budget runs out, the error names `not_found_name` (the logical
/// object a caller asked about, which may differ from the raw key).
pub(crate) fn get_object_with_retry(
    s3: &S3,
    world: &SimWorld,
    retry: &RetryPolicy,
    key: &str,
    not_found_name: &str,
) -> Result<sim_s3::Object> {
    let mut attempt = 0u32;
    loop {
        match s3.get_object(BUCKET, key) {
            Ok(o) => return Ok(o),
            Err(S3Error::NoSuchKey { .. }) if attempt < retry.max_retries => {
                attempt += 1;
                retry.pause(world, attempt);
            }
            Err(S3Error::NoSuchKey { .. }) => {
                return Err(CloudError::NotFound {
                    name: not_found_name.to_string(),
                })
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Decodes one fetched overflow chunk as UTF-8.
pub(crate) fn overflow_to_string(key: &str, obj: sim_s3::Object) -> Result<String> {
    String::from_utf8(obj.body.to_bytes().to_vec()).map_err(|_| CloudError::Corrupt {
        message: format!("overflow {key} not UTF-8"),
    })
}

/// Fetches one overflow chunk, riding out eventual consistency the same
/// way the main object read does.
pub(crate) fn fetch_overflow(ctx: &ReadContext<'_>, key: &str) -> Result<String> {
    let obj = get_object_with_retry(ctx.s3, ctx.world, &ctx.retry, key, key)?;
    overflow_to_string(key, obj)
}

//! Unified error type for the provenance-cloud architectures.

use std::error::Error;
use std::fmt;

use sim_s3::S3Error;
use sim_simpledb::SdbError;
use sim_sqs::SqsError;
use simworld::Crashed;

/// Errors surfaced by [`crate::ProvenanceStore`] operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CloudError {
    /// An S3 call failed.
    S3(S3Error),
    /// A SimpleDB call failed.
    SimpleDb(SdbError),
    /// An SQS call failed.
    Sqs(SqsError),
    /// A simulated crash fired mid-protocol; remote state is whatever the
    /// completed steps left behind.
    Crashed(Crashed),
    /// The requested object is not stored.
    NotFound {
        /// Object name.
        name: String,
    },
    /// A stored record failed to decode (corrupt overflow pointer etc.).
    Corrupt {
        /// Human-readable description.
        message: String,
    },
    /// A bounded retry loop spent its whole budget without the error
    /// clearing — the structured "gave up after N attempts" outcome, so
    /// callers (the fleet bench in particular) can count retry
    /// exhaustion instead of misattributing the last transient error.
    RetryExhausted {
        /// Tries made, the initial attempt included.
        attempts: u32,
        /// The error the final attempt died on.
        last: Box<CloudError>,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::S3(e) => write!(f, "s3: {e}"),
            CloudError::SimpleDb(e) => write!(f, "simpledb: {e}"),
            CloudError::Sqs(e) => write!(f, "sqs: {e}"),
            CloudError::Crashed(e) => write!(f, "{e}"),
            CloudError::NotFound { name } => write!(f, "object not found: {name}"),
            CloudError::Corrupt { message } => write!(f, "corrupt state: {message}"),
            CloudError::RetryExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl Error for CloudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CloudError::S3(e) => Some(e),
            CloudError::SimpleDb(e) => Some(e),
            CloudError::Sqs(e) => Some(e),
            CloudError::Crashed(e) => Some(e),
            CloudError::RetryExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<S3Error> for CloudError {
    fn from(e: S3Error) -> CloudError {
        CloudError::S3(e)
    }
}

impl From<SdbError> for CloudError {
    fn from(e: SdbError) -> CloudError {
        CloudError::SimpleDb(e)
    }
}

impl From<SqsError> for CloudError {
    fn from(e: SqsError) -> CloudError {
        CloudError::Sqs(e)
    }
}

impl From<Crashed> for CloudError {
    fn from(e: Crashed) -> CloudError {
        CloudError::Crashed(e)
    }
}

impl CloudError {
    /// `true` when the error is a simulated crash (the caller should
    /// treat the client process as dead).
    pub fn is_crash(&self) -> bool {
        matches!(self, CloudError::Crashed(_))
    }

    /// `true` when the error is a provider-side 503 rate rejection, on
    /// whichever service — the retriable class the throttle-aware write
    /// path backs off on.
    pub fn is_throttle(&self) -> bool {
        match self {
            CloudError::S3(e) => e.is_throttle(),
            CloudError::SimpleDb(e) => e.is_throttle(),
            CloudError::Sqs(e) => e.is_throttle(),
            _ => false,
        }
    }

    /// `true` when the error means the object is not stored — directly,
    /// or as the last error of an exhausted retry loop. Callers that
    /// treat "missing" as a soft outcome should match on this rather
    /// than on [`CloudError::NotFound`] alone.
    pub fn is_not_found(&self) -> bool {
        match self {
            CloudError::NotFound { .. } => true,
            CloudError::RetryExhausted { last, .. } => last.is_not_found(),
            _ => false,
        }
    }

    /// Wraps the last error of a spent retry budget. `attempts` counts
    /// every try, the initial one included.
    pub fn give_up(attempts: u32, last: CloudError) -> CloudError {
        CloudError::RetryExhausted {
            attempts,
            last: Box::new(last),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CloudError>;

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::CrashSite;

    #[test]
    fn conversions_and_display() {
        let e: CloudError = S3Error::NoSuchBucket { bucket: "b".into() }.into();
        assert!(e.to_string().contains("no such bucket"));
        assert!(!e.is_crash());

        let e: CloudError = Crashed {
            site: CrashSite::new("x"),
        }
        .into();
        assert!(e.is_crash());
        assert!(e.to_string().contains("simulated crash"));
    }

    #[test]
    fn source_chains() {
        let e: CloudError = SdbError::InvalidNextToken.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = CloudError::NotFound { name: "x".into() };
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn throttles_are_recognised_across_services() {
        let e: CloudError = S3Error::ServiceUnavailable { bucket: "b".into() }.into();
        assert!(e.is_throttle());
        let e: CloudError = SdbError::ServiceUnavailable { domain: "d".into() }.into();
        assert!(e.is_throttle());
        let e: CloudError = sim_sqs::SqsError::ServiceUnavailable { url: "u".into() }.into();
        assert!(e.is_throttle());
        assert!(!CloudError::NotFound { name: "x".into() }.is_throttle());
    }

    #[test]
    fn retry_exhaustion_keeps_the_last_error_and_not_found_transparency() {
        let e = CloudError::give_up(7, CloudError::NotFound { name: "x".into() });
        assert!(e.to_string().contains("gave up after 7 attempts"));
        assert!(e.to_string().contains("object not found: x"));
        assert!(e.is_not_found());
        assert!(!e.is_throttle(), "exhaustion is terminal, not retriable");
        assert!(std::error::Error::source(&e).is_some());

        let e = CloudError::give_up(3, S3Error::ServiceUnavailable { bucket: "b".into() }.into());
        assert!(!e.is_not_found());
    }
}

//! Unified error type for the provenance-cloud architectures.

use std::error::Error;
use std::fmt;

use sim_s3::S3Error;
use sim_simpledb::SdbError;
use sim_sqs::SqsError;
use simworld::Crashed;

/// Errors surfaced by [`crate::ProvenanceStore`] operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CloudError {
    /// An S3 call failed.
    S3(S3Error),
    /// A SimpleDB call failed.
    SimpleDb(SdbError),
    /// An SQS call failed.
    Sqs(SqsError),
    /// A simulated crash fired mid-protocol; remote state is whatever the
    /// completed steps left behind.
    Crashed(Crashed),
    /// The requested object is not stored.
    NotFound {
        /// Object name.
        name: String,
    },
    /// A stored record failed to decode (corrupt overflow pointer etc.).
    Corrupt {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::S3(e) => write!(f, "s3: {e}"),
            CloudError::SimpleDb(e) => write!(f, "simpledb: {e}"),
            CloudError::Sqs(e) => write!(f, "sqs: {e}"),
            CloudError::Crashed(e) => write!(f, "{e}"),
            CloudError::NotFound { name } => write!(f, "object not found: {name}"),
            CloudError::Corrupt { message } => write!(f, "corrupt state: {message}"),
        }
    }
}

impl Error for CloudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CloudError::S3(e) => Some(e),
            CloudError::SimpleDb(e) => Some(e),
            CloudError::Sqs(e) => Some(e),
            CloudError::Crashed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<S3Error> for CloudError {
    fn from(e: S3Error) -> CloudError {
        CloudError::S3(e)
    }
}

impl From<SdbError> for CloudError {
    fn from(e: SdbError) -> CloudError {
        CloudError::SimpleDb(e)
    }
}

impl From<SqsError> for CloudError {
    fn from(e: SqsError) -> CloudError {
        CloudError::Sqs(e)
    }
}

impl From<Crashed> for CloudError {
    fn from(e: Crashed) -> CloudError {
        CloudError::Crashed(e)
    }
}

impl CloudError {
    /// `true` when the error is a simulated crash (the caller should
    /// treat the client process as dead).
    pub fn is_crash(&self) -> bool {
        matches!(self, CloudError::Crashed(_))
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CloudError>;

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::CrashSite;

    #[test]
    fn conversions_and_display() {
        let e: CloudError = S3Error::NoSuchBucket { bucket: "b".into() }.into();
        assert!(e.to_string().contains("no such bucket"));
        assert!(!e.is_crash());

        let e: CloudError = Crashed {
            site: CrashSite::new("x"),
        }
        .into();
        assert!(e.is_crash());
        assert!(e.to_string().contains("simulated crash"));
    }

    #[test]
    fn source_chains() {
        let e: CloudError = SdbError::InvalidNextToken.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = CloudError::NotFound { name: "x".into() };
        assert!(std::error::Error::source(&e).is_none());
    }
}

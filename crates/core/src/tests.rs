//! Cross-module tests: end-to-end persist/read/query per architecture,
//! crash injection, recovery, and the measured Table 1 matrix.

use pass::{FileFlush, Observer, TraceEvent};
use simworld::{Blob, Consistency, LatencyModel, SimConfig, SimDuration, SimWorld};

use crate::layout::{data_key, BUCKET, DOMAIN, TMP_PREFIX};
use crate::properties::{
    check_atomicity, check_causal_ordering, check_consistency, check_efficient_query, ArchKind,
};
use crate::{
    Arch2Config, Arch3Config, ProvQuery, ProvenanceStore, ReadStatus, RetryPolicy, S3SimpleDb,
    S3SimpleDbSqs, StandaloneS3, A2_BEFORE_DATA_PUT, A3_BEFORE_COMMIT, D3_BEFORE_MSG_DELETE,
};

fn counting() -> SimWorld {
    SimWorld::counting()
}

fn eventual(seed: u64, lag_secs: u64) -> SimWorld {
    SimWorld::with_config(SimConfig {
        seed,
        consistency: Consistency::eventual(SimDuration::from_secs(lag_secs)),
        latency: LatencyModel::zero(),
        replicas: 3,
    })
}

/// A small pipeline: in.dat -> tool -> mid.dat -> refine -> out.dat.
fn pipeline_flushes() -> Vec<FileFlush> {
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    for ev in [
        TraceEvent::source("in.dat", Blob::synthetic(1, 2048)),
        TraceEvent::exec(1, "tool", "tool in.dat", "PATH=/bin", None),
        TraceEvent::read(1, "in.dat"),
        TraceEvent::write(1, "mid.dat"),
        TraceEvent::close(1, "mid.dat", Blob::synthetic(2, 1024)),
        TraceEvent::exit(1),
        TraceEvent::exec(2, "refine", "refine", "PATH=/bin", None),
        TraceEvent::read(2, "mid.dat"),
        TraceEvent::write(2, "out.dat"),
        TraceEvent::close(2, "out.dat", Blob::synthetic(3, 512)),
        TraceEvent::exit(2),
    ] {
        flushes.extend(obs.observe(ev).unwrap());
    }
    flushes
}

fn persist_all(store: &mut dyn ProvenanceStore, flushes: &[FileFlush]) {
    for f in flushes {
        store.persist(f).unwrap();
    }
    store.run_daemons_until_idle().unwrap();
}

// --- end-to-end, each architecture ---

fn end_to_end(store: &mut dyn ProvenanceStore, world: &SimWorld) {
    persist_all(store, &pipeline_flushes());
    world.settle();

    // Read correctness surface.
    let read = store.read("mid.dat").unwrap();
    assert!(read.consistent(), "read must be consistent after settling");
    assert_eq!(read.data.to_bytes(), Blob::synthetic(2, 1024).to_bytes());
    assert!(
        read.records.iter().any(|r| r.reference().is_some()),
        "provenance must reference the producing process"
    );

    // Q2: outputs of `tool`.
    let outputs = store
        .query(&ProvQuery::OutputsOf {
            program: "tool".into(),
        })
        .unwrap();
    assert_eq!(outputs.names(), vec!["mid.dat:1"]);

    // Q3: descendants of files derived from `tool`.
    let desc = store
        .query(&ProvQuery::DescendantsOf {
            program: "tool".into(),
        })
        .unwrap();
    assert!(desc.names().contains(&"out.dat:1".to_string()));
    assert!(desc.names().iter().any(|n| n.starts_with("proc:2:refine")));

    // Q1 single object.
    let q1 = store
        .query(&ProvQuery::ProvenanceOf {
            name: "out.dat".into(),
            version: 1,
        })
        .unwrap();
    assert_eq!(q1.len(), 1);

    // Q1 over everything: all five object versions.
    let all = store.query(&ProvQuery::ProvenanceOfAll).unwrap();
    assert_eq!(all.len(), 5, "three files + two processes");

    // Missing object.
    assert!(store.read("ghost.dat").unwrap_err().is_not_found());
}

#[test]
fn arch1_end_to_end() {
    let world = counting();
    let mut store = StandaloneS3::new(&world);
    end_to_end(&mut store, &world);
}

#[test]
fn arch2_end_to_end() {
    let world = counting();
    let mut store = S3SimpleDb::new(&world);
    end_to_end(&mut store, &world);
}

#[test]
fn arch3_end_to_end() {
    let world = counting();
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    end_to_end(&mut store, &world);
}

#[test]
fn all_architectures_agree_on_query_answers() {
    let flushes = pipeline_flushes();
    let mut answers = Vec::new();
    for kind in ArchKind::ALL {
        let world = counting();
        let mut store = kind.build(&world);
        persist_all(store.as_mut(), &flushes);
        world.settle();
        let q2 = store
            .query(&ProvQuery::OutputsOf {
                program: "tool".into(),
            })
            .unwrap();
        let q3 = store
            .query(&ProvQuery::DescendantsOf {
                program: "tool".into(),
            })
            .unwrap();
        answers.push((q2.names(), q3.names()));
    }
    assert_eq!(answers[0], answers[1], "S3 scan and SimpleDB agree");
    assert_eq!(answers[1], answers[2], "arch2 and arch3 agree");
}

#[test]
fn end_to_end_under_eventual_consistency_with_realistic_latency() {
    // Full default config: latency, jitter, 500ms replica lag.
    let world = SimWorld::new(77);
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    persist_all(&mut store, &pipeline_flushes());
    world.settle();
    let read = store.read("out.dat").unwrap();
    assert!(read.consistent());
    assert!(
        world.now().as_micros() > 0,
        "latency model advanced the clock"
    );
}

// --- versioning across architectures ---

#[test]
fn version_overwrite_keeps_simpledb_history_but_not_s3_metadata() {
    let world = counting();
    let mut store = S3SimpleDb::new(&world);
    let v1 = FileFlush::builder("f")
        .version(1)
        .data(Blob::from("one"))
        .build();
    let v2 = FileFlush::builder("f")
        .version(2)
        .data(Blob::from("two"))
        .record("input", "f:1")
        .build();
    store.persist(&v1).unwrap();
    store.persist(&v2).unwrap();
    world.settle();

    // Current read returns version 2.
    let read = store.read("f").unwrap();
    assert_eq!(read.object.version, 2);

    // SimpleDB retains the provenance of *both* versions (per-version
    // items) — the history Architecture 1 loses.
    let q1v1 = store
        .query(&ProvQuery::ProvenanceOf {
            name: "f".into(),
            version: 1,
        })
        .unwrap();
    assert_eq!(q1v1.len(), 1);
    let q1v2 = store
        .query(&ProvQuery::ProvenanceOf {
            name: "f".into(),
            version: 2,
        })
        .unwrap();
    assert_eq!(q1v2.len(), 1);
}

#[test]
fn arch1_overwrite_loses_old_version_provenance() {
    let world = counting();
    let mut store = StandaloneS3::new(&world);
    let v1 = FileFlush::builder("f")
        .version(1)
        .data(Blob::from("one"))
        .build();
    let v2 = FileFlush::builder("f")
        .version(2)
        .data(Blob::from("two"))
        .build();
    store.persist(&v1).unwrap();
    store.persist(&v2).unwrap();
    let q1v1 = store
        .query(&ProvQuery::ProvenanceOf {
            name: "f".into(),
            version: 1,
        })
        .unwrap();
    assert!(
        q1v1.is_empty(),
        "metadata was overwritten with version 2's provenance"
    );
}

// --- crash injection and recovery ---

#[test]
fn arch2_crash_between_prov_and_data_leaves_orphan_and_scan_recovers() {
    let world = counting();
    let mut store = S3SimpleDb::new(&world);
    world.with_faults(|f| f.arm(A2_BEFORE_DATA_PUT));
    let flush = FileFlush::builder("doomed").data(Blob::from("x")).build();
    let err = store.persist(&flush).unwrap_err();
    assert!(err.is_crash());

    // Orphan provenance exists (the §4.2 atomicity violation)...
    let items = store.simpledb().latest_item_names(DOMAIN);
    assert_eq!(items, vec!["doomed 1"]);
    assert!(store
        .s3()
        .latest_object(BUCKET, &data_key("doomed"))
        .is_none());

    // ...and the inelegant scan cleans it up.
    let report = store.recover().unwrap();
    assert_eq!(report.orphan_provenance_removed, 1);
    assert!(report.items_scanned >= 1);
    assert!(store.simpledb().latest_item_names(DOMAIN).is_empty());
}

#[test]
fn arch2_recovery_does_not_remove_healthy_or_historical_items() {
    let world = counting();
    let mut store = S3SimpleDb::new(&world);
    let v1 = FileFlush::builder("f")
        .version(1)
        .data(Blob::from("one"))
        .build();
    let v2 = FileFlush::builder("f")
        .version(2)
        .data(Blob::from("two"))
        .build();
    store.persist(&v1).unwrap();
    store.persist(&v2).unwrap();
    let report = store.recover().unwrap();
    assert_eq!(report.orphan_provenance_removed, 0);
    assert_eq!(store.simpledb().latest_item_names(DOMAIN).len(), 2);
}

#[test]
fn arch3_uncommitted_transaction_is_ignored_forever() {
    let world = counting();
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    world.with_faults(|f| f.arm(A3_BEFORE_COMMIT));
    let flush = FileFlush::builder("doomed").data(Blob::from("x")).build();
    assert!(store.persist(&flush).unwrap_err().is_crash());

    store.run_daemons_until_idle().unwrap();
    // Neither data nor provenance reached the permanent stores.
    assert!(store
        .s3()
        .latest_object(BUCKET, &data_key("doomed"))
        .is_none());
    assert!(store.simpledb().latest_item_names(DOMAIN).is_empty());

    // The staged temp object lingers until the retention window passes,
    // then the cleaner removes it.
    assert!(!store.s3().latest_keys(BUCKET, TMP_PREFIX).is_empty());
    world.advance(sim_sqs::RETENTION + SimDuration::from_hours(1));
    let removed = store.run_cleaner().unwrap();
    assert!(removed >= 1);
    assert!(store.s3().latest_keys(BUCKET, TMP_PREFIX).is_empty());
}

#[test]
fn arch3_daemon_crash_replays_idempotently() {
    let world = counting();
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    persist_all_no_daemon(&mut store, &pipeline_flushes());

    // Crash the daemon after applying but before deleting the log.
    world.with_faults(|f| f.arm(D3_BEFORE_MSG_DELETE));
    let err = store.run_daemons_until_idle().unwrap_err();
    assert!(err.is_crash());

    // Restarted daemon replays from the still-present log records.
    store.run_daemons_until_idle().unwrap();
    world.settle();
    let read = store.read("out.dat").unwrap();
    assert!(read.consistent());
    // Replay must not duplicate provenance (SimpleDB set semantics).
    let q1 = store
        .query(&ProvQuery::ProvenanceOf {
            name: "out.dat".into(),
            version: 1,
        })
        .unwrap();
    let record_count = q1.items[0].records.len();
    let unique: std::collections::BTreeSet<_> =
        q1.items[0].records.iter().map(|r| r.to_pair()).collect();
    assert_eq!(record_count, unique.len());
}

fn persist_all_no_daemon(store: &mut S3SimpleDbSqs, flushes: &[FileFlush]) {
    for f in flushes {
        store.persist(f).unwrap();
    }
}

#[test]
fn arch3_wal_drains_to_empty_after_commit() {
    let world = counting();
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    persist_all_no_daemon(&mut store, &pipeline_flushes());
    assert!(store.wal_depth_exact() > 0, "log records queued");
    store.run_daemons_until_idle().unwrap();
    assert_eq!(
        store.wal_depth_exact(),
        0,
        "all records deleted after apply"
    );
    // Temp objects are also gone (deleted at end of apply).
    assert!(store.s3().latest_keys(BUCKET, TMP_PREFIX).is_empty());
}

#[test]
fn arch3_poll_daemon_respects_commit_threshold() {
    let world = counting();
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    let config = Arch3Config {
        commit_threshold: 1000,
        ..Arch3Config::default()
    };
    store.set_config(config);
    let flush = FileFlush::builder("f").data(Blob::from("x")).build();
    store.persist(&flush).unwrap();
    // Below the threshold: the poll does nothing.
    let progress = store.poll_daemon().unwrap();
    assert_eq!(progress.received, 0);
    assert!(store.wal_depth_exact() > 0);

    let config = Arch3Config {
        commit_threshold: 0,
        ..Arch3Config::default()
    };
    store.set_config(config);
    // Above the threshold: polls start draining (may need several due to
    // SQS sampling).
    let mut received = 0;
    for _ in 0..200 {
        received += store.poll_daemon().unwrap().received;
        if store.wal_depth_exact() == 0 {
            break;
        }
    }
    assert!(received > 0);
    assert_eq!(store.wal_depth_exact(), 0);
}

// --- consistency detection ---

#[test]
fn md5_detects_stale_provenance_and_retry_converges() {
    let world = eventual(9, 2);
    let mut store = S3SimpleDb::new(&world);
    let config = Arch2Config {
        retry: RetryPolicy::flat(100, SimDuration::from_millis(100)),
        ..Arch2Config::default()
    };
    store.set_config(config);

    let flush = FileFlush::builder("f")
        .data(Blob::synthetic(5, 4096))
        .build();
    store.persist(&flush).unwrap();
    // Immediately read: replicas may be stale, but the read loop must
    // converge to a verified-consistent answer within the retry budget.
    let read = store.read("f").unwrap();
    assert!(matches!(read.status, ReadStatus::VerifiedConsistent { .. }));
}

#[test]
fn disabling_md5_serves_unverified_reads() {
    let world = eventual(11, 30);
    let mut store = S3SimpleDb::new(&world);
    let config = Arch2Config {
        verify_md5: false,
        ..Arch2Config::default()
    };
    store.set_config(config);
    let flush = FileFlush::builder("f").data(Blob::from("data")).build();
    store.persist(&flush).unwrap();
    world.settle();
    let read = store.read("f").unwrap();
    assert_eq!(read.status, ReadStatus::Unverified);
}

#[test]
fn nonce_distinguishes_same_content_overwrites() {
    // §4.2: "The MD5sum of the data itself (without the nonce) is
    // sufficient ... except when a file is overwritten with the same
    // data."
    fn md5_of(store: &S3SimpleDb, item: &str) -> String {
        store
            .simpledb()
            .latest_item(DOMAIN, item)
            .unwrap()
            .into_iter()
            .find(|a| a.name == "md5")
            .unwrap()
            .value
    }
    let v1 = FileFlush::builder("f")
        .version(1)
        .data(Blob::from("same"))
        .build();
    let v2 = FileFlush::builder("f")
        .version(2)
        .data(Blob::from("same"))
        .build();

    let world = counting();
    let mut store = S3SimpleDb::new(&world);
    store.persist(&v1).unwrap();
    store.persist(&v2).unwrap();
    assert_ne!(
        md5_of(&store, "f 1"),
        md5_of(&store, "f 2"),
        "same content, different nonce → different token"
    );

    // Ablation: without the nonce the tokens collide.
    let world = counting();
    let mut store = S3SimpleDb::new(&world);
    let config = Arch2Config {
        use_nonce: false,
        ..Arch2Config::default()
    };
    store.set_config(config);
    store.persist(&v1).unwrap();
    store.persist(&v2).unwrap();
    assert_eq!(
        md5_of(&store, "f 1"),
        md5_of(&store, "f 2"),
        "without the nonce the overwrite is undetectable"
    );
}

#[test]
fn overflow_chunks_ride_out_replication_lag() {
    // Regression: a freshly written overflow chunk that has not reached
    // the sampled replica yet used to turn the whole read into a hard
    // error. With a long visibility window the stale sample is near
    // certain; the read loop must instead retry the chunk like it
    // retries the main object.
    let world = eventual(17, 60);
    let mut store = S3SimpleDb::new(&world);
    let big_env = format!("HUGE={}", "x".repeat(5000));
    for i in 0..12 {
        let name = format!("proc:{i}:tool");
        let flush = FileFlush::builder(&name)
            .process()
            .record("name", "tool")
            .record("env", &big_env)
            .build();
        store.persist(&flush).unwrap();
        // Read immediately, mid-propagation: must converge, not error.
        let read = store.read(&name).unwrap();
        assert!(read.consistent(), "read {i} must converge");
        let env = read
            .records
            .iter()
            .find(|r| r.key.attr_name() == "env")
            .expect("env record present");
        assert_eq!(env.value.render(), big_env);
    }
}

#[test]
fn permanently_missing_key_costs_bounded_sublinear_virtual_time() {
    // A missing object exhausts the retry budget; exponential pacing
    // keeps the total within the old flat 5 s envelope...
    let world = eventual(23, 1);
    let mut store = S3SimpleDb::new(&world);
    let t0 = world.now();
    assert!(store.read("ghost.dat").unwrap_err().is_not_found());
    let elapsed = world.now() - t0;
    assert!(
        elapsed <= SimDuration::from_secs(5),
        "50 exhausted retries must stay within the flat-rate bound, took {elapsed}"
    );
    // ...and a shallow budget no longer charges retries × flat-rate:
    // 10 retries used to cost exactly 1 s, now 427 ms.
    let world = eventual(29, 1);
    let mut store = S3SimpleDb::new(&world);
    let mut config = Arch2Config::default();
    config.retry.max_retries = 10;
    store.set_config(config);
    let t0 = world.now();
    assert!(store.read("ghost.dat").is_err());
    let elapsed = world.now() - t0;
    assert!(
        elapsed < SimDuration::from_millis(10 * 100),
        "10 retries must cost less than 10 flat pauses, took {elapsed}"
    );
}

// --- overflow handling end to end ---

#[test]
fn oversized_records_survive_the_round_trip_in_every_architecture() {
    let big_env = format!("HUGE={}", "x".repeat(5000));
    for kind in ArchKind::ALL {
        let world = counting();
        let mut store = kind.build(&world);
        let flush = FileFlush::builder("proc:1:tool")
            .process()
            .record("name", "tool")
            .record("env", &big_env)
            .build();
        store.persist(&flush).unwrap();
        store.run_daemons_until_idle().unwrap();
        world.settle();
        let q1 = store
            .query(&ProvQuery::ProvenanceOf {
                name: "proc:1:tool".into(),
                version: 1,
            })
            .unwrap();
        assert_eq!(q1.len(), 1, "{kind:?}");
        let env = q1.items[0]
            .records
            .iter()
            .find(|r| r.key.attr_name() == "env")
            .unwrap_or_else(|| panic!("{kind:?}: env record missing"));
        assert_eq!(
            env.value.render(),
            big_env,
            "{kind:?}: overflow value corrupted"
        );
    }
}

// --- the Table 1 matrix, measured ---

#[test]
fn table1_atomicity_s3_holds() {
    assert!(check_atomicity(ArchKind::S3, 1).unwrap().holds());
}

#[test]
fn table1_atomicity_s3_simpledb_violated() {
    let report = check_atomicity(ArchKind::S3SimpleDb, 1).unwrap();
    assert!(!report.holds(), "Table 1 marks S3+SimpleDB atomicity ✗");
    // And the violating site is the documented one.
    assert!(report
        .sites
        .iter()
        .any(|(site, violated)| site.contains("before_data_put") && *violated));
}

#[test]
fn table1_atomicity_s3_simpledb_sqs_holds() {
    let report = check_atomicity(ArchKind::S3SimpleDbSqs, 1).unwrap();
    assert!(report.holds(), "violations: {:?}", report.sites);
    assert!(
        report.sites.len() >= 8,
        "client + daemon sites all exercised"
    );
}

#[test]
fn table1_consistency_holds_everywhere() {
    for kind in ArchKind::ALL {
        assert!(check_consistency(kind, 3).unwrap(), "{kind:?}");
    }
}

#[test]
fn table1_causal_ordering_holds_everywhere() {
    for kind in ArchKind::ALL {
        assert!(check_causal_ordering(kind, 5).unwrap(), "{kind:?}");
    }
}

#[test]
fn table1_efficient_query_only_with_simpledb() {
    assert!(!check_efficient_query(ArchKind::S3, 7).unwrap(), "S3 scans");
    assert!(check_efficient_query(ArchKind::S3SimpleDb, 7).unwrap());
    assert!(check_efficient_query(ArchKind::S3SimpleDbSqs, 7).unwrap());
}

#[test]
fn arch1_recover_cleans_orphaned_overflow_objects() {
    let world = counting();
    let mut store = StandaloneS3::new(&world);
    // Crash after the overflow PUT but before the main data PUT: the
    // overflow object for version 1 is stranded.
    world.with_faults(|f| f.arm_after(crate::A1_BEFORE_DATA_PUT, 0));
    let big = FileFlush::builder("f")
        .data(Blob::from("content"))
        .record("env", &"e".repeat(2000))
        .build();
    assert!(store.persist(&big).unwrap_err().is_crash());
    let orphans = store.s3().latest_keys(BUCKET, crate::layout::PROV_PREFIX);
    assert!(!orphans.is_empty(), "overflow object stranded by the crash");

    // Read correctness is intact (no data object at all), and recovery
    // reclaims the residue.
    assert!(store.read("f").is_err());
    let report = store.recover().unwrap();
    assert_eq!(report.objects_removed as usize, orphans.len());
    assert!(store
        .s3()
        .latest_keys(BUCKET, crate::layout::PROV_PREFIX)
        .is_empty());

    // A successful persist leaves its overflow objects alone.
    store.persist(&big).unwrap();
    let live = store.s3().latest_keys(BUCKET, crate::layout::PROV_PREFIX);
    assert!(!live.is_empty());
    let report = store.recover().unwrap();
    assert_eq!(report.objects_removed, 0);
    assert_eq!(
        store.s3().latest_keys(BUCKET, crate::layout::PROV_PREFIX),
        live
    );
}

#[test]
fn arch3_cleaner_spares_fresh_temp_objects() {
    let world = counting();
    let mut store = S3SimpleDbSqs::new(&world, "c1");
    world.with_faults(|f| f.arm(A3_BEFORE_COMMIT));
    let flush = FileFlush::builder("f").data(Blob::from("x")).build();
    assert!(store.persist(&flush).unwrap_err().is_crash());
    // Residue exists but is younger than the retention window.
    assert!(!store.s3().latest_keys(BUCKET, TMP_PREFIX).is_empty());
    assert_eq!(
        store.run_cleaner().unwrap(),
        0,
        "fresh temps are not reclaimed"
    );
    world.advance(sim_sqs::RETENTION + SimDuration::from_secs(1));
    assert!(store.run_cleaner().unwrap() > 0);
}

// --- batched persist path ---

mod throttled_writes {
    use super::*;

    fn throttle_all(store: &S3SimpleDbSqs, cfg: simworld::ThrottleConfig) {
        store.s3().set_throttle(Some(cfg));
        store.simpledb().set_throttle(Some(cfg));
        store.sqs().set_throttle(Some(cfg));
    }

    #[test]
    fn throttling_costs_time_never_state() {
        // Tentpole invariant: a throttled run retries its way to the
        // exact same final store as an unthrottled run — 503s cost
        // virtual time, never state.
        let flushes = pipeline_flushes();
        let run = |throttle: bool| {
            let world = counting();
            let mut store = S3SimpleDbSqs::new(&world, "c");
            if throttle {
                throttle_all(
                    &store,
                    simworld::ThrottleConfig::per_shard(100.0).with_burst(1.0),
                );
            }
            for flush in &flushes {
                store.persist(flush).unwrap();
            }
            let persist_done = world.now();
            store.run_daemons_until_idle().unwrap();
            (world, store, persist_done)
        };
        let (plain_world, mut plain, plain_elapsed) = run(false);
        let (slow_world, mut slow, slow_elapsed) = run(true);

        assert_eq!(plain_world.throttle_retries(), 0);
        assert!(
            slow_world.meters().total_throttled() > 0,
            "the throttle must actually bite"
        );
        assert!(slow_world.throttle_retries() > 0, "503s must be retried");
        assert!(
            slow_elapsed > plain_elapsed,
            "backoff must cost virtual time: slow={slow_elapsed:?} plain={plain_elapsed:?}"
        );

        for name in ["in.dat", "mid.dat", "out.dat"] {
            let p = plain.read(name).unwrap();
            let s = slow.read(name).unwrap();
            assert!(s.consistent(), "{name}");
            assert_eq!(p.data.md5(), s.data.md5(), "{name}");
            let mut pr: Vec<_> = p.records.iter().map(|r| r.to_pair()).collect();
            let mut sr: Vec<_> = s.records.iter().map(|r| r.to_pair()).collect();
            pr.sort();
            sr.sort();
            assert_eq!(pr, sr, "{name}");
        }
        let pg = plain.query(&ProvQuery::ProvenanceOfAll).unwrap();
        let sg = slow.query(&ProvQuery::ProvenanceOfAll).unwrap();
        assert!(
            crate::ProvGraph::from_answer(&pg)
                .diff(&crate::ProvGraph::from_answer(&sg))
                .is_empty(),
            "throttling changed the provenance graph"
        );
    }

    #[test]
    fn retry_none_surfaces_structured_exhaustion_under_throttle() {
        // A RetryPolicy::none() client hitting a 503 must fail loudly
        // with the structured give-up, not a bare service error.
        let world = counting();
        let mut store = S3SimpleDbSqs::new(&world, "c");
        let config = Arch3Config {
            retry: RetryPolicy::none(),
            ..Arch3Config::default()
        };
        store.set_config(config);
        store.sqs().set_throttle(Some(
            simworld::ThrottleConfig::per_shard(100.0).with_burst(1.0),
        ));
        let err = store.persist(&pipeline_flushes()[0]).unwrap_err();
        match err {
            crate::CloudError::RetryExhausted { attempts, ref last } => {
                assert_eq!(attempts, 1, "none() makes exactly one attempt");
                assert!(last.is_throttle(), "the last error is the 503: {last}");
            }
            ref other => panic!("expected structured exhaustion, got {other}"),
        }
        assert!(err.to_string().contains("gave up after 1 attempts"));
    }
}

mod batched_persist {
    use super::*;
    use simworld::{Op, Service};

    /// Persists the pipeline twice — point ops vs one `persist_batch`
    /// group — and returns the two worlds for comparison.
    fn both_paths(
        kind: ArchKind,
    ) -> (
        SimWorld,
        Box<dyn ProvenanceStore>,
        SimWorld,
        Box<dyn ProvenanceStore>,
    ) {
        let flushes = pipeline_flushes();
        let point_world = counting();
        let mut point = kind.build(&point_world);
        persist_all(point.as_mut(), &flushes);
        let batch_world = counting();
        let mut batch = kind.build(&batch_world);
        batch.persist_batch(&flushes).unwrap();
        batch.run_daemons_until_idle().unwrap();
        (point_world, point, batch_world, batch)
    }

    #[test]
    fn batch_equals_point_for_every_architecture() {
        for kind in ArchKind::ALL {
            let (_, mut point, _, mut batch) = both_paths(kind);
            // Same data, same provenance, same graph.
            for name in ["in.dat", "mid.dat", "out.dat"] {
                let p = point.read(name).unwrap();
                let b = batch.read(name).unwrap();
                assert!(b.consistent(), "{kind:?}/{name}");
                assert_eq!(p.data.md5(), b.data.md5(), "{kind:?}/{name}");
                let mut pr: Vec<_> = p.records.iter().map(|r| r.to_pair()).collect();
                let mut br: Vec<_> = b.records.iter().map(|r| r.to_pair()).collect();
                pr.sort();
                br.sort();
                assert_eq!(pr, br, "{kind:?}/{name}");
            }
            let pg = point.query(&ProvQuery::ProvenanceOfAll).unwrap();
            let bg = batch.query(&ProvQuery::ProvenanceOfAll).unwrap();
            assert!(
                crate::ProvGraph::from_answer(&pg)
                    .diff(&crate::ProvGraph::from_answer(&bg))
                    .is_empty(),
                "{kind:?}: graphs diverged"
            );
        }
    }

    #[test]
    fn arch2_batch_issues_fewer_provenance_requests() {
        let (pw, _, bw, _) = both_paths(ArchKind::S3SimpleDb);
        let point_puts = pw.meters().op_count(Op::SdbPutAttributes);
        let batch_puts = bw.meters().op_count(Op::SdbBatchPutAttributes)
            + bw.meters().op_count(Op::SdbPutAttributes);
        assert!(point_puts >= 5, "pipeline must exercise several items");
        assert!(
            batch_puts * 5 <= point_puts,
            "batched SimpleDB writes {batch_puts} must be >=5x fewer than {point_puts}"
        );
        // Every staged item still arrived.
        assert_eq!(
            bw.meters().batch_entry_count(Op::SdbBatchPutAttributes),
            point_puts
        );
    }

    #[test]
    fn arch3_batch_issues_fewer_wal_requests() {
        let (pw, _, bw, _) = both_paths(ArchKind::S3SimpleDbSqs);
        let point_sends = pw.meters().op_count(Op::SqsSendMessage);
        let batch_sends = bw.meters().op_count(Op::SqsSendMessageBatch)
            + bw.meters().op_count(Op::SqsSendMessage);
        assert!(point_sends >= 20, "five flushes x >=4 records each");
        assert!(
            batch_sends * 5 <= point_sends,
            "batched WAL sends {batch_sends} must be >=5x fewer than {point_sends}"
        );
        assert_eq!(
            bw.meters().batch_entry_count(Op::SqsSendMessageBatch),
            point_sends,
            "same records, fewer requests"
        );
        // The daemon's log-record deletes are batched on both paths, so
        // the queue still drains completely.
        assert_eq!(bw.meters().stored_bytes(Service::Sqs), 0);
    }

    #[test]
    fn arch3_batched_group_crash_before_commit_is_ignored() {
        // A crash before the final batch (the one carrying the group's
        // last COMMIT) must leave a prefix of complete transactions plus
        // at most one commit-less residue — never a half-applied tail.
        let world = counting();
        let mut store = S3SimpleDbSqs::new(&world, "c");
        let flushes = pipeline_flushes();
        world.with_faults(|f| f.arm(A3_BEFORE_COMMIT));
        let err = store.persist_batch(&flushes).unwrap_err();
        assert!(err.is_crash());
        store.run_daemons_until_idle().unwrap();
        world.settle();
        // The last object of the pipeline cannot have committed.
        assert!(store.read("out.dat").unwrap_err().is_not_found());
        // Whatever did apply is fully consistent (no orphan halves).
        for name in ["in.dat", "mid.dat"] {
            if let Ok(read) = store.read(name) {
                assert!(read.consistent(), "{name}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        for kind in ArchKind::ALL {
            let world = counting();
            let mut store = kind.build(&world);
            let before = world.meters();
            store.persist_batch(&[]).unwrap();
            let delta = world.meters() - before;
            assert_eq!(delta.total_ops(), 0, "{kind:?}");
        }
    }
}

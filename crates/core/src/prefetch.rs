//! Provenance-guided prefetching — the paper's future work, §7:
//! "The provenance stored with the data presents AWS cloud with many
//! hints about the application storing the data. In the future, we plan
//! to investigate how a cloud might take advantage of this provenance."
//!
//! This module implements the most direct such exploitation: a scientist
//! who downloads a result almost always inspects its lineage next (the
//! paper's read-correctness story *requires* verifying provenance before
//! use). A [`PrefetchingReader`] therefore walks the `input` references
//! of every object it reads and warms a local cache with the ancestors,
//! turning the subsequent lineage walk into local hits instead of paid
//! round trips.

use std::collections::VecDeque;

use pass::{CacheDir, FileFlush, ObjectKind, ProvenanceRecord, RecordKey, RecordValue};
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::store::{ProvenanceStore, ReadOutcome};

/// How aggressively the reader follows ancestry links.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PrefetchPolicy {
    /// How many ancestor generations to prefetch (0 disables).
    pub depth: u32,
    /// Upper bound on prefetched objects per read (guards against
    /// huge fan-in ancestries).
    pub max_objects: usize,
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy {
            depth: 2,
            max_objects: 32,
        }
    }
}

/// Cache statistics kept by [`PrefetchingReader`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Reads served from the local cache (no cloud ops).
    pub cache_hits: u64,
    /// Reads that had to go to the cloud.
    pub cache_misses: u64,
    /// Ancestors fetched speculatively.
    pub prefetched: u64,
}

/// A read-side wrapper that exploits provenance as a prefetch hint.
///
/// # Examples
///
/// ```
/// use pass::FileFlush;
/// use provenance_cloud::{PrefetchingReader, ProvenanceStore, S3SimpleDb};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let mut store = S3SimpleDb::new(&world);
/// store.persist(&FileFlush::builder("in").data(Blob::from("i")).build())?;
/// store.persist(
///     &FileFlush::builder("out").data(Blob::from("o")).record("input", "in:1").build(),
/// )?;
///
/// let mut reader = PrefetchingReader::new(store);
/// reader.read("out")?;            // fetches out + prefetches in
/// reader.read("in")?;             // served locally
/// assert_eq!(reader.stats().cache_hits, 1);
/// # Ok::<(), provenance_cloud::CloudError>(())
/// ```
#[derive(Debug)]
pub struct PrefetchingReader<S> {
    store: S,
    cache: CacheDir,
    policy: PrefetchPolicy,
    stats: PrefetchStats,
}

impl<S: ProvenanceStore> PrefetchingReader<S> {
    /// Wraps a store with the default policy.
    pub fn new(store: S) -> PrefetchingReader<S> {
        PrefetchingReader::with_policy(store, PrefetchPolicy::default())
    }

    /// Wraps a store with an explicit policy.
    pub fn with_policy(store: S, policy: PrefetchPolicy) -> PrefetchingReader<S> {
        PrefetchingReader {
            store,
            cache: CacheDir::new(),
            policy,
            stats: PrefetchStats::default(),
        }
    }

    /// The wrapped store (e.g. to persist or query through it).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Drops all cached state (keeps statistics).
    pub fn clear_cache(&mut self) {
        self.cache = CacheDir::new();
    }

    /// Reads `name`, serving from the warm cache when possible and
    /// prefetching the ancestry after a cloud fetch.
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::read`].
    pub fn read(&mut self, name: &str) -> Result<ReadOutcome> {
        if let Some(entry) = self.cache.get(name) {
            self.stats.cache_hits += 1;
            return Ok(ReadOutcome {
                object: pass::ObjectRef::new(name.to_string(), entry.version),
                data: entry.data.clone(),
                records: entry.records.clone(),
                status: crate::store::ReadStatus::VerifiedConsistent { retries: 0 },
            });
        }
        self.stats.cache_misses += 1;
        let outcome = self.store.read(name)?;
        self.remember(&outcome);
        self.prefetch_ancestors(&outcome)?;
        Ok(outcome)
    }

    fn remember(&mut self, outcome: &ReadOutcome) {
        let flush = FileFlush {
            object: outcome.object.clone(),
            kind: ObjectKind::File,
            data: outcome.data.clone(),
            records: outcome.records.clone(),
        };
        self.cache.store(&flush);
    }

    /// Breadth-first walk of `input`/`forkparent` references up to the
    /// policy depth, fetching provenance (and data for files) of each
    /// ancestor into the cache.
    fn prefetch_ancestors(&mut self, outcome: &ReadOutcome) -> Result<()> {
        if self.policy.depth == 0 {
            return Ok(());
        }
        let mut frontier: VecDeque<(pass::ObjectRef, u32)> = outcome
            .records
            .iter()
            .filter_map(ProvenanceRecord::reference)
            .map(|r| (r.clone(), 1))
            .collect();
        let mut fetched = 0usize;
        while let Some((ancestor, generation)) = frontier.pop_front() {
            if fetched >= self.policy.max_objects || generation > self.policy.depth {
                break;
            }
            if self.cache.get(&ancestor.name).is_some() {
                continue;
            }
            // Processes have no data object; fetch their provenance via
            // the query path. Files go through the verified read.
            let records = if ancestor.name.starts_with("proc:") {
                let answer = self.store.query(&crate::query::ProvQuery::ProvenanceOf {
                    name: ancestor.name.clone(),
                    version: ancestor.version,
                })?;
                let Some(item) = answer.items.into_iter().next() else {
                    continue;
                };
                let flush = FileFlush {
                    object: ancestor.clone(),
                    kind: ObjectKind::Process,
                    data: simworld::Blob::empty(),
                    records: item.records.clone(),
                };
                self.cache.store(&flush);
                item.records
            } else {
                match self.store.read(&ancestor.name) {
                    Ok(outcome) => {
                        self.remember(&outcome);
                        outcome.records
                    }
                    // A missing ancestor (e.g. evicted old version) just
                    // ends this branch of the walk — whether reported
                    // directly or as an exhausted retry budget.
                    Err(e) if e.is_not_found() => continue,
                    Err(e) => return Err(e),
                }
            };
            fetched += 1;
            self.stats.prefetched += 1;
            if generation < self.policy.depth {
                for parent in records.iter().filter_map(ProvenanceRecord::reference) {
                    frontier.push_back((parent.clone(), generation + 1));
                }
            }
        }
        Ok(())
    }
}

/// Convenience: the value of a record under `key`, used by hint-style
/// consumers ("which tool produced this?") without walking the graph.
pub fn record_value<'a>(records: &'a [ProvenanceRecord], key: &RecordKey) -> Option<&'a str> {
    records.iter().find_map(|r| match (&r.key, &r.value) {
        (k, RecordValue::Text(t)) if k == key => Some(t.as_str()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch2::S3SimpleDb;
    use simworld::{Blob, Op, SimWorld};

    /// in -> proc -> mid -> proc2 -> out persisted on arch 2.
    fn loaded(world: &SimWorld) -> S3SimpleDb {
        let mut store = S3SimpleDb::new(world);
        let flushes = vec![
            FileFlush::builder("in").data(Blob::from("i")).build(),
            FileFlush::builder("proc:1:t")
                .process()
                .record("name", "t")
                .record("input", "in:1")
                .build(),
            FileFlush::builder("mid")
                .data(Blob::from("m"))
                .record("input", "proc:1:t:1")
                .build(),
            FileFlush::builder("proc:2:u")
                .process()
                .record("name", "u")
                .record("input", "mid:1")
                .build(),
            FileFlush::builder("out")
                .data(Blob::from("o"))
                .record("input", "proc:2:u:1")
                .build(),
        ];
        for f in &flushes {
            store.persist(f).unwrap();
        }
        store
    }

    #[test]
    fn lineage_walk_after_prefetch_is_free() {
        let world = SimWorld::counting();
        let store = loaded(&world);
        let mut reader = PrefetchingReader::with_policy(
            store,
            PrefetchPolicy {
                depth: 8,
                max_objects: 64,
            },
        );
        reader.read("out").unwrap();
        let after_first = world.meters();
        // The whole ancestry is now local: reads cost nothing.
        for name in ["mid", "in"] {
            let read = reader.read(name).unwrap();
            assert!(read.consistent());
        }
        let delta = world.meters() - after_first;
        assert_eq!(
            delta.total_ops(),
            0,
            "lineage walk must be served from cache"
        );
        assert_eq!(reader.stats().cache_hits, 2);
        assert_eq!(reader.stats().cache_misses, 1);
        assert!(reader.stats().prefetched >= 4);
    }

    #[test]
    fn depth_zero_disables_prefetching() {
        let world = SimWorld::counting();
        let store = loaded(&world);
        let mut reader = PrefetchingReader::with_policy(
            store,
            PrefetchPolicy {
                depth: 0,
                max_objects: 64,
            },
        );
        reader.read("out").unwrap();
        assert_eq!(reader.stats().prefetched, 0);
        let before = world.meters();
        reader.read("mid").unwrap();
        let delta = world.meters() - before;
        assert!(
            delta.total_ops() > 0,
            "without prefetch the walk pays cloud ops"
        );
    }

    #[test]
    fn max_objects_caps_the_walk() {
        let world = SimWorld::counting();
        let store = loaded(&world);
        let mut reader = PrefetchingReader::with_policy(
            store,
            PrefetchPolicy {
                depth: 8,
                max_objects: 1,
            },
        );
        reader.read("out").unwrap();
        assert_eq!(reader.stats().prefetched, 1);
    }

    #[test]
    fn repeated_reads_hit_cache_and_clear_resets() {
        let world = SimWorld::counting();
        let store = loaded(&world);
        let mut reader = PrefetchingReader::new(store);
        reader.read("out").unwrap();
        reader.read("out").unwrap();
        assert_eq!(reader.stats().cache_hits, 1);
        reader.clear_cache();
        reader.read("out").unwrap();
        assert_eq!(reader.stats().cache_misses, 2);
    }

    #[test]
    fn missing_ancestor_does_not_poison_the_read() {
        let world = SimWorld::counting();
        let mut store = S3SimpleDb::new(&world);
        store
            .persist(
                &FileFlush::builder("lonely")
                    .data(Blob::from("x"))
                    .record("input", "ghost:1")
                    .build(),
            )
            .unwrap();
        let mut reader = PrefetchingReader::new(store);
        let read = reader.read("lonely").unwrap();
        assert!(read.consistent());
        assert_eq!(reader.stats().prefetched, 0);
    }

    #[test]
    fn record_value_helper() {
        let records = vec![
            ProvenanceRecord::named("cc"),
            ProvenanceRecord::of_type("process"),
        ];
        assert_eq!(record_value(&records, &RecordKey::Name), Some("cc"));
        assert_eq!(record_value(&records, &RecordKey::Env), None);
    }

    #[test]
    fn prefetch_saves_ops_versus_cold_walk() {
        // Quantify the future-work benefit: walking a 5-deep lineage
        // cold vs warm.
        let cold_ops = {
            let world = SimWorld::counting();
            let mut store = loaded(&world);
            let before = world.meters();
            for name in ["out", "mid", "in"] {
                store.read(name).unwrap();
            }
            (world.meters() - before).op_count(Op::SdbGetAttributes)
        };
        let warm_ops = {
            let world = SimWorld::counting();
            let store = loaded(&world);
            let mut reader = PrefetchingReader::with_policy(
                store,
                PrefetchPolicy {
                    depth: 8,
                    max_objects: 64,
                },
            );
            let before = world.meters();
            for name in ["out", "mid", "in"] {
                reader.read(name).unwrap();
            }
            (world.meters() - before).op_count(Op::SdbGetAttributes)
        };
        // Same total work for the first pass, but the warm reader paid
        // at most the same number of attribute fetches while also
        // priming the processes; repeated walks are then free.
        assert!(
            warm_ops <= cold_ops + 2,
            "warm {warm_ops} vs cold {cold_ops}"
        );
    }
}
